"""Shared bootstrap for the standalone benchmark scripts.

Every ``bench_*.py`` that runs as a plain script (not under pytest) needs
the same two pieces of boilerplate: put ``src/`` on ``sys.path`` so
``import repro`` works without an installed package, and write its JSON
report atomically so a killed CI job never leaves a truncated artifact.
Both live here so the scripts stay about measurement, not plumbing.

Import order matters: call :func:`bootstrap_src` *before* any ``repro``
import in the script body::

    from _common import bootstrap_src, emit_report

    bootstrap_src()

    from repro.core.online import run_online
"""

from __future__ import annotations

import sys
from pathlib import Path

#: The repository root (the directory holding ``src/`` and ``benchmarks/``).
REPO_ROOT = Path(__file__).resolve().parent.parent


def bootstrap_src() -> None:
    """Make ``import repro`` resolve to the in-tree ``src/`` package."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def emit_report(report, path) -> None:
    """Atomically write a benchmark report and announce the artifact path."""
    bootstrap_src()
    from repro.io.atomic import atomic_write_json

    atomic_write_json(report, path)
    print(f"wrote {path}")
