"""Shared bootstrap for the standalone benchmark scripts.

Every ``bench_*.py`` that runs as a plain script (not under pytest) needs
the same two pieces of boilerplate: put ``src/`` on ``sys.path`` so
``import repro`` works without an installed package, and write its JSON
report atomically so a killed CI job never leaves a truncated artifact.
Both live here so the scripts stay about measurement, not plumbing.

:func:`emit_report` also maintains ``BENCH_summary.json`` next to each
artifact: a single flat dotted-key merge of every sibling ``BENCH_*.json``
(``fleet_scale.scales.1e4.events_per_sec: 41000.0`` and so on), rebuilt
after every write.  One file per CI run answers "what were all the
numbers" without opening each artifact in turn.

Import order matters: call :func:`bootstrap_src` *before* any ``repro``
import in the script body::

    from _common import bootstrap_src, emit_report

    bootstrap_src()

    from repro.core.online import run_online
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: The repository root (the directory holding ``src/`` and ``benchmarks/``).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: The consolidated flat artifact rebuilt after every :func:`emit_report`.
SUMMARY_NAME = "BENCH_summary.json"


def bootstrap_src() -> None:
    """Make ``import repro`` resolve to the in-tree ``src/`` package."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def _flatten(value, prefix, out) -> None:
    if isinstance(value, dict):
        for key in value:
            child = f"{prefix}.{key}" if prefix else str(key)
            _flatten(value[key], child, out)
    else:
        # Lists (per-shard timing vectors and the like) stay intact: they
        # are already leaf metrics, not namespaces.
        out[prefix] = value


def write_summary(directory) -> dict:
    """Rebuild ``BENCH_summary.json`` from every ``BENCH_*.json`` sibling.

    Each artifact contributes its metrics under its stem minus the
    ``BENCH_`` prefix, nested keys joined with dots.  Truncated or
    non-object artifacts are skipped rather than failing the run -- the
    summary is a convenience view, never the gate.  Returns the merged
    flat mapping.
    """
    bootstrap_src()
    from repro.io.atomic import atomic_write_json

    directory = Path(directory)
    summary: dict = {}
    for artifact in sorted(directory.glob("BENCH_*.json")):
        if artifact.name == SUMMARY_NAME:
            continue
        try:
            payload = json.loads(artifact.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        stem = artifact.stem
        prefix = stem[len("BENCH_") :] if stem.startswith("BENCH_") else stem
        _flatten(payload, prefix, summary)
    atomic_write_json(summary, directory / SUMMARY_NAME)
    return summary


def emit_report(report, path) -> None:
    """Atomically write a benchmark report and announce the artifact path."""
    bootstrap_src()
    from repro.io.atomic import atomic_write_json

    atomic_write_json(report, path)
    print(f"wrote {path}")
    path = Path(path)
    if path.name.startswith("BENCH_") and path.name != SUMMARY_NAME:
        write_summary(path.parent)
