"""Ablations of the online strategy's design knobs (DESIGN.md ablation row).

The thesis fixes several constants rather arbitrarily (the communication
radius "could be any arbitrary constant number", the cube parameter can be
``omega_c`` or ``omega*``, the done threshold is implicit).  These
ablations quantify what those choices cost on a replacement-heavy workload:

* cube parameter ``omega``: larger cubes mean more idle spares per cube but
  longer replacement walks;
* done threshold: declaring done earlier wastes residual energy but keeps a
  safety margin;
* provisioned capacity: sweeping it down locates the empirical breaking
  point of the strategy, to compare against the theorem's ``38 * omega``.
"""

from __future__ import annotations

import pytest

from repro.core.demand import JobSequence
from repro.core.online import run_online
from repro.vehicles.fleet import FleetConfig

BURST = JobSequence.from_positions([(0, 0)] * 30)


@pytest.mark.parametrize("omega", [2.0, 3.0, 5.0])
def bench_ablation_cube_parameter(benchmark, omega):
    result = benchmark.pedantic(
        lambda: run_online(BURST, omega=omega, capacity=14.0),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        {
            "omega": omega,
            "cube_side": int(-(-omega // 1)),
            "feasible": result.feasible,
            "replacements": result.replacements,
            "messages": result.messages,
            "max_vehicle_energy": result.max_vehicle_energy,
            "total_travel": result.total_travel,
        }
    )
    assert result.feasible


@pytest.mark.parametrize("done_threshold", [1.5, 2.0, 4.0])
def bench_ablation_done_threshold(benchmark, done_threshold):
    config = FleetConfig(done_threshold=done_threshold)
    result = benchmark.pedantic(
        lambda: run_online(BURST, omega=3.0, capacity=14.0, config=config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        {
            "done_threshold": done_threshold,
            "feasible": result.feasible,
            "replacements": result.replacements,
            "max_vehicle_energy": result.max_vehicle_energy,
        }
    )
    assert result.feasible


@pytest.mark.parametrize("capacity", [8.0, 12.0, 20.0, 40.0])
def bench_ablation_capacity_sweep(benchmark, capacity):
    result = benchmark.pedantic(
        lambda: run_online(BURST, omega=3.0, capacity=capacity),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        {
            "capacity": capacity,
            "theorem_capacity": result.theorem_capacity,
            "feasible": result.feasible,
            "jobs_served": result.jobs_served,
            "replacements": result.replacements,
        }
    )
    # The theorem capacity is a guarantee; smaller capacities may or may not
    # work -- the sweep records where the strategy actually breaks.
    if capacity >= result.theorem_capacity:
        assert result.feasible
