"""E6 -- Algorithm 1: approximation quality and linear-time scaling.

Section 2.3 claims Algorithm 1 runs in time ``O(n^l)`` on an ``n x n``
window and returns a ``2 (2*3^l + l)``-approximation of ``W_off``.  The
benchmark times the algorithm across window sizes (the per-cell time should
stay roughly flat) and checks the estimate always lands inside the proven
approximation corridor.
"""

from __future__ import annotations

import pytest

from repro.core.offline import algorithm1, upper_bound_factor
from repro.core.omega import omega_star_cubes
from repro.grid.lattice import Box
from repro.workloads.generators import random_uniform_demand

WINDOW_SIDES = [16, 32, 64, 128]


@pytest.mark.parametrize("side", WINDOW_SIDES)
def bench_algorithm1_scaling(benchmark, rng, side):
    window = Box.cube((0, 0), side)
    # Keep the demand density constant so the workload grows with the window.
    demand = random_uniform_demand(window, 2 * side * side // 10, rng)

    result = benchmark(lambda: algorithm1(demand, window))

    benchmark.extra_info.update(
        {
            "window_side": side,
            "cells": side * side,
            "estimate": result.estimate,
            "terminal_cube_side": result.terminal_cube_side,
            "early_exit": result.early_exit or "none",
        }
    )
    assert result.estimate > 0


@pytest.mark.parametrize("side", [16, 32])
def bench_algorithm1_approximation(benchmark, rng, side):
    window = Box.cube((0, 0), side)
    demand = random_uniform_demand(window, 40 * side, rng)

    result = benchmark(lambda: algorithm1(demand, window))

    lower = omega_star_cubes(demand).omega
    factor = upper_bound_factor(2)
    benchmark.extra_info.update(
        {
            "window_side": side,
            "estimate": result.estimate,
            "omega_star_lower_bound": lower,
            "estimate_over_lower_bound": result.estimate / max(lower, 1e-9),
            "paper_approximation_factor": 2 * factor,
        }
    )
    # The estimate upper-bounds W_off >= omega* and is within 2 * factor of
    # W_off <= factor * omega* (doubling granularity adds at most another 2x).
    assert result.estimate >= lower - 1e-9
    assert result.estimate <= 4 * factor * max(lower, 1.0) + factor
