"""E13 -- Chapter 1 review: classical baselines vs the CMVRP.

The thesis positions the CMVRP against the classical single-depot CVRP and
the Transportation Problem.  This benchmark drives the classical solvers
and the thesis's offline characterization through the same
:class:`~repro.api.ExperimentEngine`, so the comparison rows come from one
result shape:

* classical CVRP (Clarke--Wright / sweep / nearest-neighbor): total route
  length from one central depot, and the max per-route energy it implies;
* CMVRP (this paper): max per-vehicle energy with a vehicle at every
  vertex (the audited Lemma 2.2.5 plan).

The shape claim is the motivation of the thesis: with vehicles everywhere
the min-max energy is far below what any single-depot fleet needs, because
the depot fleet must pay the travel to reach distant customers.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine, RunConfig, ScenarioSpec
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {
    s.name: s for s in paper_scenarios(random_window=10, random_jobs=150)
}
HEURISTICS = ("clarke-wright", "sweep", "nearest-neighbor")


def _spec(scenario_name: str) -> ScenarioSpec:
    return ScenarioSpec.from_demand(SCENARIOS[scenario_name].demand, name=scenario_name)


@pytest.mark.parametrize("heuristic", HEURISTICS)
@pytest.mark.parametrize("scenario_name", ["square", "uniform", "clustered"])
def bench_cvrp_vs_cmvrp(benchmark, scenario_name, heuristic):
    spec = _spec(scenario_name)
    engine = ExperimentEngine()
    cmvrp = engine.run(RunConfig(solver="offline", scenario=spec))
    vehicle_capacity = max(2 * cmvrp.max_vehicle_energy, 10.0)
    config = RunConfig(
        solver="cvrp",
        scenario=spec,
        params={"heuristic": heuristic, "vehicle_capacity": vehicle_capacity},
    )

    solution = benchmark(lambda: ExperimentEngine().run(config))

    benchmark.extra_info.update(
        {
            "scenario": scenario_name,
            "solver": heuristic,
            "cvrp_total_route_length": solution.objective,
            "cvrp_max_route_energy": solution.max_vehicle_energy,
            "cmvrp_max_vehicle_energy": cmvrp.max_vehicle_energy,
            "cmvrp_lower_bound": cmvrp.omega_star,
        }
    )
    assert solution.feasible
    # The thesis's motivation: dispersing vehicles beats a central depot on
    # the min-max energy objective.
    assert cmvrp.max_vehicle_energy <= solution.max_vehicle_energy + 1e-9


def bench_transportation_problem(benchmark):
    """The classical earth-mover LP on a supply/demand pair derived from a scenario."""
    spec = _spec("clustered")
    config = RunConfig(
        solver="transportation", scenario=spec, params={"supply": "uniform"}
    )

    result = benchmark(lambda: ExperimentEngine().run(config))

    total_mass = SCENARIOS["clustered"].demand.total()
    benchmark.extra_info.update(
        {
            "total_mass": total_mass,
            "earth_mover_cost": result.objective,
            "mean_transport_distance": result.extra("mean_transport_distance"),
        }
    )
    assert result.objective >= 0
