"""E13 -- Chapter 1 review: classical baselines vs the CMVRP.

The thesis positions the CMVRP against the classical single-depot CVRP and
the Transportation Problem.  This benchmark converts the paper scenarios
into classical instances and reports both objectives side by side:

* classical CVRP (Clarke--Wright / sweep / nearest-neighbor): total route
  length from one central depot, and the max per-route energy it implies;
* CMVRP (this paper): max per-vehicle energy with a vehicle at every
  vertex (the audited Lemma 2.2.5 plan).

The shape claim is the motivation of the thesis: with vehicles everywhere
the min-max energy is far below what any single-depot fleet needs, because
the depot fleet must pay the travel to reach distant customers.
"""

from __future__ import annotations

import pytest

from repro.baselines.cvrp import (
    CVRPInstance,
    clarke_wright,
    nearest_neighbor_routes,
    sweep_routes,
)
from repro.baselines.transportation import transportation_problem
from repro.core.offline import offline_bounds
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {
    s.name: s for s in paper_scenarios(random_window=10, random_jobs=150)
}
SOLVERS = {
    "clarke_wright": clarke_wright,
    "sweep": sweep_routes,
    "nearest_neighbor": nearest_neighbor_routes,
}


@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
@pytest.mark.parametrize("scenario_name", ["square", "uniform", "clustered"])
def bench_cvrp_vs_cmvrp(benchmark, scenario_name, solver_name):
    demand = SCENARIOS[scenario_name].demand
    bounds = offline_bounds(demand)
    vehicle_capacity = max(2 * bounds.constructive_capacity, 10.0)
    instance = CVRPInstance.from_demand_map(demand, capacity=vehicle_capacity)
    solver = SOLVERS[solver_name]

    solution = benchmark(lambda: solver(instance))

    benchmark.extra_info.update(
        {
            "scenario": scenario_name,
            "solver": solver_name,
            "cvrp_total_route_length": solution.total_length(),
            "cvrp_max_route_energy": solution.max_route_energy(),
            "cmvrp_max_vehicle_energy": bounds.constructive_capacity,
            "cmvrp_lower_bound": bounds.omega_star,
        }
    )
    assert solution.is_feasible()
    # The thesis's motivation: dispersing vehicles beats a central depot on
    # the min-max energy objective.
    assert bounds.constructive_capacity <= solution.max_route_energy() + 1e-9


def bench_transportation_problem(benchmark, rng):
    """The classical earth-mover LP on a supply/demand pair derived from a scenario."""
    demand = SCENARIOS["clustered"].demand
    # Supply: the same total mass spread uniformly over the demand's bounding box.
    box = demand.bounding_box()
    per_vertex = demand.total() / box.size
    supplies = {point: per_vertex for point in box.points()}

    result = benchmark(lambda: transportation_problem(supplies, demand.as_dict()))

    benchmark.extra_info.update(
        {
            "total_mass": demand.total(),
            "earth_mover_cost": result.cost,
            "mean_transport_distance": result.cost / demand.total(),
        }
    )
    assert result.cost >= 0
