"""E10 -- Chapter 4 / Theorem 4.1.1 / Figure 4.1: broken vehicles.

The LP lower bound of Theorem 4.1.1 evaluates to ``2 r1`` on the Figure 4.1
instance while the true requirement (executed as the single surviving
vehicle's shuttle) is ``Theta(r1^2)``: the gap grows linearly with ``r1``.
The benchmark sweeps ``r1``, times the bound computation, executes the
shuttle, and asserts the widening gap -- the chapter's main message.

The executable pieces run through :class:`repro.api.ExperimentEngine`: the
Figure 4.1 demand goes through the ``offline`` solver (whose healthy-model
``omega*`` also misses the broken requirement, sharpening the gap story),
and a fleet-level broken-vehicle run goes through ``online-broken`` with
events/sec reported like ``bench_scenarios.py``.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine, FailureSpec, RunConfig, ScenarioSpec
from repro.core.broken import (
    LongevityMap,
    broken_lower_bound,
    figure41_actual_requirement,
    figure41_instance,
    figure41_lp_lower_bound,
    simulate_single_vehicle_shuttle,
)
from repro.core.demand import DemandMap


@pytest.mark.parametrize("r1", [2, 4, 8, 16])
def bench_figure41_gap(benchmark, r1):
    instance = figure41_instance(r1, 3 * r1)

    lp_bound = benchmark(lambda: figure41_lp_lower_bound(instance))

    shuttle = simulate_single_vehicle_shuttle(instance.jobs, instance.point_k)
    closed_form = figure41_actual_requirement(r1)
    # The healthy-model characterization through the engine: omega* of the
    # same demand, which (like the LP) is blind to the broken fleet.
    offline = ExperimentEngine().run(
        RunConfig(
            solver="offline",
            scenario=ScenarioSpec.from_demand(
                instance.demand, name=f"figure41-r{r1}", order="alternating"
            ),
        )
    )
    benchmark.extra_info.update(
        {
            "r1": r1,
            "paper_lp_lower_bound": 2 * r1,
            "measured_lp_lower_bound": lp_bound,
            "healthy_model_omega_star": offline.omega_star,
            "paper_actual_requirement": closed_form,
            "simulated_shuttle_energy": shuttle,
            "gap_ratio": shuttle / lp_bound,
        }
    )
    assert lp_bound == pytest.approx(2 * r1, rel=1e-6)
    assert shuttle == pytest.approx(closed_form)
    assert shuttle / lp_bound >= 0.9 * r1  # the gap grows linearly in r1
    assert offline.omega_star <= shuttle  # the healthy bound misses it too


def bench_healthy_fleet_matches_chapter2(benchmark, rng):
    """With every longevity at 1 the Chapter 4 bound equals the Chapter 2 one."""
    demand = DemandMap(
        {
            (int(x), int(y)): float(v)
            for (x, y), v in zip(
                rng.integers(0, 5, size=(6, 2)), rng.uniform(1, 10, size=6)
            )
        }
    )
    healthy = LongevityMap(default=1.0)

    broken_value = benchmark(lambda: broken_lower_bound(demand, healthy))

    plain = ExperimentEngine().run(
        RunConfig(
            solver="offline",
            scenario=ScenarioSpec.from_demand(demand, name="healthy-fleet"),
        )
    )
    benchmark.extra_info.update(
        {"broken_model_bound": broken_value, "chapter2_bound": plain.omega_star}
    )
    from repro.core.omega import omega_star_exhaustive

    exhaustive = omega_star_exhaustive(demand).omega
    assert broken_value == pytest.approx(exhaustive, rel=1e-6)


def bench_broken_fleet_through_engine(benchmark):
    """A fleet-level broken-vehicle run (scenario 3) on the event driver.

    A 4x4 uniform demand with the two lexicographically first vehicles
    crashed; the monitoring loop must replace them.  Reported events/sec is
    the distsim hot-path number transport regressions would move.
    """
    demand = DemandMap({(x, y): 3.0 for x in range(4) for y in range(4)})
    config = RunConfig(
        solver="online-broken",
        scenario=ScenarioSpec.from_demand(demand, name="broken-grid", order="sequential"),
        # omega=3 makes 3x3 cubes, so every pair has peers to watch it;
        # the natural omega_c partition of spread demand yields singleton
        # cubes -- see bench_singleton_cube_escalation, which runs that
        # regime through the cross-cube escalation path instead.
        omega=3.0,
        failures=FailureSpec(crashed=((0, 0), (0, 1))),
        recovery_rounds=3,
    )
    engine = ExperimentEngine()

    result = benchmark.pedantic(
        lambda: engine.run(config), rounds=1, iterations=1, warmup_rounds=0
    )

    mean = benchmark.stats.stats.mean
    benchmark.extra_info.update(
        {
            "jobs_served": result.jobs_served,
            "jobs_total": result.jobs_total,
            "replacements": result.extra("replacements"),
            "events_processed": result.extra("events_processed"),
            "events_per_sec": (
                int(result.extra("events_processed", 0)) / mean if mean else 0.0
            ),
        }
    )
    assert result.jobs_served == result.jobs_total


def bench_singleton_cube_escalation(benchmark):
    """The omega_c < 1 singleton-cube regime, recovered by escalation.

    Historical note (this used to be a gap, worked around by forcing
    omega=3 above): with spread-out demand the natural partition makes
    every cube a single vertex, every vehicle starts active, and a dead
    vehicle's pair has no idle peer anywhere in its cube -- Phase I floods
    stopped at cube boundaries, so replacement was *impossible* and jobs at
    crashed vertices were abandoned.  With ``escalation=True`` the
    fleet-wide watch ring detects the silent pair across the cube
    boundary, the watcher's search escalates through the cube hierarchy,
    and an active vehicle with spare battery adopts the dead pair: every
    job is served whenever fleet-wide capacity suffices, which is the
    paper's own claim.  The benchmark executes both runs and asserts the
    before/after story.
    """
    demand = DemandMap({(3 * x, 3 * y): 2.0 for x in range(3) for y in range(3)})
    from repro.core.omega import omega_c

    assert omega_c(demand) < 1.0  # the singleton-cube regime, for real
    base = dict(
        solver="online-broken",
        scenario=ScenarioSpec.from_demand(
            demand, name="singleton-cubes", order="sequential"
        ),
        capacity=24.0,
        failures=FailureSpec(crashed=((0, 0), (0, 3))),
        recovery_rounds=6,
    )
    engine = ExperimentEngine()
    escalated_config = RunConfig(**base, escalation=True)

    escalated = benchmark.pedantic(
        lambda: engine.run(escalated_config), rounds=1, iterations=1, warmup_rounds=0
    )

    intra_cube = engine.run(RunConfig(**base))
    mean = benchmark.stats.stats.mean
    benchmark.extra_info.update(
        {
            "omega_c": omega_c(demand),
            "note": "singleton cubes: intra-cube search has no replacement path; "
            "escalation adopts across cube boundaries",
            "jobs_served_intra_cube": intra_cube.jobs_served,
            "jobs_served_escalated": escalated.jobs_served,
            "jobs_total": escalated.jobs_total,
            "escalations": escalated.extra("escalations"),
            "adoptions": escalated.extra("adoptions"),
            "events_processed": escalated.extra("events_processed"),
            "events_per_sec": (
                int(escalated.extra("events_processed", 0)) / mean if mean else 0.0
            ),
        }
    )
    # Without escalation the crashed singleton cubes' jobs are abandoned...
    assert intra_cube.jobs_served < intra_cube.jobs_total
    # ...with escalation, replacement *succeeds* and every job is served.
    assert escalated.jobs_served == escalated.jobs_total
    assert int(escalated.extra("escalations", 0)) >= 1
    assert int(escalated.extra("adoptions", 0)) >= 1
