"""E10 -- Chapter 4 / Theorem 4.1.1 / Figure 4.1: broken vehicles.

The LP lower bound of Theorem 4.1.1 evaluates to ``2 r1`` on the Figure 4.1
instance while the true requirement (executed as the single surviving
vehicle's shuttle) is ``Theta(r1^2)``: the gap grows linearly with ``r1``.
The benchmark sweeps ``r1``, times the bound computation, executes the
shuttle, and asserts the widening gap -- the chapter's main message.
"""

from __future__ import annotations

import pytest

from repro.core.broken import (
    broken_lower_bound,
    figure41_actual_requirement,
    figure41_instance,
    figure41_lp_lower_bound,
    simulate_single_vehicle_shuttle,
)
from repro.core.demand import DemandMap
from repro.core.broken import LongevityMap


@pytest.mark.parametrize("r1", [2, 4, 8, 16])
def bench_figure41_gap(benchmark, r1):
    instance = figure41_instance(r1, 3 * r1)

    lp_bound = benchmark(lambda: figure41_lp_lower_bound(instance))

    shuttle = simulate_single_vehicle_shuttle(instance.jobs, instance.point_k)
    closed_form = figure41_actual_requirement(r1)
    benchmark.extra_info.update(
        {
            "r1": r1,
            "paper_lp_lower_bound": 2 * r1,
            "measured_lp_lower_bound": lp_bound,
            "paper_actual_requirement": closed_form,
            "simulated_shuttle_energy": shuttle,
            "gap_ratio": shuttle / lp_bound,
        }
    )
    assert lp_bound == pytest.approx(2 * r1, rel=1e-6)
    assert shuttle == pytest.approx(closed_form)
    assert shuttle / lp_bound >= 0.9 * r1  # the gap grows linearly in r1


def bench_healthy_fleet_matches_chapter2(benchmark, rng):
    """With every longevity at 1 the Chapter 4 bound equals the Chapter 2 one."""
    demand = DemandMap(
        {
            (int(x), int(y)): float(v)
            for (x, y), v in zip(
                rng.integers(0, 5, size=(6, 2)), rng.uniform(1, 10, size=6)
            )
        }
    )
    healthy = LongevityMap(default=1.0)

    broken_value = benchmark(lambda: broken_lower_bound(demand, healthy))

    from repro.core.omega import omega_star_exhaustive

    plain = omega_star_exhaustive(demand).omega
    benchmark.extra_info.update(
        {"broken_model_bound": broken_value, "chapter2_bound": plain}
    )
    assert broken_value == pytest.approx(plain, rel=1e-6)
