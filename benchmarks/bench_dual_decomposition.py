"""E7 -- Figures 2.4 / 2.5: the Lemma 2.2.1 alpha -> h decomposition.

Lemma 2.2.1 converts a vertex-weight profile ``alpha`` into nested subset
weights ``h`` with the same LP objective; Figures 2.4 and 2.5 illustrate
the level-set peeling.  The benchmark times the decomposition on random
profiles and asserts the two invariants of the lemma: mass preservation
(``sum h(T) |T| = sum alpha_i``) and objective equality for demands whose
radius-r balls stay inside the profile's support.
"""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.core.lp import alpha_objective, alpha_to_h, h_mass, h_objective


def _alpha_profile(rng, side: int):
    values = rng.random((side, side))
    values /= values.sum()
    return {
        (int(x), int(y)): float(values[x, y])
        for x in range(side)
        for y in range(side)
    }


@pytest.mark.parametrize("side", [6, 10, 14])
def bench_alpha_to_h(benchmark, rng, side):
    alpha = _alpha_profile(rng, side)

    h = benchmark(lambda: alpha_to_h(alpha))

    # Interior demand points whose radius-1 ball stays inside the profile.
    demand = DemandMap(
        {
            (x, y): 1.0 + ((x * 7 + y * 3) % 5)
            for x in range(1, side - 1)
            for y in range(1, side - 1)
        }
    )
    alpha_value = alpha_objective(demand, 1, alpha)
    h_value = h_objective(demand, 1, h)
    benchmark.extra_info.update(
        {
            "profile_side": side,
            "num_subsets": len(h),
            "alpha_mass": sum(alpha.values()),
            "h_mass": h_mass(h),
            "lp_2_2_objective": alpha_value,
            "lp_2_3_objective": h_value,
        }
    )
    assert h_mass(h) == pytest.approx(sum(alpha.values()), rel=1e-9)
    assert h_value == pytest.approx(alpha_value, rel=1e-9)
