"""E2 -- Example 2.1.2 / Figures 2.1(b), 2.2: demand d on every point of a line.

The worked example predicts ``W = Theta(W2)`` with ``W2 (2 W2 + 1) = d``
(a square-root law in d) and exhibits the explicit move-to-the-line
strategy of Figure 2.2 using ``2 W2`` per vehicle.  The benchmark sweeps d,
measures the library's bounds, and checks the sqrt scaling and the
bounded ratio against ``W2``.
"""

from __future__ import annotations

import math

import pytest

from repro.core.offline import offline_bounds
from repro.core.omega import example_line_bound
from repro.workloads.generators import line_demand


@pytest.mark.parametrize("per_point", [5.0, 20.0, 80.0])
def bench_line_bounds(benchmark, per_point):
    demand = line_demand(40, per_point)

    bounds = benchmark(lambda: offline_bounds(demand))

    w2 = example_line_bound(per_point)
    benchmark.extra_info.update(
        {
            "per_point_demand": per_point,
            "paper_W2": w2,
            "measured_omega_star": bounds.omega_star,
            "measured_plan_capacity": bounds.constructive_capacity,
            "plan_over_W2": bounds.constructive_capacity / w2,
        }
    )
    assert bounds.omega_star >= w2 / 4
    assert bounds.constructive_capacity >= w2 - 1e-9
    assert bounds.constructive_capacity <= 25 * w2 + 5


def bench_line_sqrt_scaling(benchmark):
    """Quadrupling the per-point demand roughly doubles the requirement."""

    def sweep():
        return {
            d: offline_bounds(line_demand(40, d)).omega_star for d in (10.0, 40.0, 160.0)
        }

    results = benchmark(sweep)
    benchmark.extra_info.update({f"omega_star_d_{k:g}": v for k, v in results.items()})
    ratio_low = results[40.0] / results[10.0]
    ratio_high = results[160.0] / results[40.0]
    benchmark.extra_info["measured_growth_ratios"] = [ratio_low, ratio_high]
    benchmark.extra_info["paper_predicted_ratio"] = 2.0
    assert ratio_low == pytest.approx(2.0, rel=0.5)
    assert ratio_high == pytest.approx(2.0, rel=0.5)
