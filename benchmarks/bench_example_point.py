"""E3 -- Example 2.1.3 / Figures 2.1(c), 2.3: all demand at a single point.

The worked example predicts ``W = Theta(W3)`` with ``W3 (2 W3 + 1)^2 = d``
(a cube-root law) and the Figure 2.3 strategy using ``3 W3`` per vehicle.
"""

from __future__ import annotations

import pytest

from repro.core.offline import offline_bounds
from repro.core.omega import example_point_bound
from repro.workloads.generators import point_demand


@pytest.mark.parametrize("total", [64.0, 512.0, 4096.0])
def bench_point_bounds(benchmark, total):
    demand = point_demand(total)

    bounds = benchmark(lambda: offline_bounds(demand))

    w3 = example_point_bound(total)
    benchmark.extra_info.update(
        {
            "burst_demand": total,
            "paper_W3": w3,
            "measured_omega_star": bounds.omega_star,
            "measured_plan_capacity": bounds.constructive_capacity,
            "plan_over_W3": bounds.constructive_capacity / w3,
        }
    )
    assert bounds.omega_star >= w3 - 1e-9
    assert bounds.omega_star <= 3 * w3 + 2
    assert bounds.constructive_capacity <= 25 * w3 + 5


def bench_point_cube_root_scaling(benchmark):
    """Multiplying the burst by 8 roughly doubles the requirement."""

    def sweep():
        return {
            d: offline_bounds(point_demand(d)).omega_star for d in (100.0, 800.0, 6400.0)
        }

    results = benchmark(sweep)
    benchmark.extra_info.update({f"omega_star_d_{k:g}": v for k, v in results.items()})
    ratio_low = results[800.0] / results[100.0]
    ratio_high = results[6400.0] / results[800.0]
    benchmark.extra_info["measured_growth_ratios"] = [ratio_low, ratio_high]
    benchmark.extra_info["paper_predicted_ratio"] = 2.0
    assert ratio_low == pytest.approx(2.0, rel=0.5)
    assert ratio_high == pytest.approx(2.0, rel=0.5)
