"""E1 -- Example 2.1.1 / Figure 2.1(a): demand d on an a x a square.

The worked example predicts the optimal capacity is ``Theta(W1)`` with
``W1`` the root of ``W (2W + a)^2 = d a^2``, approaching ``d`` as the
square grows.  The benchmark sweeps the square side and per-point demand,
measures the library's lower bound ``omega*`` and the audited constructive
capacity, and checks both stay within small constants of ``W1``.
"""

from __future__ import annotations

import pytest

from repro.core.offline import offline_bounds, upper_bound_factor
from repro.core.omega import example_square_bound
from repro.workloads.generators import square_demand


@pytest.mark.parametrize("side,per_point", [(4, 10.0), (8, 10.0), (8, 40.0), (16, 10.0)])
def bench_square_bounds(benchmark, side, per_point):
    demand = square_demand(side, per_point)

    bounds = benchmark(lambda: offline_bounds(demand))

    w1 = example_square_bound(side, per_point)
    benchmark.extra_info.update(
        {
            "side": side,
            "per_point_demand": per_point,
            "paper_W1": w1,
            "measured_omega_star": bounds.omega_star,
            "measured_plan_capacity": bounds.constructive_capacity,
            "plan_over_W1": bounds.constructive_capacity / w1,
        }
    )
    # Shape checks: W1 lower-bounds any feasible capacity; the audited plan
    # stays within the thesis's constant of the lower bound.
    assert bounds.constructive_capacity >= w1 - 1e-9
    assert bounds.constructive_capacity <= upper_bound_factor(2) * bounds.omega_star + 1e-6
    assert bounds.omega_star <= per_point + 1e-9


def bench_square_w_approaches_d(benchmark):
    """As the square grows (a >> d), the requirement approaches d."""
    per_point = 4.0

    def sweep():
        return {
            side: offline_bounds(square_demand(side, per_point)).omega_star
            for side in (4, 16, 64)
        }

    results = benchmark(sweep)
    benchmark.extra_info.update({f"omega_star_side_{k}": v for k, v in results.items()})
    benchmark.extra_info["per_point_demand"] = per_point
    values = [results[4], results[16], results[64]]
    assert values == sorted(values)
    assert results[64] >= 0.6 * per_point
    assert results[64] <= per_point + 1e-9
