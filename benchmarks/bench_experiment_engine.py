"""E14 -- the batch execution engine: fan-out, caching, determinism.

The :class:`~repro.api.ExperimentEngine` is the throughput path toward the
ROADMAP's production-scale goal: one process should grind through large
scenario x solver x seed matrices as fast as the hardware allows.  This
benchmark measures

* a full matrix executed serially vs over the worker pool,
* the cache path (a warm engine re-running the same matrix), and

asserts the load-bearing property: worker count never changes the results,
and the cache returns the exact same records without re-solving.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine, ScenarioSpec, config_matrix
from repro.core.demand import DemandMap

#: Small inline scenarios so the benchmark measures engine overhead and
#: fan-out, not one giant solve.
_SPECS = [
    ScenarioSpec.from_demand(
        DemandMap({(0, 0): 6.0, (2, 1): 4.0, (x, x): 2.0}), name=f"diag{x}"
    )
    for x in range(3, 7)
]
_SOLVERS = ["offline", "greedy", "tsp"]
_MATRIX = config_matrix(_SPECS, _SOLVERS, seeds=[0, 1])


@pytest.mark.parametrize("workers", [1, 4])
def bench_engine_matrix(benchmark, workers):
    results = benchmark(lambda: ExperimentEngine(workers=workers).run_many(_MATRIX))

    benchmark.extra_info.update(
        {
            "workers": workers,
            "runs": len(results),
            "feasible_runs": sum(1 for r in results if r.feasible),
        }
    )
    assert len(results) == len(_MATRIX)
    # Worker count must not change the results.
    baseline = ExperimentEngine(workers=1).run_many(_MATRIX)
    assert results == baseline


def bench_engine_cache_hits(benchmark):
    engine = ExperimentEngine()
    cold = engine.run_many(_MATRIX)

    warm = benchmark(lambda: engine.run_many(_MATRIX))

    benchmark.extra_info.update(
        {
            "runs": len(_MATRIX),
            "executed": engine.stats.executed,
            "cache_hits": engine.stats.cache_hits,
        }
    )
    assert warm == cold
    assert engine.stats.executed == len(_MATRIX)  # nothing re-solved after warmup
