"""E9 -- Section 3.2.5 scenarios 2/3: initiation failures and dead vehicles.

Scenario 2: a done vehicle fails to start its diffusing computation.
Scenario 3: a constant number of active vehicles die.  In both cases the
monitoring loop (heartbeats + watch pointers) must still get every job
served, at the cost of extra messages and a bounded number of extra
replacements.

Both scenarios now run through :class:`repro.api.ExperimentEngine` as
ordinary ``online-broken`` configs (failure injection via
:class:`~repro.api.FailureSpec`), so the benchmark exercises the same path
every sweep does, and events/sec of the event-driven driver is reported
like ``bench_scenarios.py``.  A third benchmark layers a lossy transport on
scenario 2 -- the recovery loop must survive message loss too.
"""

from __future__ import annotations

from repro.api import ExperimentEngine, FailureSpec, RunConfig, ScenarioSpec, TransportSpec
from repro.core.demand import DemandMap
from repro.vehicles.fleet import Fleet, FleetConfig


def _events_per_sec(result, benchmark) -> float:
    mean = benchmark.stats.stats.mean
    return int(result.extra("events_processed", 0)) / mean if mean else 0.0


def _scenario2_config(transport: TransportSpec | None = None) -> RunConfig:
    scenario = ScenarioSpec.from_demand(
        DemandMap({(0, 0): 20.0}), name="scenario2-point", order="sequential"
    )
    return RunConfig(
        solver="online-broken",
        scenario=scenario,
        capacity=8.0,
        omega=3.0,
        failures=FailureSpec(suppressed=((0, 0),)),
        transport=transport,
        recovery_rounds=4,
    )


def bench_scenario2_initiation_failure(benchmark):
    engine = ExperimentEngine()
    config = _scenario2_config()

    result = benchmark.pedantic(
        lambda: engine.run(config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    benchmark.extra_info.update(
        {
            "scenario": "2 (done vehicle fails to initiate)",
            "jobs_served": result.jobs_served,
            "jobs_total": result.jobs_total,
            "replacements": result.extra("replacements"),
            "messages": result.extra("messages"),
            "heartbeat_rounds": result.extra("heartbeat_rounds"),
            "events_processed": result.extra("events_processed"),
            "events_per_sec": _events_per_sec(result, benchmark),
        }
    )
    assert result.feasible


def _scenario3_victims(demand: DemandMap) -> tuple:
    """The first two initially-active vehicles (the pairs' black vertices)."""
    fleet = Fleet(demand, 3.0, FleetConfig(capacity=40.0, monitoring=True))
    return tuple(list(fleet.registry.values())[:2])


def bench_scenario3_dead_vehicles(benchmark):
    demand = DemandMap({(0, 0): 12.0, (1, 1): 6.0})
    scenario = ScenarioSpec.from_demand(
        demand, name="scenario3-dead", order="sequential"
    )
    config = RunConfig(
        solver="online-broken",
        scenario=scenario,
        capacity=40.0,
        omega=3.0,
        failures=FailureSpec(crashed=_scenario3_victims(demand)),
        recovery_rounds=4,
    )
    engine = ExperimentEngine()

    result = benchmark.pedantic(
        lambda: engine.run(config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    benchmark.extra_info.update(
        {
            "scenario": "3 (dead active vehicles)",
            "jobs_served": result.jobs_served,
            "jobs_total": result.jobs_total,
            "watch_initiations": result.extra("searches"),
            "replacements": result.extra("replacements"),
            "messages": result.extra("messages"),
            "max_vehicle_energy": result.max_vehicle_energy,
            "events_processed": result.extra("events_processed"),
            "events_per_sec": _events_per_sec(result, benchmark),
        }
    )
    assert result.feasible
    assert result.extra("replacements") >= 1


def bench_scenario2_over_lossy_transport(benchmark):
    """Scenario 2 recovery with 10% seeded message loss on the channel."""
    engine = ExperimentEngine()
    config = _scenario2_config(TransportSpec("lossy", {"loss": 0.1, "seed": 3}))

    result = benchmark.pedantic(
        lambda: engine.run(config),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    benchmark.extra_info.update(
        {
            "scenario": "2 + lossy transport",
            "jobs_served": result.jobs_served,
            "jobs_total": result.jobs_total,
            "messages_dropped": result.extra("messages_dropped"),
            "events_processed": result.extra("events_processed"),
            "events_per_sec": _events_per_sec(result, benchmark),
        }
    )
    # Loss may cost retries but the monitoring loop must keep serving.
    assert result.jobs_served >= result.jobs_total // 2
    assert result.extra("messages_dropped") > 0
