"""E9 -- Section 3.2.5 scenarios 2/3: initiation failures and dead vehicles.

Scenario 2: a done vehicle fails to start its diffusing computation.
Scenario 3: a constant number of active vehicles die.  In both cases the
monitoring loop (heartbeats + watch pointers) must still get every job
served, at the cost of extra messages and a bounded number of extra
replacements.  The benchmark runs both scenarios through the real protocol
and records the recovery statistics.
"""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap, JobSequence
from repro.core.online import run_online
from repro.distsim.failures import FailurePlan
from repro.vehicles.fleet import Fleet, FleetConfig


def bench_scenario2_initiation_failure(benchmark):
    jobs = JobSequence.from_positions([(0, 0)] * 20)
    plan = FailurePlan()
    plan.suppress_initiation((0, 0))

    result = benchmark.pedantic(
        lambda: run_online(
            jobs,
            omega=3.0,
            capacity=8.0,
            config=FleetConfig(monitoring=True),
            failure_plan=plan,
            recovery_rounds=4,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    benchmark.extra_info.update(
        {
            "scenario": "2 (done vehicle fails to initiate)",
            "jobs_served": result.jobs_served,
            "jobs_total": result.jobs_total,
            "replacements": result.replacements,
            "messages": result.messages,
            "heartbeat_rounds": result.heartbeat_rounds,
        }
    )
    assert result.feasible


def _run_scenario3() -> Fleet:
    demand = DemandMap({(0, 0): 12.0, (1, 1): 6.0})
    config = FleetConfig(capacity=40.0, monitoring=True)
    fleet = Fleet(demand, 3.0, config)
    # Two active vehicles die before any job arrives (a constant number, as
    # scenario 3 allows).
    victims = list(fleet.registry.values())[:2]
    for victim in victims:
        fleet.crash_vehicle(victim)
    unserved = 0
    positions = [(0, 0)] * 12 + [(1, 1)] * 6
    for position in positions:
        served = fleet.deliver_job(position)
        if not served:
            for _ in range(4):
                fleet.run_heartbeat_round()
            served = fleet.retry_job(position)
        if not served:
            unserved += 1
        fleet.run_heartbeat_round()
    assert unserved == 0
    return fleet


def bench_scenario3_dead_vehicles(benchmark):
    fleet = benchmark.pedantic(_run_scenario3, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "scenario": "3 (dead active vehicles)",
            "jobs_unserved": fleet.stats.jobs_unserved,
            "watch_initiations": fleet.stats.watch_initiations,
            "replacements": fleet.stats.replacements,
            "messages": fleet.messages_sent(),
            "max_vehicle_energy": fleet.max_energy_used(),
        }
    )
    assert fleet.stats.jobs_unserved == 0
    assert fleet.stats.replacements >= 1
