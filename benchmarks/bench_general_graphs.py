"""E14 (extension) -- Chapter 6 future work: CMVRP on general graphs.

Not a figure of the thesis but its explicitly stated open direction.  The
benchmark checks that the graph generalization degenerates to the lattice
answers on grid graphs (a consistency requirement for the extension to be
meaningful) and reports the lower/upper gap on non-lattice topologies,
which is the quantity the open problem asks about.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.demand import DemandMap
from repro.core.omega import omega_star_exhaustive
from repro.graphs import GraphMetric, graph_bounds, graph_omega_star

TOPOLOGIES = {
    "grid_6x6": nx.grid_2d_graph(6, 6),
    "cycle_24": nx.cycle_graph(24),
    "tree_depth3": nx.balanced_tree(2, 3),
    "small_world": nx.connected_watts_strogatz_graph(30, 4, 0.2, seed=7),
}


def _demand_for(graph: nx.Graph) -> dict:
    nodes = sorted(graph.nodes, key=str)
    return {nodes[0]: 12.0, nodes[len(nodes) // 2]: 8.0, nodes[-1]: 5.0}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def bench_graph_bounds(benchmark, name):
    metric = GraphMetric(TOPOLOGIES[name])
    demand = _demand_for(TOPOLOGIES[name])

    bounds = benchmark.pedantic(
        lambda: graph_bounds(metric, demand, tolerance=0.05),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    benchmark.extra_info.update(
        {
            "topology": name,
            "nodes": TOPOLOGIES[name].number_of_nodes(),
            "omega_star_lower_bound": bounds.omega_star,
            "transport_relaxation": bounds.transport_relaxation,
            "greedy_upper_bound": bounds.greedy_capacity,
            "gap": bounds.gap,
        }
    )
    assert bounds.omega_star <= bounds.greedy_capacity + 0.1
    assert bounds.transport_relaxation == pytest.approx(bounds.omega_star, rel=0.1)


def bench_grid_graph_matches_lattice(benchmark):
    """On a grid graph the generalization reproduces the lattice answer."""
    graph = nx.grid_2d_graph(5, 5)
    metric = GraphMetric(graph)
    demand = {(2, 2): 9.0, (0, 0): 4.0}

    graph_value = benchmark(lambda: graph_omega_star(metric, demand))

    lattice_value = omega_star_exhaustive(DemandMap(demand)).omega
    benchmark.extra_info.update(
        {"graph_omega_star": graph_value, "lattice_omega_star": lattice_value}
    )
    # The finite 5x5 grid graph truncates neighborhoods at its border, so its
    # omega can only be larger than (or equal to) the infinite-lattice value.
    assert graph_value >= lattice_value - 1e-9
    assert graph_value <= 3 * lattice_value + 1
