#!/usr/bin/env python
"""Gossip failure-detection benchmark: latency and overhead at 10^3 vehicles.

The epidemic detector (``FleetConfig(monitoring="gossip")``) claims two
things worth gating:

* **bounded detection latency** -- with digests reaching ``fanout`` peers
  per round, a crashed pair is suspected, quorum-attested, and handed to
  a replacement search within ``O(log n)`` heartbeat rounds, even on a
  lossy channel.  The benchmark crashes several vehicles across distant
  cubes of a ~10^3-vehicle fleet under 10% message loss, drives heartbeat
  rounds until every crash is detected, and records the detection-round
  quantiles (p50/p99).  They must clear ``2 * log2(n) * miss_threshold``
  -- twice the epidemic-spread argument's round count, leaving room for
  the suspicion and attestation round trips;
* **modest round overhead** -- digest traffic rides the existing
  heartbeat loop, so a gossip round should cost a small constant factor
  over the identical ring-monitored round (measured failure-free on the
  same lossy channel; the factor is the digest + beacon traffic).

Results go to ``BENCH_gossip.json`` (folded into ``BENCH_summary.json``)
and are gated against the committed ``gossip_detection_rounds_1e3``
ceiling by ``check_events_per_sec.py --gossip-report``.

Usage::

    PYTHONPATH=src python benchmarks/bench_gossip.py [--quick] \
        [--out BENCH_gossip.json]
"""

from __future__ import annotations

import argparse
import math
import sys
import time

from _common import bootstrap_src, emit_report

bootstrap_src()

from repro.distsim.transport import TransportSpec, build_transport
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.workloads.library import build_family_demand

#: scale-up side 32 provisions a ~10^3-vehicle fleet under omega=3.
SIDE = 32
OMEGA = 3.0

#: Vehicles dead from the start, spread across distant cubes.
CRASHED = ((0, 0), (15, 15), (30, 30), (0, 30))

#: 10% message loss -- the acceptance scenario's channel.
LOSS = TransportSpec("lossy", {"loss": 0.1, "seed": 3})

#: Heartbeat rounds measured for the throughput comparison.
THROUGHPUT_ROUNDS = 15

#: Detection must land within this many rounds (far above the bound;
#: a cap so a broken detector fails instead of spinning forever).
ROUND_CAP = 200


def _fleet(monitoring) -> Fleet:
    demand = build_family_demand("scale-up", {"side": SIDE, "per_point": 2.0})
    return Fleet(
        demand,
        omega=OMEGA,
        config=FleetConfig(monitoring=monitoring),
        transport=build_transport(LOSS),
    )


def measure_round_throughput(monitoring) -> dict:
    """Cost of a failure-free monitored heartbeat round on the lossy channel."""
    fleet = _fleet(monitoring)
    fleet.run_heartbeat_round()  # warm caches (index map, numpy views)
    sent_before = fleet.network.messages_sent
    start = time.perf_counter()
    for _ in range(THROUGHPUT_ROUNDS):
        fleet.run_heartbeat_round()
    elapsed = time.perf_counter() - start
    sent = fleet.network.messages_sent - sent_before
    return {
        "monitoring": "gossip" if monitoring == "gossip" else "ring",
        "vehicles": len(fleet.vehicles),
        "rounds": THROUGHPUT_ROUNDS,
        "rounds_per_sec": THROUGHPUT_ROUNDS / elapsed if elapsed else 0.0,
        "seconds_per_round": elapsed / THROUGHPUT_ROUNDS,
        "messages_sent": sent,
        "events_per_sec": sent / elapsed if elapsed else 0.0,
    }


def measure_detection() -> dict:
    """Rounds until every crashed pair is detected, under 10% loss."""
    fleet = _fleet("gossip")
    for identity in CRASHED:
        fleet.crash_vehicle(identity)
    start = time.perf_counter()
    rounds = 0
    while fleet.detection_digest.count < len(CRASHED) and rounds < ROUND_CAP:
        fleet.run_heartbeat_round()
        rounds += 1
    elapsed = time.perf_counter() - start
    return {
        "vehicles": len(fleet.vehicles),
        "crashed": len(CRASHED),
        "detections": int(fleet.detection_digest.count),
        "rounds_driven": rounds,
        "detection_seconds": elapsed,
        "detection_p50": fleet.detection_digest.quantile(0.5),
        "detection_p99": fleet.detection_digest.quantile(0.99),
        "suspicions": fleet.stats.suspicions,
        "attestations": fleet.stats.attestations,
        "false_suspicions": fleet.stats.false_suspicions,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="accepted for CI symmetry; no-op"
    )
    parser.add_argument("--out", default="BENCH_gossip.json", help="output artifact path")
    args = parser.parse_args(argv)

    detection = measure_detection()
    ring = measure_round_throughput(True)
    gossip = measure_round_throughput("gossip")

    n = detection["vehicles"]
    miss = FleetConfig().heartbeat_miss_threshold
    bound_rounds = 2.0 * math.log2(max(n, 2)) * miss
    within_bound = (
        detection["detections"] == detection["crashed"]
        and detection["detection_p99"] <= bound_rounds
    )
    overhead = (
        gossip["seconds_per_round"] / ring["seconds_per_round"]
        if ring["seconds_per_round"]
        else float("inf")
    )

    report = {
        "scale": "1e3",
        "loss": 0.1,
        "detection": detection,
        "ring": ring,
        "gossip": gossip,
        "round_overhead": overhead,
        "gossip_detection_rounds_p50": detection["detection_p50"],
        "gossip_detection_rounds_p99": detection["detection_p99"],
        "detection_bound_rounds": bound_rounds,
        "within_bound": within_bound,
    }

    print(
        f"detection: {detection['detections']}/{detection['crashed']} crashes in "
        f"{detection['rounds_driven']} rounds "
        f"(p50 {detection['detection_p50']:.1f} / p99 {detection['detection_p99']:.1f}), "
        f"bound {bound_rounds:.1f} (n={n}, miss={miss}) -> "
        f"{'ok' if within_bound else 'EXCEEDED'}"
    )
    print(
        f"ring:   {ring['rounds_per_sec']:.1f} rounds/sec, "
        f"{ring['events_per_sec']:,.0f} msgs/sec"
    )
    print(
        f"gossip: {gossip['rounds_per_sec']:.1f} rounds/sec, "
        f"{gossip['events_per_sec']:,.0f} msgs/sec "
        f"(round overhead {overhead:.2f}x)"
    )

    emit_report(report, args.out)
    return 0 if within_bound else 1


if __name__ == "__main__":
    sys.exit(main())
