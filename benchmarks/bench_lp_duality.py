"""E4 -- Table 1 / LP (2.1)-(2.8) duality (Lemmas 2.2.2 and 2.2.3).

The thesis's only table is the primal/dual LP template; its content is the
chain of equivalences: the supply LP (2.1) equals its dual (2.4)/(2.5),
equals the closed form ``max_T sum_T d / |N_r(T)|`` (Lemma 2.2.2), and the
self-radius program (2.8) equals ``max_T omega_T`` (Lemma 2.2.3).  The
benchmark times the three independent solution paths on the same instances
and asserts they agree.
"""

from __future__ import annotations

import pytest

from repro.core.demand import DemandMap
from repro.core.flows import min_self_radius_capacity
from repro.core.lp import dual_alpha_lp, lp_value_by_subsets, supply_radius_lp
from repro.core.omega import omega_star_exhaustive
from repro.grid.lattice import Box
from repro.workloads.generators import random_uniform_demand

RADII = [0, 1, 2]


def _small_instance(rng) -> DemandMap:
    # Small enough (at most 16 support points) for the exhaustive-subset
    # closed form of Lemma 2.2.2 to be evaluated exactly.
    return random_uniform_demand(Box.cube((0, 0), 4), 30, rng)


@pytest.mark.parametrize("radius", RADII)
def bench_primal_lp(benchmark, rng, radius):
    demand = _small_instance(rng)
    solution = benchmark(lambda: supply_radius_lp(demand, radius))
    dual = dual_alpha_lp(demand, radius)
    closed_form, _ = lp_value_by_subsets(demand, radius)
    benchmark.extra_info.update(
        {
            "radius": radius,
            "primal_value": solution.value,
            "dual_value": dual.value,
            "lemma_2_2_2_closed_form": closed_form,
        }
    )
    assert solution.value == pytest.approx(dual.value, rel=1e-4)
    assert solution.value == pytest.approx(closed_form, rel=1e-4)


def bench_self_radius_program(benchmark, rng):
    demand = random_uniform_demand(Box.cube((0, 0), 4), 25, rng)
    flow_value = benchmark(lambda: min_self_radius_capacity(demand, tolerance=1e-3))
    combinatorial = omega_star_exhaustive(demand).omega
    benchmark.extra_info.update(
        {
            "program_2_8_value_flow_oracle": flow_value,
            "max_T_omega_T_exhaustive": combinatorial,
        }
    )
    assert flow_value == pytest.approx(combinatorial, rel=2e-2)
