"""E5 -- Theorem 1.4.1 / Corollaries 2.2.6-2.2.7: the W_off sandwich.

For every scenario of the paper suite, report the certified lower bound
``omega*``, the audited constructive capacity (an explicit feasible W), and
the worst-case upper bound ``(2*3^l + l) * omega*``; the shape claim is the
ordering and the fact that the realized gap stays far below the analytic
constant (20 in the plane).
"""

from __future__ import annotations

import pytest

from repro.core.offline import offline_bounds, upper_bound_factor
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {s.name: s for s in paper_scenarios(random_window=12, random_jobs=250)}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def bench_offline_sandwich(benchmark, name):
    demand = SCENARIOS[name].demand
    bounds = benchmark(lambda: offline_bounds(demand))
    benchmark.extra_info.update(
        {
            "scenario": name,
            "omega_c": bounds.omega_c,
            "omega_star": bounds.omega_star,
            "constructive_capacity": bounds.constructive_capacity,
            "theory_upper_bound": bounds.upper_bound,
            "realized_gap": bounds.sandwich_ratio,
            "paper_worst_case_gap": upper_bound_factor(2),
        }
    )
    assert bounds.omega_c <= bounds.omega_star + 1e-9
    assert bounds.omega_star <= bounds.constructive_capacity + 1e-9
    assert bounds.constructive_capacity <= bounds.upper_bound + 1e-9
    assert bounds.sandwich_ratio <= upper_bound_factor(2)
