"""E5 -- Theorem 1.4.1 / Corollaries 2.2.6-2.2.7: the W_off sandwich.

For every scenario of the paper suite, report the certified lower bound
``omega*``, the audited constructive capacity (an explicit feasible W), and
the worst-case upper bound ``(2*3^l + l) * omega*``; the shape claim is the
ordering and the fact that the realized gap stays far below the analytic
constant (20 in the plane).  Runs through the unified ``offline`` solver so
the benchmark measures exactly what ``repro.api`` users get.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine, RunConfig, ScenarioSpec
from repro.core.offline import upper_bound_factor
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {s.name: s for s in paper_scenarios(random_window=12, random_jobs=250)}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def bench_offline_sandwich(benchmark, name):
    spec = ScenarioSpec.from_demand(SCENARIOS[name].demand, name=name)
    config = RunConfig(solver="offline", scenario=spec)

    # A fresh engine per round: the cache would otherwise absorb the work.
    result = benchmark(lambda: ExperimentEngine().run(config))

    benchmark.extra_info.update(
        {
            "scenario": name,
            "omega_c": result.extra("omega_c"),
            "omega_star": result.omega_star,
            "constructive_capacity": result.max_vehicle_energy,
            "theory_upper_bound": result.extra("upper_bound"),
            "realized_gap": result.extra("sandwich_ratio"),
            "paper_worst_case_gap": upper_bound_factor(2),
        }
    )
    assert result.feasible
    assert result.extra("omega_c") <= result.omega_star + 1e-9
    assert result.omega_star <= result.max_vehicle_energy + 1e-9
    assert result.max_vehicle_energy <= result.extra("upper_bound") + 1e-9
    assert result.extra("sandwich_ratio") <= upper_bound_factor(2)
