"""E8 -- Theorem 1.4.2 / Figure 3.1 / Algorithm 2: online vs offline.

The decentralized online strategy must serve every job with per-vehicle
capacity ``(4 * 3^l + l) * omega_c`` and its measured per-vehicle energy
must stay within that constant of the offline lower bound.  The benchmark
runs the actual message-passing protocol (Phase I/II included) on the
paper scenarios and on a replacement-heavy burst, recording energies,
replacements and message counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.demand import JobSequence
from repro.core.offline import online_upper_bound_factor
from repro.core.online import run_online
from repro.workloads.arrivals import random_arrivals
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {
    s.name: s
    for s in paper_scenarios(
        square_side=5,
        square_per_point=6.0,
        line_length=12,
        line_per_point=5.0,
        point_total=60.0,
        random_window=8,
        random_jobs=80,
    )
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def bench_online_scenarios(benchmark, name):
    demand = SCENARIOS[name].demand
    jobs = random_arrivals(demand, np.random.default_rng(17))

    result = benchmark.pedantic(
        lambda: run_online(jobs), rounds=1, iterations=1, warmup_rounds=0
    )

    factor = online_upper_bound_factor(2)
    benchmark.extra_info.update(
        {
            "scenario": name,
            "jobs": result.jobs_total,
            "offline_lower_bound_omega_star": result.omega_star,
            "provisioned_capacity": result.capacity,
            "measured_max_vehicle_energy": result.max_vehicle_energy,
            "online_over_offline": result.online_to_offline_ratio,
            "paper_constant": factor,
            "replacements": result.replacements,
            "messages": result.messages,
        }
    )
    assert result.feasible
    assert result.max_vehicle_energy <= result.capacity + 1e-9
    assert result.max_vehicle_energy <= factor * max(result.omega, result.omega_star) + 1e-9


def bench_online_replacement_burst(benchmark):
    """A tight-capacity burst that forces many Phase I/II replacements."""
    jobs = JobSequence.from_positions([(0, 0)] * 40)

    result = benchmark.pedantic(
        lambda: run_online(jobs, omega=3.0, capacity=12.0),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    benchmark.extra_info.update(
        {
            "jobs": result.jobs_total,
            "capacity": result.capacity,
            "replacements": result.replacements,
            "searches": result.searches,
            "messages": result.messages,
            "max_vehicle_energy": result.max_vehicle_energy,
        }
    )
    assert result.feasible
    assert result.replacements >= 2
    assert result.messages > 0
