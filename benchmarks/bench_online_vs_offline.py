"""E8 -- Theorem 1.4.2 / Figure 3.1 / Algorithm 2: online vs offline.

The decentralized online strategy must serve every job with per-vehicle
capacity ``(4 * 3^l + l) * omega_c`` and its measured per-vehicle energy
must stay within that constant of the offline lower bound.  The benchmark
runs the actual message-passing protocol (Phase I/II included) through the
unified ``online`` solver on the paper scenarios and on a
replacement-heavy burst, recording energies, replacements and message
counts from the :class:`~repro.api.RunResult` record.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentEngine, RunConfig, ScenarioSpec
from repro.core.demand import DemandMap
from repro.core.offline import online_upper_bound_factor
from repro.workloads.scenarios import paper_scenarios

SCENARIOS = {
    s.name: s
    for s in paper_scenarios(
        square_side=5,
        square_per_point=6.0,
        line_length=12,
        line_per_point=5.0,
        point_total=60.0,
        random_window=8,
        random_jobs=80,
    )
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def bench_online_scenarios(benchmark, name):
    spec = ScenarioSpec.from_demand(SCENARIOS[name].demand, name=name, seed=17)
    config = RunConfig(solver="online", scenario=spec)

    result = benchmark.pedantic(
        lambda: ExperimentEngine().run(config), rounds=1, iterations=1, warmup_rounds=0
    )

    factor = online_upper_bound_factor(2)
    benchmark.extra_info.update(
        {
            "scenario": name,
            "jobs": result.jobs_total,
            "offline_lower_bound_omega_star": result.omega_star,
            "provisioned_capacity": result.capacity,
            "measured_max_vehicle_energy": result.max_vehicle_energy,
            "online_over_offline": result.capacity_ratio,
            "paper_constant": factor,
            "replacements": result.extra("replacements"),
            "messages": result.extra("messages"),
        }
    )
    assert result.feasible
    assert result.max_vehicle_energy <= result.capacity + 1e-9
    assert result.max_vehicle_energy <= factor * max(
        result.capacity / factor, result.omega_star
    ) + 1e-9


def bench_online_replacement_burst(benchmark):
    """A tight-capacity burst that forces many Phase I/II replacements."""
    demand = DemandMap({(0, 0): 40.0})
    spec = ScenarioSpec.from_demand(demand, name="burst", order="sequential")
    config = RunConfig(solver="online", scenario=spec, omega=3.0, capacity=12.0)

    result = benchmark.pedantic(
        lambda: ExperimentEngine().run(config), rounds=1, iterations=1, warmup_rounds=0
    )

    benchmark.extra_info.update(
        {
            "jobs": result.jobs_total,
            "capacity": result.capacity,
            "replacements": result.extra("replacements"),
            "searches": result.extra("searches"),
            "messages": result.extra("messages"),
            "max_vehicle_energy": result.max_vehicle_energy,
        }
    )
    assert result.feasible
    assert result.extra("replacements") >= 2
    assert result.extra("messages") > 0
