#!/usr/bin/env python
"""Fleet-scale benchmark: construction time and events/sec at 10^3/10^4.

The flat-array fleet core (vectorized construction, indexed registry,
batched dispatch) is aimed squarely at the ``10^4``-vehicle regime; this
benchmark is its regression gate.  For each scale it measures

* **construction**: wall-clock of ``Fleet(...)`` for a scale-up demand
  (the full pipeline -- window planning, cube discovery, templates,
  vehicle objects, registries), best of ``--repeat`` runs;
* **events/sec**: simulator-event throughput of a full ``run_online``
  events-engine run over a random arrival order of the same demand (the
  number the bench-smoke CI gate tracks on the quick preset).

Results go to ``BENCH_fleet_scale.json`` (uploaded as a CI artifact) and
are gated against the committed ``benchmarks/bench_baseline.json`` by
``check_events_per_sec.py --scale-report``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick] \
        [--out BENCH_fleet_scale.json] [--repeat N]

``--quick`` (the CI mode) runs one repetition fewer and skips the
``10^4``-vehicle *throughput* run (construction is still measured at both
scales -- it is the quantity this PR's acceptance criterion tracks).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.online import run_online
from repro.io.atomic import atomic_write_json
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.workloads.arrivals import random_arrivals
from repro.workloads.library import build_family_demand

#: side -> label: side 32 builds a ~10^3-vehicle fleet, side 100 ~10^4
#: (one vehicle per vertex of every 3-cube with demand, plus slack rows).
SCALES = {"1e3": 32, "1e4": 100}

#: The omega the scale-up family resolves to under default provisioning.
OMEGA = 3.0


def measure_construction(demand, repeat: int) -> dict:
    """Best-of-``repeat`` fleet construction time (seconds)."""
    times = []
    vehicles = 0
    for _ in range(repeat):
        start = time.perf_counter()
        fleet = Fleet(demand, omega=OMEGA, config=FleetConfig())
        times.append(time.perf_counter() - start)
        vehicles = len(fleet.vehicles)
    return {
        "vehicles": vehicles,
        "construction_seconds": min(times),
        "construction_seconds_all": [round(t, 6) for t in times],
    }


def measure_quiescent(demand, rounds: int = 50) -> dict:
    """Quiescent heartbeat rounds/sec on a failure-free fleet.

    ``omega=1.0`` partitions the window into singleton cubes, so every
    vehicle is active, peerless, and watchless -- a heartbeat round does
    no protocol work at all.  What this measures is therefore the pure
    idle-scan cost of the round loop: with the active-set registry path a
    quiescent round touches only the (empty) engaged set plus one
    vectorized sender read, so the figure tracks the O(active)-per-round
    claim directly.
    """
    fleet = Fleet(demand, omega=1.0, config=FleetConfig(monitoring=True))
    fleet.run_heartbeat_round()  # warm caches (index map, numpy views)
    start = time.perf_counter()
    for _ in range(rounds):
        fleet.run_heartbeat_round()
    elapsed = time.perf_counter() - start
    return {
        "quiescent_vehicles": len(fleet.vehicles),
        "quiescent_rounds": rounds,
        "quiescent_rounds_per_sec": rounds / elapsed if elapsed else 0.0,
    }


def measure_throughput(demand, seed: int = 0) -> dict:
    """Events/sec of one full events-engine online run."""
    jobs = random_arrivals(demand, np.random.default_rng(seed))
    start = time.perf_counter()
    result = run_online(jobs, capacity="theorem", config=FleetConfig(), engine="events")
    elapsed = time.perf_counter() - start
    if not result.feasible:
        raise SystemExit("scale benchmark run was infeasible; workload broken?")
    return {
        "jobs": result.jobs_total,
        "events_processed": result.events_processed,
        "events_per_sec": result.events_processed / elapsed if elapsed else 0.0,
        "run_seconds": elapsed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI mode: fewer reps")
    parser.add_argument(
        "--out", default="BENCH_fleet_scale.json", help="output artifact path"
    )
    parser.add_argument(
        "--repeat", type=int, default=None, help="construction repetitions (default 5, quick 3)"
    )
    args = parser.parse_args(argv)
    repeat = args.repeat if args.repeat is not None else (3 if args.quick else 5)

    report = {"quick": bool(args.quick), "scales": {}}
    for label, side in SCALES.items():
        demand = build_family_demand("scale-up", {"side": side, "per_point": 2.0})
        entry = measure_construction(demand, repeat)
        if label == "1e3" or not args.quick:
            entry.update(measure_throughput(demand))
        if label == "1e4":
            # Cheap even at 10^4 vehicles (that is the point), so it runs
            # in --quick too and the CI gate tracks it every build.
            entry.update(measure_quiescent(demand))
        report["scales"][label] = entry
        throughput = entry.get("events_per_sec")
        quiescent = entry.get("quiescent_rounds_per_sec")
        print(
            f"{label}: {entry['vehicles']} vehicles, "
            f"construction {entry['construction_seconds']:.4f}s"
            + (f", {throughput:,.0f} events/sec" if throughput else "")
            + (f", {quiescent:,.0f} quiescent rounds/sec" if quiescent else "")
        )

    atomic_write_json(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
