#!/usr/bin/env python
"""Fleet-scale benchmark: construction, events/sec, and sharded 10^5 runs.

The flat-array fleet core (vectorized construction, indexed registry,
batched dispatch) is aimed squarely at the ``10^4``-vehicle regime and the
cube-sharded runner (:mod:`repro.distsim.sharding`) at ``10^5``; this
benchmark is their regression gate.  For each scale it measures

* **construction**: wall-clock of ``Fleet(...)`` for a scale-up demand
  (the full pipeline -- window planning, cube discovery, templates,
  vehicle objects, registries), best of ``--repeat`` runs;
* **events/sec**: simulator-event throughput of a full ``run_online``
  events-engine run over a random arrival order of the same demand (the
  number the bench-smoke CI gate tracks on the quick preset);
* **sharded events/sec** (``10^5`` tier only): the same run fanned out
  over ``--shards`` worker processes via ``run_online(..., shards=N)``.
  The scale-up family is shard-safe (reliable transport, no failures), so
  the run takes the parallel isolated path: each worker owns a contiguous
  block of cubes and never builds the global fleet.  Per-shard wall-clock
  timings ride along, plus a *critical path* figure (coordinator time +
  slowest shard) -- what the wall becomes once the host has at least as
  many cores as shards; on fewer cores the pool serializes workers and
  the wall number hides the speedup.
* **lockstep events/sec** (``10^4`` tier, ``lockstep_events_per_sec``):
  a failure-mode run (crash sweep + partition + lossy transport) with
  escalation on, which disqualifies parallel sharding and exercises the
  windowed single-process lockstep fallback -- the committed
  ``lockstep_events_per_sec_1e4`` floor gates it every build.
* **parallel lockstep** (``10^5-failure`` tier): the same demand with a
  sparse crash sweep and an *edge-keyed* lossy transport, eligible for
  the multi-process parallel-lockstep engine (PR 9).  ``--quick`` runs
  the sharded side only; the full mode adds the single-process lockstep
  reference and the critical-path speedup (acceptance bar: >= 1.5x at
  8 shards).

Throughput runs skipped by ``--quick`` are recorded as ``null`` so report
consumers can tell "not measured" from "missing key".

Results go to ``BENCH_fleet_scale.json`` (uploaded as a CI artifact) and
are gated against the committed ``benchmarks/bench_baseline.json`` by
``check_events_per_sec.py --scale-report``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick] \
        [--out BENCH_fleet_scale.json] [--repeat N] [--shards N]

``--quick`` (the CI mode) runs one repetition fewer and skips the
``10^4``-vehicle *throughput* run and the ``10^5`` *single-process*
throughput run (the sharded ``10^5`` run still executes -- it is the
quantity this PR's acceptance criterion tracks; construction is still
measured at the ``10^3``/``10^4`` scales).
"""

from __future__ import annotations

import argparse
import sys
import time

from _common import bootstrap_src, emit_report

bootstrap_src()

import numpy as np

from repro.core.online import run_online
from repro.distsim.failures import FailurePlan, PartitionSpec
from repro.distsim.transport import TransportSpec
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.workloads.arrivals import random_arrivals
from repro.workloads.library import build_family_demand

#: side -> label: side 32 builds a ~10^3-vehicle fleet, side 100 ~10^4.
SCALES = {"1e3": 32, "1e4": 100}

#: The 10^5 tier: side 320 builds a ~10^5-vehicle scale-up fleet.  Listed
#: separately because it is only ever run through the sharded path plus
#: (outside --quick) one single-process reference run -- constructing the
#: global Fleet object at this scale is exactly what sharding avoids.
SHARDED_SCALE = ("1e5", 320)

#: The omega the scale-up family resolves to under default provisioning.
OMEGA = 3.0

#: Default worker-process count for the sharded tier.  Deliberately above
#: typical CI core counts: per-shard fleets shrink superlinearly in cost
#: (smaller event queues, registries, and caches), so modest oversharding
#: is cheap and keeps the critical path short on any host.
DEFAULT_SHARDS = 8


def measure_construction(demand, repeat: int) -> dict:
    """Best-of-``repeat`` fleet construction time (seconds)."""
    times = []
    vehicles = 0
    for _ in range(repeat):
        start = time.perf_counter()
        fleet = Fleet(demand, omega=OMEGA, config=FleetConfig())
        times.append(time.perf_counter() - start)
        vehicles = len(fleet.vehicles)
    return {
        "vehicles": vehicles,
        "construction_seconds": min(times),
        "construction_seconds_all": [round(t, 6) for t in times],
    }


def measure_quiescent(demand, rounds: int = 50) -> dict:
    """Quiescent heartbeat rounds/sec on a failure-free fleet.

    ``omega=1.0`` partitions the window into singleton cubes, so every
    vehicle is active, peerless, and watchless -- a heartbeat round does
    no protocol work at all.  What this measures is therefore the pure
    idle-scan cost of the round loop: with the active-set registry path a
    quiescent round touches only the (empty) engaged set plus one
    vectorized sender read, so the figure tracks the O(active)-per-round
    claim directly.
    """
    fleet = Fleet(demand, omega=1.0, config=FleetConfig(monitoring=True))
    fleet.run_heartbeat_round()  # warm caches (index map, numpy views)
    start = time.perf_counter()
    for _ in range(rounds):
        fleet.run_heartbeat_round()
    elapsed = time.perf_counter() - start
    return {
        "quiescent_vehicles": len(fleet.vehicles),
        "quiescent_rounds": rounds,
        "quiescent_rounds_per_sec": rounds / elapsed if elapsed else 0.0,
    }


def measure_throughput(demand, seed: int = 0, shards: int = 1) -> dict:
    """Events/sec of one full events-engine online run (optionally sharded)."""
    jobs = random_arrivals(demand, np.random.default_rng(seed))
    start = time.perf_counter()
    result = run_online(
        jobs, capacity="theorem", config=FleetConfig(), engine="events", shards=shards
    )
    elapsed = time.perf_counter() - start
    if not result.feasible:
        raise SystemExit("scale benchmark run was infeasible; workload broken?")
    entry = {
        "jobs": result.jobs_total,
        "events_processed": result.events_processed,
        "events_per_sec": result.events_processed / elapsed if elapsed else 0.0,
        "run_seconds": elapsed,
    }
    if shards > 1:
        entry["shards"] = shards
        timings = dict(result.shard_timings)
        entry["shard_seconds"] = {
            str(shard): round(seconds, 4) for shard, seconds in sorted(timings.items())
        }
        # Wall-clock with the worker serialization removed: coordinator
        # time plus the slowest shard.  On a machine with >= shards cores
        # the measured wall approaches this; on fewer cores the pool runs
        # workers back to back and the wall number hides the speedup.
        worker_total = sum(timings.values())
        critical = max(elapsed - worker_total + max(timings.values()), 0.0)
        entry["critical_path_seconds"] = critical
        entry["critical_path_events_per_sec"] = (
            result.events_processed / critical if critical else 0.0
        )
    return entry


def _crash_plan(demand, every: int = 997) -> FailurePlan:
    """A deterministic sparse crash sweep over the demand support."""
    plan = FailurePlan()
    for vertex in sorted(demand.support())[::every]:
        plan.crash(tuple(int(c) for c in vertex))
    return plan


def measure_lockstep_throughput(demand, seed: int = 0, shards: int = 4) -> dict:
    """Events/sec of the single-process *lockstep* engine on a failure config.

    Escalation plus a global-stream lossy transport disqualify the run
    from every multi-process path, so ``shards=4`` is forced through the
    windowed lockstep fallback -- the engine whose per-window barrier and
    adaptive-horizon overhead this figure gates (the transport's 0.02
    delay makes nearly every event its own conservative window, the worst
    case).  The mode and first disqualifying reason are recorded so the
    number can never silently become a parallel-path measurement.
    """
    jobs = random_arrivals(demand, np.random.default_rng(seed))
    plan = _crash_plan(demand)
    plan.add_partition(
        PartitionSpec(
            start=len(jobs) * 0.25, end=len(jobs) * 0.5, axis=0, boundary=50
        )
    )
    transport = TransportSpec(
        kind="lossy", params={"loss": 0.05, "delay": 0.02, "seed": 3}
    )
    start = time.perf_counter()
    result = run_online(
        jobs,
        omega=OMEGA,
        config=FleetConfig(escalation=True),
        failure_plan=plan,
        transport=transport,
        shards=shards,
    )
    elapsed = time.perf_counter() - start
    if result.shard_mode != "lockstep":
        raise SystemExit(
            f"lockstep benchmark ran in mode {result.shard_mode!r}; the "
            "failure+lossy+escalation config should force the fallback"
        )
    return {
        "lockstep_events_per_sec": (
            result.events_processed / elapsed if elapsed else 0.0
        ),
        "lockstep_run_seconds": elapsed,
        "lockstep_events_processed": result.events_processed,
        "lockstep_window_barriers": result.window_barriers,
        "lockstep_mode": result.shard_mode,
        "lockstep_mode_reason": result.shard_mode_reason,
    }


def measure_failure_throughput(demand, seed: int = 0, shards: int = 1) -> dict:
    """Events/sec of a failure+lossy run through the parallel lockstep engine.

    The config (sparse crash sweep, edge-keyed lossy transport, no
    escalation) is exactly the class PR 9 parallelizes: every shard's
    protocol traffic is cube-local, so ``shards=N`` takes the
    ``parallel-lockstep`` multi-process path while ``shards=1`` runs the
    reference single-process lockstep it must beat.
    """
    jobs = random_arrivals(demand, np.random.default_rng(seed))
    transport = TransportSpec(
        kind="lossy",
        params={"loss": 0.05, "delay": 0.02, "seed": 3, "stream": "edge"},
    )
    start = time.perf_counter()
    result = run_online(
        jobs,
        omega=OMEGA,
        config=FleetConfig(),
        failure_plan=_crash_plan(demand),
        transport=transport,
        shards=shards,
    )
    elapsed = time.perf_counter() - start
    entry = {
        "jobs": result.jobs_total,
        "events_processed": result.events_processed,
        "events_per_sec": result.events_processed / elapsed if elapsed else 0.0,
        "run_seconds": elapsed,
        "mode": result.shard_mode,
        "window_barriers": result.window_barriers,
    }
    if shards > 1:
        if result.shard_mode != "parallel-lockstep":
            raise SystemExit(
                f"failure benchmark ran in mode {result.shard_mode!r} "
                f"({result.shard_mode_reason}); expected parallel-lockstep"
            )
        timings = dict(result.shard_timings)
        entry["shards"] = shards
        entry["shard_seconds"] = {
            str(shard): round(seconds, 4) for shard, seconds in sorted(timings.items())
        }
        worker_total = sum(timings.values())
        critical = max(elapsed - worker_total + max(timings.values()), 0.0)
        entry["critical_path_seconds"] = critical
        entry["critical_path_events_per_sec"] = (
            result.events_processed / critical if critical else 0.0
        )
    return entry


SKIPPED_THROUGHPUT = {
    "jobs": None,
    "events_processed": None,
    "events_per_sec": None,
    "run_seconds": None,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI mode: fewer reps")
    parser.add_argument(
        "--out", default="BENCH_fleet_scale.json", help="output artifact path"
    )
    parser.add_argument(
        "--repeat", type=int, default=None, help="construction repetitions (default 5, quick 3)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=DEFAULT_SHARDS,
        help=f"worker processes for the 1e5 tier (default {DEFAULT_SHARDS})",
    )
    parser.add_argument(
        "--shard-timings-out",
        default=None,
        help="also write the 1e5 tier's per-shard timing breakdown here",
    )
    parser.add_argument(
        "--lockstep-windows-out",
        default=None,
        help="also write per-window barrier counts for the lockstep tiers here",
    )
    args = parser.parse_args(argv)
    repeat = args.repeat if args.repeat is not None else (3 if args.quick else 5)

    report = {"quick": bool(args.quick), "scales": {}}
    for label, side in SCALES.items():
        demand = build_family_demand("scale-up", {"side": side, "per_point": 2.0})
        entry = measure_construction(demand, repeat)
        if label == "1e3" or not args.quick:
            entry.update(measure_throughput(demand))
        else:
            # Skipped, not unmeasured-by-accident: consumers see null.
            entry.update(SKIPPED_THROUGHPUT)
        if label == "1e4":
            # Cheap even at 10^4 vehicles (that is the point), so it runs
            # in --quick too and the CI gate tracks it every build.
            entry.update(measure_quiescent(demand))
            # The windowed lockstep fallback engine, gated every build via
            # the committed lockstep_events_per_sec_1e4 floor.
            entry.update(measure_lockstep_throughput(demand))
        report["scales"][label] = entry
        throughput = entry.get("events_per_sec")
        quiescent = entry.get("quiescent_rounds_per_sec")
        print(
            f"{label}: {entry['vehicles']} vehicles, "
            f"construction {entry['construction_seconds']:.4f}s"
            + (f", {throughput:,.0f} events/sec" if throughput else "")
            + (f", {quiescent:,.0f} quiescent rounds/sec" if quiescent else "")
        )

    label, side = SHARDED_SCALE
    demand = build_family_demand("scale-up", {"side": side, "per_point": 2.0})
    sharded = measure_throughput(demand, shards=args.shards)
    entry = {
        "vehicles": None,  # the sharded path never builds the global fleet
        "construction_seconds": None,
        "sharded_events_per_sec": sharded["events_per_sec"],
        "sharded_run_seconds": sharded["run_seconds"],
        "shards": sharded["shards"],
        "shard_seconds": sharded["shard_seconds"],
        "critical_path_seconds": sharded["critical_path_seconds"],
        "critical_path_events_per_sec": sharded["critical_path_events_per_sec"],
        "jobs": sharded["jobs"],
        "events_processed": sharded["events_processed"],
    }
    if args.quick:
        entry.update(
            {
                "events_per_sec": None,
                "run_seconds": None,
                "speedup": None,
                "critical_path_speedup": None,
            }
        )
    else:
        single = measure_throughput(demand)
        entry["events_per_sec"] = single["events_per_sec"]
        entry["run_seconds"] = single["run_seconds"]
        entry["speedup"] = (
            sharded["events_per_sec"] / single["events_per_sec"]
            if single["events_per_sec"]
            else None
        )
        entry["critical_path_speedup"] = (
            sharded["critical_path_events_per_sec"] / single["events_per_sec"]
            if single["events_per_sec"]
            else None
        )
    report["scales"][label] = entry
    print(
        f"{label}: {entry['jobs']} jobs over {entry['shards']} shards, "
        f"{entry['sharded_events_per_sec']:,.0f} sharded events/sec "
        f"({entry['critical_path_events_per_sec']:,.0f} on the critical path)"
        + (
            f", {entry['events_per_sec']:,.0f} single-process "
            f"(speedup {entry['speedup']:.2f}x wall, "
            f"{entry['critical_path_speedup']:.2f}x critical path)"
            if entry["events_per_sec"]
            else ""
        )
    )

    # The parallel-lockstep tier: the same 10^5 demand with a sparse crash
    # sweep and an edge-keyed lossy transport -- the failure class PR 9
    # parallelizes.  --quick runs the sharded side only; the full mode adds
    # the single-process lockstep reference and the critical-path speedup
    # the acceptance criterion tracks (>= 1.5x at 8 shards).
    failure_label = f"{label}-failure"
    failure_sharded = measure_failure_throughput(demand, shards=args.shards)
    failure_entry = dict(failure_sharded)
    if args.quick:
        failure_entry.update(
            {
                "single_events_per_sec": None,
                "single_run_seconds": None,
                "speedup": None,
                "critical_path_speedup": None,
            }
        )
    else:
        single = measure_failure_throughput(demand, shards=1)
        failure_entry["single_events_per_sec"] = single["events_per_sec"]
        failure_entry["single_run_seconds"] = single["run_seconds"]
        failure_entry["speedup"] = (
            failure_sharded["events_per_sec"] / single["events_per_sec"]
            if single["events_per_sec"]
            else None
        )
        failure_entry["critical_path_speedup"] = (
            failure_sharded["critical_path_events_per_sec"]
            / single["events_per_sec"]
            if single["events_per_sec"]
            else None
        )
    report["scales"][failure_label] = failure_entry
    print(
        f"{failure_label}: {failure_entry['jobs']} jobs over "
        f"{failure_entry['shards']} shards (parallel lockstep), "
        f"{failure_entry['events_per_sec']:,.0f} events/sec "
        f"({failure_entry['critical_path_events_per_sec']:,.0f} on the "
        "critical path)"
        + (
            f", {failure_entry['single_events_per_sec']:,.0f} single-process "
            f"(critical-path speedup {failure_entry['critical_path_speedup']:.2f}x)"
            if failure_entry["single_events_per_sec"]
            else ""
        )
    )

    emit_report(report, args.out)
    if args.shard_timings_out:
        emit_report(
            {
                "scale": label,
                "shards": entry["shards"],
                "shard_seconds": entry["shard_seconds"],
                "critical_path_seconds": entry["critical_path_seconds"],
                "sharded_run_seconds": entry["sharded_run_seconds"],
            },
            args.shard_timings_out,
        )
    if args.lockstep_windows_out:
        # Per-window barrier counts for the conservative engines: how many
        # synchronization points each mode actually crossed this run --
        # the observable the adaptive (Chandy-Misra horizon) windows are
        # meant to shrink.
        lockstep_1e4 = report["scales"]["1e4"]
        emit_report(
            {
                "lockstep_1e4": {
                    "window_barriers": lockstep_1e4["lockstep_window_barriers"],
                    "events_processed": lockstep_1e4["lockstep_events_processed"],
                    "mode": lockstep_1e4["lockstep_mode"],
                    "mode_reason": lockstep_1e4["lockstep_mode_reason"],
                },
                f"parallel_lockstep_{failure_label}": {
                    "window_barriers": failure_entry["window_barriers"],
                    "shards": failure_entry["shards"],
                    "events_processed": failure_entry["events_processed"],
                    "mode": failure_entry["mode"],
                },
            },
            args.lockstep_windows_out,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
