"""E15 -- the scenario family library on the event-driven engine.

Two throughput questions the ROADMAP's "as fast as the hardware allows"
goal keeps asking:

* how many simulator events per second does the event-driven online driver
  sustain on a large fleet (the distsim hot path), and
* how long does each scenario family take to solve end-to-end through the
  experiment engine (the sweep hot path)?

Every benchmark records events/sec (where meaningful) and the workload
shape via ``benchmark.extra_info``, and asserts the load-bearing semantic
claims: the event driver serves exactly what the round driver serves on
failure-free runs, and every family solves to a valid result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentEngine
from repro.core.online import run_online
from repro.vehicles.fleet import FleetConfig
from repro.workloads.library import available_families, build_family_demand, family_config
from repro.workloads.arrivals import random_arrivals

#: CI-scale preset keeps each family's solve in fractions of a second; drop
#: ``preset`` to benchmark the laptop-scale defaults.
_PRESET = "small"
_SOLVERS = ("offline", "greedy", "online")


def _scale_up_jobs(side: int = 10):
    demand = build_family_demand("scale-up", {"side": side, "per_point": 2.0})
    return random_arrivals(demand, np.random.default_rng(0))


@pytest.mark.parametrize("engine", ["rounds", "events"])
def bench_online_driver_events_per_sec(benchmark, engine):
    """Events/sec of the online harness on a scale-up fleet, per driver."""
    jobs = _scale_up_jobs()

    result = benchmark(
        lambda: run_online(jobs, capacity="theorem", config=FleetConfig(), engine=engine)
    )

    events_per_sec = (
        result.events_processed / benchmark.stats.stats.mean
        if benchmark.stats.stats.mean
        else 0.0
    )
    benchmark.extra_info.update(
        {
            "engine": engine,
            "jobs": result.jobs_total,
            "events_processed": result.events_processed,
            "sim_time": result.sim_time,
            "events_per_sec": events_per_sec,
        }
    )
    assert result.feasible
    # The two drivers must agree on failure-free runs.
    other = run_online(
        jobs,
        capacity="theorem",
        config=FleetConfig(),
        engine="events" if engine == "rounds" else "rounds",
    )
    assert result.jobs_served == other.jobs_served
    assert result.max_vehicle_energy == other.max_vehicle_energy


@pytest.mark.parametrize("family", sorted(available_families()))
def bench_family_solve_time(benchmark, family):
    """End-to-end solve time per scenario family across the core solvers."""
    configs = [
        family_config(family, solver, preset=_PRESET, params={"engine": "events"})
        if solver.startswith("online")
        else family_config(family, solver, preset=_PRESET)
        for solver in _SOLVERS
    ]

    results = benchmark(lambda: ExperimentEngine().run_many(configs))

    events = sum(int(r.extra("events_processed", 0)) for r in results)
    benchmark.extra_info.update(
        {
            "family": family,
            "solvers": len(_SOLVERS),
            "jobs_total": results[0].jobs_total,
            "events_processed": events,
            "events_per_sec": (
                events / benchmark.stats.stats.mean if benchmark.stats.stats.mean else 0.0
            ),
        }
    )
    # Every family must produce valid, omega*-consistent results.
    omega_stars = {round(r.omega_star, 9) for r in results}
    assert len(omega_stars) == 1
    for result in results:
        assert result.jobs_served <= result.jobs_total


def bench_family_registry_resolution(benchmark):
    """Spec -> demand resolution for the whole registry (the cached lookup path)."""

    def resolve_all():
        return [
            build_family_demand(name, seed=seed)
            for name in available_families()
            for seed in (0, 1)
        ]

    demands = benchmark(resolve_all)
    benchmark.extra_info.update({"families": len(available_families())})
    assert all(not demand.is_empty() for demand in demands)
