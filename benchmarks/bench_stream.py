#!/usr/bin/env python
"""Streaming-service benchmark: throughput and constant-memory at 10^5 jobs.

The service harness (:mod:`repro.service`) claims memory *independent of
stream length*: a bounded look-ahead window, per-window metrics of fixed
size, and no per-job bookkeeping.  This benchmark is that claim's
regression gate.  It measures

* **throughput**: events/sec and jobs/sec of a full ``run_service`` over a
  ``10^5``-job cycling stream at the ``10^3``-vehicle scale (and, outside
  ``--quick``, at ``10^4`` vehicles);
* **memory flatness**: tracemalloc peak of a ``10^4``-job vs a
  ``10^5``-job run at ``10^3`` vehicles.  With constant-memory streaming
  the two peaks are equal up to noise (the fleet arrays dominate); a peak
  that grows with the job count fails the report's ``flat`` flag.
  Process-level ``ru_maxrss`` is recorded alongside for context.

Results go to ``BENCH_stream.json`` (uploaded as a CI artifact) and are
gated against the committed ``benchmarks/bench_baseline.json`` by
``check_events_per_sec.py --stream-report`` -- same 20% tolerance as the
batch events/sec gate, plus a hard failure when ``flat`` is false.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py [--quick] \
        [--out BENCH_stream.json] [--jobs N]

``--quick`` (the CI mode) skips the ``10^4``-vehicle throughput run; the
memory-flatness pair at ``10^3`` vehicles always runs in full -- it is the
acceptance criterion this benchmark exists to check.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
import tracemalloc

from _common import bootstrap_src, emit_report

bootstrap_src()

from repro.api.service import ServiceConfig
from repro.service import run_service
from repro.workloads.arrivals import streaming_arrivals
from repro.workloads.library import build_family_demand

#: side -> label: side 32 builds a ~10^3-vehicle fleet, side 100 ~10^4.
SCALES = {"1e3": 32, "1e4": 100}

#: The omega the scale-up family resolves to under default provisioning.
OMEGA = 3.0

#: Jobs per metrics window (large enough that metrics cost is negligible).
WINDOW_JOBS = 5000

#: Peaks within 25% of each other count as flat: the fleet arrays dominate
#: both runs, so a look-ahead leak or per-job accumulation shows up as a
#: multiple, not a few percent.
FLAT_RATIO = 1.25


def _service_config(demand) -> ServiceConfig:
    # Unbounded batteries: the benchmark measures harness throughput, not
    # replacement churn, and a 10^5-job stream would exhaust any fixed
    # provisioning many times over.
    return ServiceConfig.from_demand(
        demand, capacity=None, omega=OMEGA, window_jobs=WINDOW_JOBS
    )


def measure_stream(demand, jobs: int) -> dict:
    """Throughput of one full service run over a ``jobs``-long stream."""
    config = _service_config(demand)
    start = time.perf_counter()
    result = run_service(config, streaming_arrivals(demand, jobs=jobs))
    elapsed = time.perf_counter() - start
    if not result.feasible:
        raise SystemExit("stream benchmark run was infeasible; workload broken?")
    return {
        "jobs": result.jobs_total,
        "events_processed": result.events_processed,
        "events_per_sec": result.events_processed / elapsed if elapsed else 0.0,
        "jobs_per_sec": result.jobs_total / elapsed if elapsed else 0.0,
        "run_seconds": elapsed,
        "windows": result.windows,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def measure_memory_flatness(demand, jobs_small: int, jobs_large: int) -> dict:
    """Tracemalloc peaks of a short vs a long run at the same fleet scale."""
    config = _service_config(demand)
    peaks = {}
    for jobs in (jobs_small, jobs_large):
        tracemalloc.start()
        run_service(config, streaming_arrivals(demand, jobs=jobs))
        _, peaks[jobs] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    ratio = peaks[jobs_large] / peaks[jobs_small] if peaks[jobs_small] else 0.0
    return {
        "jobs_small": jobs_small,
        "jobs_large": jobs_large,
        "peak_small_bytes": peaks[jobs_small],
        "peak_large_bytes": peaks[jobs_large],
        "ratio": ratio,
        "flat": ratio <= FLAT_RATIO,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI mode: skip 1e4 throughput")
    parser.add_argument("--out", default="BENCH_stream.json", help="output artifact path")
    parser.add_argument(
        "--jobs", type=int, default=100_000, help="stream length (default 10^5)"
    )
    args = parser.parse_args(argv)

    report = {"quick": bool(args.quick), "jobs": args.jobs, "scales": {}}
    for label, side in SCALES.items():
        if label != "1e3" and args.quick:
            continue
        demand = build_family_demand("scale-up", {"side": side, "per_point": 2.0})
        entry = measure_stream(demand, args.jobs)
        report["scales"][label] = entry
        print(
            f"{label}: {entry['jobs']} jobs in {entry['run_seconds']:.2f}s, "
            f"{entry['events_per_sec']:,.0f} events/sec, "
            f"{entry['jobs_per_sec']:,.0f} jobs/sec"
        )

    demand = build_family_demand("scale-up", {"side": SCALES['1e3'], "per_point": 2.0})
    memory = measure_memory_flatness(demand, max(args.jobs // 10, 1), args.jobs)
    report["memory"] = memory
    print(
        f"memory: peak {memory['peak_small_bytes'] / 1e6:.2f}MB at "
        f"{memory['jobs_small']} jobs vs {memory['peak_large_bytes'] / 1e6:.2f}MB "
        f"at {memory['jobs_large']} (ratio {memory['ratio']:.3f}) -> "
        f"{'flat' if memory['flat'] else 'GROWING'}"
    )

    emit_report(report, args.out)
    return 0 if memory["flat"] else 1


if __name__ == "__main__":
    sys.exit(main())
