"""E11 -- Theorem 5.1.1: W_trans-off = Theta(W_off).

Allowing inter-vehicle energy transfers never changes the *order* of the
required capacity: the transfer-aware lower bound (derived from the
geometric attrition series over squares) and the no-transfer
characterization ``omega*`` stay within a constant factor across demand
scales.  The benchmark sweeps the scale and records both quantities.
"""

from __future__ import annotations

import pytest

from repro.core.omega import omega_star_cubes
from repro.core.transfer import transfer_lower_bound
from repro.workloads.generators import square_demand


@pytest.mark.parametrize("scale", [1.0, 8.0, 64.0])
def bench_transfer_vs_offline(benchmark, scale):
    demand = square_demand(6, 15.0 * scale)

    with_transfer = benchmark(lambda: transfer_lower_bound(demand))

    no_transfer = omega_star_cubes(demand).omega
    benchmark.extra_info.update(
        {
            "demand_scale": scale,
            "W_off_lower_bound_omega_star": no_transfer,
            "W_trans_off_lower_bound": with_transfer,
            "ratio_offline_over_transfer": no_transfer / with_transfer,
        }
    )
    # Transfers never hurt, and help by at most a constant factor.
    assert with_transfer <= no_transfer + 1e-9
    assert no_transfer <= 10 * with_transfer


def bench_transfer_ratio_stability(benchmark):
    """The offline/transfer ratio stays flat as the demand grows 81x."""

    def sweep():
        ratios = []
        for scale in (1.0, 9.0, 81.0):
            demand = square_demand(6, 15.0 * scale)
            ratios.append(omega_star_cubes(demand).omega / transfer_lower_bound(demand))
        return ratios

    ratios = benchmark(sweep)
    benchmark.extra_info.update({"ratios_across_scales": ratios})
    assert max(ratios) / min(ratios) <= 3.0
