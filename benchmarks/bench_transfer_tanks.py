"""E12 -- Section 5.2.1: high-capacity tanks on a line.

With unbounded tanks a single collector sweeps the line, so
``W_trans-off = Theta(avg_x d(x))`` under both accounting methods; the
thesis gives exact closed forms.  The benchmark executes the schedule,
bisects for the minimal feasible initial charge, and compares it with the
closed forms and with the average demand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.transfer import (
    TransferAccounting,
    line_tank_requirement,
    simulate_line_collection,
)


def _minimal_charge(demands, accounting, a1=0.0, a2=0.0) -> float:
    lo, hi = 0.0, max(1.0, max(demands))
    while not simulate_line_collection(demands, hi, accounting=accounting, a1=a1, a2=a2).feasible:
        hi *= 2.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if simulate_line_collection(demands, mid, accounting=accounting, a1=a1, a2=a2).feasible:
            hi = mid
        else:
            lo = mid
    return hi


@pytest.mark.parametrize(
    "accounting,a1,a2",
    [(TransferAccounting.FIXED, 0.5, 0.0), (TransferAccounting.VARIABLE, 0.0, 0.05)],
    ids=["fixed", "variable"],
)
def bench_line_tank_requirement(benchmark, accounting, a1, a2):
    rng = np.random.default_rng(5)
    demands = list(rng.uniform(0.0, 25.0, size=20))
    average = sum(demands) / len(demands)

    simulated = benchmark(lambda: _minimal_charge(demands, accounting, a1=a1, a2=a2))

    predicted = line_tank_requirement(demands, accounting=accounting, a1=a1, a2=a2)
    benchmark.extra_info.update(
        {
            "accounting": accounting.value,
            "line_length": len(demands),
            "average_demand": average,
            "paper_closed_form": predicted,
            "simulated_minimal_charge": simulated,
        }
    )
    tolerance = 0.05 if accounting == TransferAccounting.FIXED else 0.25
    assert simulated == pytest.approx(predicted, rel=tolerance)
    # Theta(avg d): the requirement tracks the average, not the maximum.
    assert simulated <= 3 * average + 5


def bench_tank_requirement_scales_with_average(benchmark):
    """Doubling every demand doubles the requirement (once demands dominate)."""

    def sweep():
        base = [30.0] * 24
        doubled = [60.0] * 24
        low = _minimal_charge(base, TransferAccounting.FIXED, a1=0.3)
        high = _minimal_charge(doubled, TransferAccounting.FIXED, a1=0.3)
        return low, high

    low, high = benchmark(sweep)
    benchmark.extra_info.update(
        {"requirement_avg_30": low, "requirement_avg_60": high, "ratio": high / low}
    )
    assert high / low == pytest.approx(2.0, rel=0.15)
