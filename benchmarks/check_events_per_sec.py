#!/usr/bin/env python
"""Events/sec regression gate for the bench-smoke CI job.

Reads a ``pytest-benchmark`` JSON report (``--benchmark-json`` output of
``bench_scenarios.py --quick``), extracts the event-driver throughput
number (``bench_online_driver_events_per_sec[events]`` -- the scale-up
distsim hot path), writes it to ``BENCH_events_per_sec.json`` next to the
committed baseline, and fails when throughput regressed more than the
allowed fraction (default 20%) below the baseline.

The committed baseline (``benchmarks/bench_baseline.json``) is calibrated
conservatively for shared CI runners, which are typically 2-3x slower than
a development machine; the gate therefore catches order-of-magnitude event
core regressions (an accidental O(n) queue scan, a per-event allocation
storm), not single-digit noise.  After a deliberate performance change,
refresh it with::

    python benchmarks/check_events_per_sec.py bench-smoke.json --update

Usage::

    python benchmarks/check_events_per_sec.py REPORT.json \
        [--baseline benchmarks/bench_baseline.json] \
        [--out BENCH_events_per_sec.json] \
        [--tolerance 0.2] [--update]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The benchmark whose throughput the gate tracks.
GATED_BENCHMARK = "bench_online_driver_events_per_sec[events]"


def extract_events_per_sec(report: dict) -> float:
    """The gated benchmark's events/sec from a pytest-benchmark report."""
    for bench in report.get("benchmarks", []):
        if bench.get("name") == GATED_BENCHMARK:
            value = bench.get("extra_info", {}).get("events_per_sec")
            if value is None:
                raise SystemExit(
                    f"benchmark {GATED_BENCHMARK!r} carries no events_per_sec "
                    "extra_info; did bench_scenarios.py change?"
                )
            return float(value)
    raise SystemExit(
        f"benchmark {GATED_BENCHMARK!r} not found in the report; "
        "run: pytest benchmarks/bench_scenarios.py -o python_functions='bench_*' "
        "--quick --benchmark-json=REPORT.json"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="pytest-benchmark JSON report path")
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "bench_baseline.json"),
        help="committed baseline JSON (default: benchmarks/bench_baseline.json)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_events_per_sec.json",
        help="where to write the measured-number artifact",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression below the baseline (default 0.2)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline with the measured number instead of gating",
    )
    args = parser.parse_args(argv)

    report = json.loads(Path(args.report).read_text())
    measured = extract_events_per_sec(report)

    baseline_path = Path(args.baseline)
    if args.update:
        refreshed = {"benchmark": GATED_BENCHMARK, "events_per_sec": measured}
        if baseline_path.exists():
            # Preserve calibration notes and any other extra keys.
            previous = json.loads(baseline_path.read_text())
            refreshed = {**previous, **refreshed}
        baseline_path.write_text(json.dumps(refreshed, indent=2) + "\n")
        print(f"baseline updated: {measured:.0f} events/sec -> {baseline_path}")
        return 0

    baseline = json.loads(baseline_path.read_text())["events_per_sec"]
    floor = baseline * (1.0 - args.tolerance)
    passed = measured >= floor

    artifact = {
        "benchmark": GATED_BENCHMARK,
        "events_per_sec": measured,
        "baseline_events_per_sec": baseline,
        "floor_events_per_sec": floor,
        "tolerance": args.tolerance,
        "ratio_vs_baseline": measured / baseline if baseline else None,
        "pass": passed,
    }
    Path(args.out).write_text(json.dumps(artifact, indent=2) + "\n")

    status = "ok" if passed else "REGRESSION"
    print(
        f"{GATED_BENCHMARK}: {measured:.0f} events/sec "
        f"(baseline {baseline:.0f}, floor {floor:.0f}) -> {status}"
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
