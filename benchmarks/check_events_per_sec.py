#!/usr/bin/env python
"""Events/sec + construction-time regression gate for the bench-smoke CI job.

Reads a ``pytest-benchmark`` JSON report (``--benchmark-json`` output of
``bench_scenarios.py --quick``), extracts the event-driver throughput
number (``bench_online_driver_events_per_sec[events]`` -- the scale-up
distsim hot path), writes it to ``BENCH_events_per_sec.json`` next to the
committed baseline, and fails when throughput regressed more than the
allowed fraction (default 20%) below the baseline.

With ``--scale-report`` it additionally gates the ``10^4``-vehicle fleet
*construction time* measured by ``bench_scale.py`` (the
``BENCH_fleet_scale.json`` artifact) against the committed
``construction_seconds_1e4`` ceiling -- same tolerance, inverted sense
(construction regresses by getting *slower*) -- and the failure-free
*quiescent heartbeat round* rate at the same scale against the committed
``quiescent_rounds_per_sec_1e4`` floor (the idle-scan cost the active-set
registry path is responsible for keeping O(active)).

With ``--stream-report`` it gates the streaming-service throughput at the
``10^3``-vehicle scale measured by ``bench_stream.py`` (the
``BENCH_stream.json`` artifact) against the committed
``stream_events_per_sec_1e3`` floor -- same tolerance -- and fails hard
when the report's memory-flatness check (``memory.flat``) is false.

With ``--gossip-report`` it gates the gossip failure detector measured by
``bench_gossip.py`` (the ``BENCH_gossip.json`` artifact): the p99
detection latency in heartbeat rounds at the ``10^3``-vehicle scale under
10% loss must stay below the committed ``gossip_detection_rounds_1e3``
ceiling (same tolerance, inverted sense -- detection regresses by getting
*slower*), and the report's own ``within_bound`` flag (p99 against the
``2 * log2(n) * miss`` epidemic-spread bound) must be true.

``--scale-report`` also gates the cube-sharded ``10^5``-vehicle tier: the
report's ``sharded_events_per_sec`` (wall-clock events/sec of the
``run_online(..., shards=N)`` multi-process run) must clear the committed
``sharded_events_per_sec_1e5`` floor.  It likewise gates the windowed
*lockstep fallback* engine at the ``10^4`` scale: the report's
``lockstep_events_per_sec`` (a failure + lossy + escalation config, which
disqualifies parallel sharding and forces single-process lockstep) must
clear the committed ``lockstep_events_per_sec_1e4`` floor -- this is the
cheap every-build proxy for the parallel-lockstep critical path measured
at ``10^5`` in the full (non-quick) bench mode.

The committed baseline (``benchmarks/bench_baseline.json``) is calibrated
conservatively for shared CI runners, which are typically 2-3x slower than
a development machine; the gate therefore catches order-of-magnitude event
core regressions (an accidental O(n) queue scan, a per-event allocation
storm, a de-vectorized construction loop), not single-digit noise.  After
a deliberate performance change, refresh both numbers with::

    python benchmarks/check_events_per_sec.py bench-smoke.json \
        --scale-report BENCH_fleet_scale.json \
        --stream-report BENCH_stream.json --update

Usage::

    python benchmarks/check_events_per_sec.py REPORT.json \
        [--scale-report BENCH_fleet_scale.json] \
        [--stream-report BENCH_stream.json] \
        [--gossip-report BENCH_gossip.json] \
        [--baseline benchmarks/bench_baseline.json] \
        [--out BENCH_events_per_sec.json] \
        [--tolerance 0.2] [--update]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from _common import write_summary

#: The benchmark whose throughput the gate tracks.
GATED_BENCHMARK = "bench_online_driver_events_per_sec[events]"

#: The bench_scale.py scale whose construction time the gate tracks.
GATED_SCALE = "1e4"


def extract_events_per_sec(report: dict) -> float:
    """The gated benchmark's events/sec from a pytest-benchmark report."""
    for bench in report.get("benchmarks", []):
        if bench.get("name") == GATED_BENCHMARK:
            value = bench.get("extra_info", {}).get("events_per_sec")
            if value is None:
                raise SystemExit(
                    f"benchmark {GATED_BENCHMARK!r} carries no events_per_sec "
                    "extra_info; did bench_scenarios.py change?"
                )
            return float(value)
    raise SystemExit(
        f"benchmark {GATED_BENCHMARK!r} not found in the report; "
        "run: pytest benchmarks/bench_scenarios.py -o python_functions='bench_*' "
        "--quick --benchmark-json=REPORT.json"
    )


def extract_construction_seconds(scale_report: dict) -> float:
    """The gated scale's construction time from a bench_scale.py report."""
    entry = scale_report.get("scales", {}).get(GATED_SCALE)
    if entry is None or "construction_seconds" not in entry:
        raise SystemExit(
            f"scale report carries no construction_seconds for scale {GATED_SCALE!r}; "
            "run: python benchmarks/bench_scale.py --quick --out BENCH_fleet_scale.json"
        )
    return float(entry["construction_seconds"])


def extract_quiescent_rounds(scale_report: dict) -> float:
    """The gated scale's quiescent rounds/sec from a bench_scale.py report."""
    entry = scale_report.get("scales", {}).get(GATED_SCALE)
    if entry is None or "quiescent_rounds_per_sec" not in entry:
        raise SystemExit(
            f"scale report carries no quiescent_rounds_per_sec for scale "
            f"{GATED_SCALE!r}; "
            "run: python benchmarks/bench_scale.py --quick --out BENCH_fleet_scale.json"
        )
    return float(entry["quiescent_rounds_per_sec"])


def extract_sharded_throughput(scale_report: dict) -> float:
    """The 1e5 tier's sharded wall-clock events/sec from a bench_scale.py report."""
    entry = scale_report.get("scales", {}).get("1e5")
    if entry is None or "sharded_events_per_sec" not in entry:
        raise SystemExit(
            "scale report carries no sharded_events_per_sec for the 1e5 tier; "
            "run: python benchmarks/bench_scale.py --quick --out BENCH_fleet_scale.json"
        )
    return float(entry["sharded_events_per_sec"])


def extract_lockstep_throughput(scale_report: dict) -> float:
    """The 1e4 tier's lockstep-fallback events/sec from a bench_scale.py report."""
    entry = scale_report.get("scales", {}).get(GATED_SCALE)
    if entry is None or "lockstep_events_per_sec" not in entry:
        raise SystemExit(
            f"scale report carries no lockstep_events_per_sec for scale "
            f"{GATED_SCALE!r}; "
            "run: python benchmarks/bench_scale.py --quick --out BENCH_fleet_scale.json"
        )
    return float(entry["lockstep_events_per_sec"])


def extract_stream_metrics(stream_report: dict) -> tuple:
    """(events/sec at 1e3, memory-flat flag) from a bench_stream.py report."""
    entry = stream_report.get("scales", {}).get("1e3")
    memory = stream_report.get("memory")
    if entry is None or "events_per_sec" not in entry or memory is None:
        raise SystemExit(
            "stream report carries no 1e3 events_per_sec / memory section; "
            "run: python benchmarks/bench_stream.py --quick --out BENCH_stream.json"
        )
    return float(entry["events_per_sec"]), bool(memory.get("flat"))


def extract_gossip_metrics(gossip_report: dict) -> tuple:
    """(p99 detection rounds, within-bound flag) from a bench_gossip.py report."""
    p99 = gossip_report.get("gossip_detection_rounds_p99")
    if p99 is None or "within_bound" not in gossip_report:
        raise SystemExit(
            "gossip report carries no gossip_detection_rounds_p99 / within_bound; "
            "run: python benchmarks/bench_gossip.py --quick --out BENCH_gossip.json"
        )
    return float(p99), bool(gossip_report["within_bound"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="pytest-benchmark JSON report path")
    parser.add_argument(
        "--scale-report",
        default=None,
        help="bench_scale.py JSON artifact; enables the construction-time gate",
    )
    parser.add_argument(
        "--stream-report",
        default=None,
        help="bench_stream.py JSON artifact; enables the streaming-service gate",
    )
    parser.add_argument(
        "--gossip-report",
        default=None,
        help="bench_gossip.py JSON artifact; enables the detection-latency gate",
    )
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent / "bench_baseline.json"),
        help="committed baseline JSON (default: benchmarks/bench_baseline.json)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_events_per_sec.json",
        help="where to write the measured-number artifact",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression below the baseline (default 0.2)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline with the measured number instead of gating",
    )
    args = parser.parse_args(argv)

    report = json.loads(Path(args.report).read_text())
    measured = extract_events_per_sec(report)
    construction = None
    quiescent = None
    sharded = None
    lockstep = None
    if args.scale_report is not None:
        scale_payload = json.loads(Path(args.scale_report).read_text())
        construction = extract_construction_seconds(scale_payload)
        quiescent = extract_quiescent_rounds(scale_payload)
        sharded = extract_sharded_throughput(scale_payload)
        lockstep = extract_lockstep_throughput(scale_payload)
    stream = None
    stream_flat = True
    if args.stream_report is not None:
        stream, stream_flat = extract_stream_metrics(
            json.loads(Path(args.stream_report).read_text())
        )
    gossip = None
    gossip_within_bound = True
    if args.gossip_report is not None:
        gossip, gossip_within_bound = extract_gossip_metrics(
            json.loads(Path(args.gossip_report).read_text())
        )

    baseline_path = Path(args.baseline)
    if args.update:
        refreshed = {"benchmark": GATED_BENCHMARK, "events_per_sec": measured}
        if construction is not None:
            refreshed["construction_seconds_1e4"] = construction
        if quiescent is not None:
            refreshed["quiescent_rounds_per_sec_1e4"] = quiescent
        if sharded is not None:
            refreshed["sharded_events_per_sec_1e5"] = sharded
        if lockstep is not None:
            refreshed["lockstep_events_per_sec_1e4"] = lockstep
        if stream is not None:
            refreshed["stream_events_per_sec_1e3"] = stream
        if gossip is not None:
            refreshed["gossip_detection_rounds_1e3"] = gossip
        if baseline_path.exists():
            # Preserve calibration notes and any other extra keys.
            previous = json.loads(baseline_path.read_text())
            refreshed = {**previous, **refreshed}
        baseline_path.write_text(json.dumps(refreshed, indent=2) + "\n")
        print(f"baseline updated: {measured:.0f} events/sec -> {baseline_path}")
        if construction is not None:
            print(f"baseline updated: {construction:.4f}s construction (1e4)")
        if quiescent is not None:
            print(f"baseline updated: {quiescent:.0f} quiescent rounds/sec (1e4)")
        if sharded is not None:
            print(f"baseline updated: {sharded:.0f} sharded events/sec (1e5)")
        if lockstep is not None:
            print(f"baseline updated: {lockstep:.0f} lockstep events/sec (1e4)")
        if stream is not None:
            print(f"baseline updated: {stream:.0f} stream events/sec (1e3)")
        if gossip is not None:
            print(f"baseline updated: {gossip:.1f} gossip detection rounds p99 (1e3)")
        return 0

    baseline_payload = json.loads(baseline_path.read_text())
    baseline = baseline_payload["events_per_sec"]
    floor = baseline * (1.0 - args.tolerance)
    passed = measured >= floor

    artifact = {
        "benchmark": GATED_BENCHMARK,
        "events_per_sec": measured,
        "baseline_events_per_sec": baseline,
        "floor_events_per_sec": floor,
        "tolerance": args.tolerance,
        "ratio_vs_baseline": measured / baseline if baseline else None,
        "pass": passed,
    }

    status = "ok" if passed else "REGRESSION"
    print(
        f"{GATED_BENCHMARK}: {measured:.0f} events/sec "
        f"(baseline {baseline:.0f}, floor {floor:.0f}) -> {status}"
    )

    construction_passed = True
    if construction is not None:
        ceiling_base = baseline_payload.get("construction_seconds_1e4")
        if ceiling_base is None:
            raise SystemExit(
                "--scale-report given but the baseline carries no "
                "construction_seconds_1e4; refresh it with --update"
            )
        ceiling = float(ceiling_base) * (1.0 + args.tolerance)
        construction_passed = construction <= ceiling
        artifact.update(
            {
                "construction_seconds_1e4": construction,
                "baseline_construction_seconds_1e4": float(ceiling_base),
                "ceiling_construction_seconds_1e4": ceiling,
                "construction_pass": construction_passed,
            }
        )
        cstatus = "ok" if construction_passed else "REGRESSION"
        print(
            f"fleet construction (1e4): {construction:.4f}s "
            f"(baseline {float(ceiling_base):.4f}, ceiling {ceiling:.4f}) -> {cstatus}"
        )

    quiescent_passed = True
    if quiescent is not None:
        quiescent_base = baseline_payload.get("quiescent_rounds_per_sec_1e4")
        if quiescent_base is None:
            raise SystemExit(
                "--scale-report given but the baseline carries no "
                "quiescent_rounds_per_sec_1e4; refresh it with --update"
            )
        quiescent_floor = float(quiescent_base) * (1.0 - args.tolerance)
        quiescent_passed = quiescent >= quiescent_floor
        artifact.update(
            {
                "quiescent_rounds_per_sec_1e4": quiescent,
                "baseline_quiescent_rounds_per_sec_1e4": float(quiescent_base),
                "floor_quiescent_rounds_per_sec_1e4": quiescent_floor,
                "quiescent_pass": quiescent_passed,
            }
        )
        qstatus = "ok" if quiescent_passed else "REGRESSION"
        print(
            f"quiescent rounds (1e4): {quiescent:.0f} rounds/sec "
            f"(baseline {float(quiescent_base):.0f}, floor {quiescent_floor:.0f}) "
            f"-> {qstatus}"
        )

    sharded_passed = True
    if sharded is not None:
        sharded_base = baseline_payload.get("sharded_events_per_sec_1e5")
        if sharded_base is None:
            raise SystemExit(
                "--scale-report given but the baseline carries no "
                "sharded_events_per_sec_1e5; refresh it with --update"
            )
        sharded_floor = float(sharded_base) * (1.0 - args.tolerance)
        sharded_passed = sharded >= sharded_floor
        artifact.update(
            {
                "sharded_events_per_sec_1e5": sharded,
                "baseline_sharded_events_per_sec_1e5": float(sharded_base),
                "floor_sharded_events_per_sec_1e5": sharded_floor,
                "sharded_pass": sharded_passed,
            }
        )
        shstatus = "ok" if sharded_passed else "REGRESSION"
        print(
            f"sharded run (1e5): {sharded:.0f} events/sec "
            f"(baseline {float(sharded_base):.0f}, floor {sharded_floor:.0f}) "
            f"-> {shstatus}"
        )

    lockstep_passed = True
    if lockstep is not None:
        lockstep_base = baseline_payload.get("lockstep_events_per_sec_1e4")
        if lockstep_base is None:
            raise SystemExit(
                "--scale-report given but the baseline carries no "
                "lockstep_events_per_sec_1e4; refresh it with --update"
            )
        lockstep_floor = float(lockstep_base) * (1.0 - args.tolerance)
        lockstep_passed = lockstep >= lockstep_floor
        artifact.update(
            {
                "lockstep_events_per_sec_1e4": lockstep,
                "baseline_lockstep_events_per_sec_1e4": float(lockstep_base),
                "floor_lockstep_events_per_sec_1e4": lockstep_floor,
                "lockstep_pass": lockstep_passed,
            }
        )
        lstatus = "ok" if lockstep_passed else "REGRESSION"
        print(
            f"lockstep fallback (1e4): {lockstep:.0f} events/sec "
            f"(baseline {float(lockstep_base):.0f}, floor {lockstep_floor:.0f}) "
            f"-> {lstatus}"
        )

    stream_passed = True
    if stream is not None:
        stream_base = baseline_payload.get("stream_events_per_sec_1e3")
        if stream_base is None:
            raise SystemExit(
                "--stream-report given but the baseline carries no "
                "stream_events_per_sec_1e3; refresh it with --update"
            )
        stream_floor = float(stream_base) * (1.0 - args.tolerance)
        stream_passed = stream >= stream_floor and stream_flat
        artifact.update(
            {
                "stream_events_per_sec_1e3": stream,
                "baseline_stream_events_per_sec_1e3": float(stream_base),
                "floor_stream_events_per_sec_1e3": stream_floor,
                "stream_memory_flat": stream_flat,
                "stream_pass": stream_passed,
            }
        )
        sstatus = "ok" if stream_passed else "REGRESSION"
        print(
            f"streaming service (1e3): {stream:.0f} events/sec "
            f"(baseline {float(stream_base):.0f}, floor {stream_floor:.0f}), "
            f"memory {'flat' if stream_flat else 'GROWING'} -> {sstatus}"
        )

    gossip_passed = True
    if gossip is not None:
        gossip_base = baseline_payload.get("gossip_detection_rounds_1e3")
        if gossip_base is None:
            raise SystemExit(
                "--gossip-report given but the baseline carries no "
                "gossip_detection_rounds_1e3; refresh it with --update"
            )
        gossip_ceiling = float(gossip_base) * (1.0 + args.tolerance)
        gossip_passed = gossip <= gossip_ceiling and gossip_within_bound
        artifact.update(
            {
                "gossip_detection_rounds_1e3": gossip,
                "baseline_gossip_detection_rounds_1e3": float(gossip_base),
                "ceiling_gossip_detection_rounds_1e3": gossip_ceiling,
                "gossip_within_bound": gossip_within_bound,
                "gossip_pass": gossip_passed,
            }
        )
        gstatus = "ok" if gossip_passed else "REGRESSION"
        print(
            f"gossip detection (1e3): p99 {gossip:.1f} rounds "
            f"(baseline {float(gossip_base):.1f}, ceiling {gossip_ceiling:.1f}), "
            f"bound {'ok' if gossip_within_bound else 'EXCEEDED'} -> {gstatus}"
        )

    overall = (
        passed
        and construction_passed
        and quiescent_passed
        and sharded_passed
        and lockstep_passed
        and stream_passed
        and gossip_passed
    )
    artifact["pass"] = overall
    out_path = Path(args.out)
    out_path.write_text(json.dumps(artifact, indent=2) + "\n")
    if out_path.name.startswith("BENCH_"):
        # Fold the gate verdicts into the consolidated per-run summary.
        write_summary(out_path.parent)
    return 0 if overall else 1


if __name__ == "__main__":
    sys.exit(main())
