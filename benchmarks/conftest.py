"""Shared fixtures and helpers for the benchmark harness.

Every benchmark corresponds to one experiment of DESIGN.md's per-experiment
index (E1--E13); each records the quantities the paper's worked example or
theorem predicts next to the measured ones via ``benchmark.extra_info`` so
that ``--benchmark-json`` output carries the full comparison, and asserts
the *shape* claims (who wins, how things scale) so a regression in the
reproduction fails loudly even in benchmark mode.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by the randomized benchmarks."""
    return np.random.default_rng(20080803)
