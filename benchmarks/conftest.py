"""Shared fixtures and helpers for the benchmark harness.

Every benchmark corresponds to one experiment of DESIGN.md's per-experiment
index (E1--E13); each records the quantities the paper's worked example or
theorem predicts next to the measured ones via ``benchmark.extra_info`` so
that ``--benchmark-json`` output carries the full comparison, and asserts
the *shape* claims (who wins, how things scale) so a regression in the
reproduction fails loudly even in benchmark mode.
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="benchmark smoke mode: keep one family solve plus the "
        "event-driver events/sec benchmark, deselect the rest (the CI "
        "smoke job runs bench_scenarios.py this way)",
    )


#: The --quick selection: one end-to-end family solve and the event-driver
#: throughput number -- the two lines a transport regression would move.
_QUICK_KEEP = (
    "bench_family_solve_time[hotspot]",
    "bench_online_driver_events_per_sec[events]",
)


def pytest_collection_modifyitems(config: pytest.Config, items: list) -> None:
    if not config.getoption("--quick"):
        return
    keep, drop = [], []
    for item in items:
        (keep if item.name in _QUICK_KEEP else drop).append(item)
    if drop:
        config.hook.pytest_deselected(items=drop)
        items[:] = keep


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by the randomized benchmarks."""
    return np.random.default_rng(20080803)
