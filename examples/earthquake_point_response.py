"""Earthquake response: the single-point example (Example 2.1.3, Figure 2.3).

A seismic event concentrates a burst of ``d`` service requests at one
lattice point; sensors from a square of radius ``W3`` around the epicenter
walk over to help, giving the cube-root law ``W3 (2 W3 + 1)^2 = d``.

The example sweeps the burst size, compares the closed form against the
library's bounds, then replays the burst online -- including the failure
scenarios of Section 3.2.5: the epicenter's own sensor dies mid-burst and
the monitoring loop has to install replacements.

Run with::

    python examples/earthquake_point_response.py
"""

from __future__ import annotations

from repro import offline_bounds, run_online
from repro.analysis.report import Table
from repro.core.demand import JobSequence
from repro.core.omega import example_point_bound
from repro.distsim.failures import FailurePlan
from repro.vehicles.fleet import FleetConfig
from repro.workloads.generators import point_demand


def main() -> None:
    sweep = Table(
        "Example 2.1.3 -- burst of d requests at one point (earthquake)",
        ["burst d", "W3 (closed form)", "omega* (library)", "plan max energy", "plan/W3"],
    )
    for burst in (27.0, 125.0, 343.0, 1000.0):
        demand = point_demand(burst)
        bounds = offline_bounds(demand)
        w3 = example_point_bound(burst)
        sweep.add_row(
            burst, w3, bounds.omega_star, bounds.constructive_capacity,
            bounds.constructive_capacity / w3,
        )
    print(sweep.render())
    print(
        "\nBoth columns grow like the cube root of the burst size, as the "
        "worked example predicts.\n"
    )

    # Online replay of a 60-request burst with a tight per-sensor battery, so
    # sensors exhaust themselves and Phase I/II replacements are exercised.
    burst = 60
    jobs = JobSequence.from_positions([(0, 0)] * burst)
    tight = run_online(jobs, omega=3.0, capacity=16.0)
    print(
        f"Tight batteries (W = 16): served {tight.jobs_served}/{tight.jobs_total} "
        f"with {tight.replacements} replacements and {tight.messages} messages."
    )

    # Scenario 2: the epicenter sensor never starts its replacement search;
    # the monitoring loop (heartbeats + watchers) must recover.
    plan = FailurePlan()
    plan.suppress_initiation((0, 0))
    recovered = run_online(
        jobs,
        omega=3.0,
        capacity=16.0,
        config=FleetConfig(monitoring=True),
        failure_plan=plan,
        recovery_rounds=4,
    )
    print(
        "Scenario 2 (initiation failure) with monitoring: served "
        f"{recovered.jobs_served}/{recovered.jobs_total}, "
        f"watch-initiated searches recovered the pair."
    )

    assert tight.feasible and recovered.feasible


if __name__ == "__main__":
    main()
