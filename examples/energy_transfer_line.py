"""Inter-vehicle energy transfers on a line (Chapter 5, Section 5.2.1).

When vehicles may hand energy to a co-located peer and tanks are large, a
single collector can sweep a line of ``N`` vehicles, gather everyone's
charge, and redistribute exactly what each vertex needs on the way back.
The requirement then collapses from "local" (driven by the largest nearby
demand) to the *average* demand.

This example executes the schedule for both accounting methods (fixed cost
per transfer, variable cost per unit transferred), bisects for the minimal
initial charge, and compares it with the thesis's closed forms and with the
no-transfer requirement.

Run with::

    python examples/energy_transfer_line.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.core.demand import DemandMap
from repro.core.omega import omega_star_cubes
from repro.core.transfer import (
    TransferAccounting,
    line_tank_requirement,
    simulate_line_collection,
)


def minimal_charge(demands, accounting, a1=0.0, a2=0.0) -> float:
    """Smallest initial per-vehicle charge for which the schedule succeeds."""
    lo, hi = 0.0, max(1.0, max(demands))
    while not simulate_line_collection(demands, hi, accounting=accounting, a1=a1, a2=a2).feasible:
        hi *= 2.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if simulate_line_collection(demands, mid, accounting=accounting, a1=a1, a2=a2).feasible:
            hi = mid
        else:
            lo = mid
    return hi


def main() -> None:
    rng = np.random.default_rng(13)
    n = 24
    demands = [float(round(x)) for x in rng.uniform(0.0, 30.0, size=n)]
    average = sum(demands) / n

    # The no-transfer requirement for the same one-dimensional workload.
    demand_map = DemandMap({(i,): d for i, d in enumerate(demands) if d > 0})
    no_transfer = omega_star_cubes(demand_map).omega

    table = Table(
        f"Section 5.2.1 -- line of {n} vehicles, average demand {average:.1f}",
        ["accounting", "closed form W", "simulated minimal W", "transfers", "distance"],
    )
    for accounting, a1, a2 in (
        (TransferAccounting.FIXED, 0.5, 0.0),
        (TransferAccounting.VARIABLE, 0.0, 0.05),
    ):
        closed = line_tank_requirement(demands, accounting=accounting, a1=a1, a2=a2)
        simulated = minimal_charge(demands, accounting, a1=a1, a2=a2)
        run = simulate_line_collection(demands, simulated, accounting=accounting, a1=a1, a2=a2)
        table.add_row(accounting.value, closed, simulated, run.transfers, run.distance)
    print(table.render())

    print(
        f"\nWithout transfers the same workload needs about {no_transfer:.1f} per "
        f"vehicle; with collection it needs roughly the average demand "
        f"({average:.1f}) plus travel -- the Theta(avg d) claim of Section 5.2.1."
    )


if __name__ == "__main__":
    main()
