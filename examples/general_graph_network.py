"""CMVRP beyond the grid: a campus network modeled as a general graph.

Chapter 6 of the thesis lists "results for graphs in general" as an open
direction.  The library's :mod:`repro.graphs` subpackage carries the
*offline* characterization over to arbitrary connected graphs: the
``omega_T`` lower bound is graph-agnostic, the transport relaxation is a
max-flow, and an audited greedy plan supplies the upper bound.

This example builds a small "campus" (three dense buildings joined by
corridors), puts bursty demand in two of them, and reports the bound
ladder -- including the lower/upper gap that the thesis leaves open on
general graphs.

Run with::

    python examples/general_graph_network.py
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.report import Table
from repro.graphs import GraphMetric, graph_bounds, graph_greedy_plan


def build_campus() -> nx.Graph:
    """Three 3x3 grid 'buildings' connected by 4-hop corridors."""
    campus = nx.Graph()
    buildings = {}
    for name, offset in (("A", 0), ("B", 100), ("C", 200)):
        block = nx.grid_2d_graph(3, 3)
        relabeled = nx.relabel_nodes(block, {node: (name, node) for node in block})
        campus.update(relabeled)
        buildings[name] = [(name, node) for node in block]
    # Corridors: A(2,1) -- hallway -- B(0,1), B(2,1) -- hallway -- C(0,1).
    for left, right, tag in ((("A", (2, 1)), ("B", (0, 1)), "ab"), (("B", (2, 1)), ("C", (0, 1)), "bc")):
        previous = left
        for step in range(1, 4):
            hall = (f"hall-{tag}", step)
            campus.add_edge(previous, hall)
            previous = hall
        campus.add_edge(previous, right)
    return campus


def main() -> None:
    campus = build_campus()
    metric = GraphMetric(campus)
    print(
        f"Campus graph: {campus.number_of_nodes()} nodes, "
        f"{campus.number_of_edges()} edges, diameter {metric.diameter():.0f}."
    )

    # Bursty workloads in buildings A and C; building B is quiet but its
    # sensors are in range to help.
    demand = {
        ("A", (1, 1)): 20.0,
        ("A", (0, 0)): 6.0,
        ("C", (1, 1)): 14.0,
        ("C", (2, 2)): 4.0,
    }

    bounds = graph_bounds(metric, demand, tolerance=0.05)
    table = Table(
        "Offline CMVRP bounds on the campus graph",
        ["quantity", "value"],
    )
    table.add_row("omega* lower bound (graph analogue of Thm 1.4.1)", bounds.omega_star)
    table.add_row("transport relaxation (program (2.8) on the graph)", bounds.transport_relaxation)
    table.add_row("greedy audited upper bound", bounds.greedy_capacity)
    table.add_row("upper/lower gap (open problem on general graphs)", bounds.gap)
    print(table.render())

    plan = graph_greedy_plan(metric, demand, bounds.greedy_capacity)
    used = len(plan.routes)
    print(
        f"\nThe audited plan uses {used} of {campus.number_of_nodes()} sensors; "
        f"max per-sensor energy {plan.max_vehicle_energy():.2f}."
    )
    print(
        "On the lattice the thesis closes the gap with the cube partition; "
        "no such partition exists here, which is exactly the open question "
        "Chapter 6 raises."
    )

    assert plan.covers(demand)


if __name__ == "__main__":
    main()
