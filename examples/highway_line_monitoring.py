"""Highway traffic sensing: the line example (Example 2.1.2, Figure 2.2).

The thesis motivates the line-shaped demand with mobile vehicles detecting
traffic flow on a highway: every point of a line segment requires ``d``
units of service, and sensors parked in the plane around the highway must
drive to it.  Example 2.1.2 shows the optimal capacity is ``Theta(W2)``
with ``W2`` the root of ``W (2W + 1) = d`` -- i.e. it scales with the
*square root* of the per-point demand because an entire two-dimensional
strip of width ``W`` can reach the line.

This example sweeps the per-point demand, compares the library's general
bounds against the closed form, and runs the online protocol on one of the
settings to confirm the decentralized strategy also lands within a
constant of ``W2``.

Run with::

    python examples/highway_line_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import offline_bounds, run_online
from repro.analysis.report import Table
from repro.core.omega import example_line_bound
from repro.workloads.arrivals import random_arrivals
from repro.workloads.generators import line_demand


def main() -> None:
    highway_length = 30

    sweep = Table(
        "Example 2.1.2 -- demand d on every point of a line (highway)",
        ["d per point", "W2 (closed form)", "omega* (library)", "plan max energy", "plan/W2"],
    )
    for per_point in (5.0, 10.0, 20.0, 40.0, 80.0):
        demand = line_demand(highway_length, per_point)
        bounds = offline_bounds(demand)
        w2 = example_line_bound(per_point)
        sweep.add_row(
            per_point,
            w2,
            bounds.omega_star,
            bounds.constructive_capacity,
            bounds.constructive_capacity / w2,
        )
    print(sweep.render())
    print(
        "\nThe ratio column stays bounded as d grows: the general machinery "
        "tracks the sqrt(d) law of the worked example.\n"
    )

    # Online: a day of traffic readings arriving in random order.
    per_point = 20.0
    demand = line_demand(highway_length, per_point)
    jobs = random_arrivals(demand, np.random.default_rng(42))
    result = run_online(jobs)
    online = Table(
        "Online run on the d = 20 highway workload",
        ["quantity", "value"],
    )
    online.add_row("jobs served / total", f"{result.jobs_served}/{result.jobs_total}")
    online.add_row("W2 closed form", example_line_bound(per_point))
    online.add_row("max per-vehicle energy (online)", result.max_vehicle_energy)
    online.add_row("provisioned capacity", result.capacity)
    online.add_row("replacements", result.replacements)
    print(online.render())

    assert result.feasible


if __name__ == "__main__":
    main()
