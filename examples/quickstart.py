"""Quickstart: the unified experiment API end to end on a small workload.

This walks through the :mod:`repro.api` surface in one sitting:

1.  describe a workload as a :class:`~repro.api.ScenarioSpec` (here: the
    thesis's square example -- a building monitored by a grid of mobile
    sensors);
2.  build one frozen :class:`~repro.api.RunConfig` per solver -- the
    offline characterization of Chapter 2, the decentralized online
    strategy of Chapter 3, and the greedy heuristic baseline -- plus a
    broken-vehicle run (Section 3.2.5 / Chapter 4) riding on the same
    scenario;
3.  fan them out over the :class:`~repro.api.ExperimentEngine` (parallel
    workers, per-config seeding, result caching keyed on config hash);
4.  print one comparison table and drill into a single
    :class:`~repro.api.RunResult`.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import (
    ExperimentEngine,
    FailureSpec,
    RunConfig,
    ScenarioSpec,
)
from repro.analysis.report import Table
from repro.workloads.generators import square_demand


def main() -> None:
    # An 8 x 8 building floor; every vertex hosts a sensor (vehicle) and the
    # monitoring workload asks for 12 units of service per vertex.  The spec
    # freezes the demand, the arrival ordering, and its seed, so every run
    # below is a pure function of its config.
    demand = square_demand(side=8, demand=12.0)
    scenario = ScenarioSpec.from_demand(demand, name="building", seed=0)
    print(f"Workload: {demand!r}\n")

    # One config per solver; the same scenario drives all of them.
    configs = [
        RunConfig(solver="offline", scenario=scenario),
        RunConfig(solver="online", scenario=scenario),
        RunConfig(solver="greedy", scenario=scenario),
        # Chapter 4 flavor: crash a vehicle inside the floor and let the
        # Section 3.2.5 monitoring loop recover.
        RunConfig(
            solver="online-broken",
            scenario=scenario,
            failures=FailureSpec(crashed=((3, 3),)),
            recovery_rounds=3,
        ),
    ]

    engine = ExperimentEngine(workers=4)
    results = engine.run_many(configs)

    # ---------------------------------------------------------------- #
    # The cross-solver comparison: every row reports the same quantities
    # (omega*, capacity, feasibility, energies), which is what makes the
    # Theorem 1.4.1 / 1.4.2 sandwich visible at a glance.
    # ---------------------------------------------------------------- #
    print(engine.summary(results, title="CMVRP solvers on the building workload").render())
    print()

    # ---------------------------------------------------------------- #
    # Drilling into one result: solver-specific counters ride in extras.
    # ---------------------------------------------------------------- #
    online = results[1]
    detail = Table("Online strategy detail (Theorem 1.4.2)", ["quantity", "value"])
    detail.add_row("jobs served / total", f"{online.jobs_served}/{online.jobs_total}")
    detail.add_row("provisioned capacity (4*3^l + l) * omega", online.capacity)
    detail.add_row("max per-vehicle energy used", online.max_vehicle_energy)
    detail.add_row("online / offline lower bound ratio", online.capacity_ratio)
    detail.add_row("replacements (Phase I/II runs)", online.extra("replacements"))
    detail.add_row("protocol messages", online.extra("messages"))
    print(detail.render())
    print()

    # Caching: re-running a config is free (content-hash lookup, no solve).
    engine.run_many(configs)
    print(
        f"engine stats: {engine.stats.executed} runs executed, "
        f"{engine.stats.cache_hits} cache hits"
    )

    assert all(result.feasible for result in results), "every run must serve all jobs"


if __name__ == "__main__":
    main()
