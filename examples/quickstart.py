"""Quickstart: the CMVRP pipeline end to end on a small workload.

This walks through the whole public API in one sitting:

1.  build a demand map (here: the thesis's square example -- a building
    monitored by a grid of mobile sensors);
2.  compute the offline characterization of Theorem 1.4.1: the lower bound
    ``omega*``, the Corollary 2.2.7 fixed point ``omega_c``, the
    Algorithm 1 estimate, and the audited constructive plan of Lemma 2.2.5;
3.  turn the demand into an online job sequence and run the decentralized
    strategy of Chapter 3 (Phase I/II diffusing computations included);
4.  print everything as a small table.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    algorithm1,
    audit_plan,
    build_cube_plan,
    offline_bounds,
    run_online,
)
from repro.analysis.report import Table
from repro.grid.lattice import Box
from repro.workloads.arrivals import random_arrivals
from repro.workloads.generators import square_demand


def main() -> None:
    # An 8 x 8 building floor; every vertex hosts a sensor (vehicle) and the
    # monitoring workload asks for 12 units of service per vertex.
    demand = square_demand(side=8, demand=12.0)
    print(f"Workload: {demand!r}\n")

    # ---------------------------------------------------------------- #
    # Offline characterization (Chapter 2)
    # ---------------------------------------------------------------- #
    window = Box.cube((0, 0), 8)  # power-of-two window for Algorithm 1
    bounds = offline_bounds(demand, window=window)

    offline_table = Table(
        "Offline characterization (Theorem 1.4.1)",
        ["quantity", "value"],
    )
    offline_table.add_row("omega_c (Cor. 2.2.7 lower bound)", bounds.omega_c)
    offline_table.add_row("omega* = max_T omega_T (cubes)", bounds.omega_star)
    offline_table.add_row("constructive plan max energy", bounds.constructive_capacity)
    offline_table.add_row("(2*3^l + l) * omega* upper bound", bounds.upper_bound)
    offline_table.add_row("Algorithm 1 estimate", bounds.algorithm1_estimate)
    offline_table.add_row("realized upper/lower gap", bounds.sandwich_ratio)
    print(offline_table.render())
    print()

    # The constructive plan itself can be inspected and audited explicitly.
    plan = build_cube_plan(demand)
    audit = audit_plan(plan, demand, capacity=bounds.upper_bound)
    print(f"Lemma 2.2.5 plan: {len(plan)} vehicles used; audit: {audit.summary()}\n")

    # ---------------------------------------------------------------- #
    # Online strategy (Chapter 3)
    # ---------------------------------------------------------------- #
    jobs = random_arrivals(demand, np.random.default_rng(0))
    result = run_online(jobs)

    online_table = Table(
        "Online strategy (Theorem 1.4.2)",
        ["quantity", "value"],
    )
    online_table.add_row("jobs served / total", f"{result.jobs_served}/{result.jobs_total}")
    online_table.add_row("provisioned capacity (4*3^l + l) * omega_c", result.capacity)
    online_table.add_row("max per-vehicle energy used", result.max_vehicle_energy)
    online_table.add_row("online / offline lower bound ratio", result.online_to_offline_ratio)
    online_table.add_row("replacements (Phase I/II runs)", result.replacements)
    online_table.add_row("protocol messages", result.messages)
    print(online_table.render())

    assert result.feasible, "the online strategy must serve every job"


if __name__ == "__main__":
    main()
