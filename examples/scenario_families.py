"""Tour of the adversarial scenario-family library.

Runs every registered family through a couple of solvers (CI-scale
presets), shows a timed partition + churn scenario on the event-driven
online driver, and prints the one-line recipe for adding a family.

Run with::

    PYTHONPATH=src python examples/scenario_families.py
"""

from __future__ import annotations

from repro.api import ExperimentEngine
from repro.workloads.library import (
    available_families,
    build_family_failures,
    family_config,
    family_matrix,
    get_family,
)


def sweep_the_registry() -> None:
    """Every family x (offline, greedy, online) through the engine."""
    engine = ExperimentEngine(workers=4)
    configs = family_matrix(
        available_families(), ("offline", "greedy", "online"), preset="small"
    )
    results = engine.run_many(configs)
    print(ExperimentEngine.summary(results, title="Scenario-family sweep").render())


def adversarial_run_on_the_event_engine() -> None:
    """The partition family on the event-driven driver, failures and all."""
    config = family_config(
        "partition", "online-broken", preset="small", params={"engine": "events"}
    )
    result = ExperimentEngine().run(config)
    failures = build_family_failures("partition", config.scenario.family_params_dict())
    window = failures.partitions[0]
    print(
        f"\npartition family (event driver): served {result.jobs_served}/"
        f"{result.jobs_total}, cut [{window.start:g}, {window.end:g}) on the "
        f"job clock, {result.extra('events_processed')} simulator events, "
        f"{result.extra('replacements')} replacements"
    )


def how_to_add_a_family() -> None:
    family = get_family("hotspot")
    print(
        "\nAdding a family: write a generator in repro.workloads.generators, "
        "then register_family(ScenarioFamily(name=..., build=..., defaults=..., "
        "small=..., failures=optional)).\n"
        f"Example entry: {family.name!r} -> defaults {dict(family.defaults)}"
    )


if __name__ == "__main__":
    sweep_the_registry()
    adversarial_run_on_the_event_engine()
    how_to_add_a_family()
