"""Smart-Dust building monitoring with sensor failures (Chapters 3 and 4).

The introduction's motivating scenario: hundreds of millimeter-scale
sensors scattered over a building, monitoring temperature/humidity, each
with a tiny battery drained both by moving and by serving readings.  This
example runs a full campaign:

* a clustered workload (readings concentrate around a few hot spots);
* the decentralized online strategy with the Lemma 3.3.1 capacity;
* scenario 3 of Section 3.2.5: a handful of sensors die mid-campaign and
  the monitoring loop installs replacements;
* a comparison against the classical single-depot CVRP view of the same
  workload (benchmark E13's point: the objectives differ).

Run with::

    python examples/smart_dust_building.py
"""

from __future__ import annotations

import numpy as np

from repro import offline_bounds
from repro.analysis.report import Table
from repro.baselines.cvrp import CVRPInstance, clarke_wright
from repro.core.omega import omega_c
from repro.distsim.failures import FailurePlan
from repro.grid.lattice import Box
from repro.vehicles.fleet import Fleet, FleetConfig
from repro.workloads.arrivals import random_arrivals
from repro.workloads.generators import clustered_demand


def main() -> None:
    rng = np.random.default_rng(7)
    floor = Box.cube((0, 0), 16)
    demand = clustered_demand(floor, clusters=4, jobs_per_cluster=60, rng=rng, spread=2)
    print(f"Campaign workload: {demand!r}")

    bounds = offline_bounds(demand)
    print(
        f"Offline: omega* = {bounds.omega_star:.2f}, audited plan needs "
        f"{bounds.constructive_capacity:.2f} per sensor "
        f"(worst-case bound {bounds.upper_bound:.2f}).\n"
    )

    # ------------------------------------------------------------------ #
    # Online campaign with dying sensors (scenario 3)
    # ------------------------------------------------------------------ #
    omega = max(omega_c(demand), 2.0)
    capacity = (4 * 3**2 + 2) * omega
    config = FleetConfig(capacity=capacity, monitoring=True)
    fleet = Fleet(demand, omega, config, rng=rng)

    jobs = random_arrivals(demand, rng)
    crash_at = {len(jobs) // 4, len(jobs) // 2}
    crashed = 0
    unserved = 0
    for index, job in enumerate(jobs):
        if index in crash_at:
            # A currently active sensor breaks down ("smart dust" attrition).
            victim = fleet.registry[fleet.pair_key_of(job.position)]
            fleet.crash_vehicle(victim)
            crashed += 1
        served = fleet.deliver_job(job.position, job.energy)
        if not served:
            for _ in range(4):
                fleet.run_heartbeat_round()
            served = fleet.retry_job(job.position, job.energy)
        if not served:
            unserved += 1
        fleet.run_heartbeat_round()

    campaign = Table(
        "Online campaign with sensor attrition (scenario 3)",
        ["quantity", "value"],
    )
    campaign.add_row("jobs", len(jobs))
    campaign.add_row("sensors deployed", len(fleet.vehicles))
    campaign.add_row("sensors crashed mid-campaign", crashed)
    campaign.add_row("jobs left unserved", unserved)
    campaign.add_row("replacements installed", fleet.stats.replacements)
    campaign.add_row("watch-initiated searches", fleet.stats.watch_initiations)
    campaign.add_row("max per-sensor energy used", fleet.max_energy_used())
    campaign.add_row("provisioned capacity", capacity)
    campaign.add_row("protocol messages", fleet.messages_sent())
    print(campaign.render())
    print()

    # ------------------------------------------------------------------ #
    # The classical single-depot view of the same workload
    # ------------------------------------------------------------------ #
    instance = CVRPInstance.from_demand_map(demand, capacity=bounds.upper_bound)
    solution = clarke_wright(instance)
    contrast = Table(
        "Contrast with classical single-depot CVRP (Clarke--Wright)",
        ["objective", "CMVRP (vehicles everywhere)", "CVRP (one central depot)"],
    )
    contrast.add_row(
        "max per-vehicle energy",
        fleet.max_energy_used(),
        solution.max_route_energy(),
    )
    contrast.add_row(
        "total travel",
        fleet.total_travel(),
        solution.total_length(),
    )
    print(contrast.render())
    print(
        "\nWith a sensor at every vertex the per-vehicle energy stays small; "
        "funnelling everything through one depot concentrates travel on a few "
        "long routes, which is exactly the regime the CMVRP avoids."
    )

    assert unserved == 0


if __name__ == "__main__":
    main()
