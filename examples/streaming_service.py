"""Streaming service end to end: serve, kill mid-run, resume, verify.

The service harness (:mod:`repro.service`) runs the fleet against a lazy
job stream in constant memory, closes fixed-size metrics windows, and
snapshots its complete state at clean event boundaries.  This example
demonstrates the operational contract that makes it a *service*:

1.  serve a streamed workload to completion and record its result hash;
2.  run the same service again, but "kill" it deterministically right
    after its second checkpoint (``stop_after_checkpoints`` -- the same
    state a real crash after that write would leave on disk);
3.  resume from the snapshot file and let the stream finish;
4.  verify the resumed run reproduces the uninterrupted one *exactly* --
    identical ``result_hash`` and identical ``fleet_digest`` (a SHA-256
    over every vehicle's physical and protocol state).

Run with::

    python examples/streaming_service.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.api.service import ServiceConfig
from repro.core.demand import DemandMap
from repro.service import resume_service, run_service
from repro.workloads.arrivals import streaming_arrivals

JOBS = 120


def main() -> None:
    # A small neighborhood of demand points; the stream cycles their unit
    # expansion forever, so any horizon works.  Unbounded batteries: a
    # long-lived service outlives any fixed provisioning.
    demand = DemandMap({(0, 0): 4.0, (2, 1): 3.0, (5, 4): 2.0, (1, 6): 5.0})
    config = ServiceConfig.from_demand(
        demand, capacity=None, window_jobs=10, checkpoint_every=2
    )

    with tempfile.TemporaryDirectory() as workdir:
        snapshot = Path(workdir) / "snap.json"
        state = Path(workdir) / "state.json"

        # -- 1. the uninterrupted reference run --------------------------
        full = run_service(config, streaming_arrivals(demand, jobs=JOBS))
        print(
            f"full run:    {full.jobs_served}/{full.jobs_total} jobs, "
            f"{full.windows} windows, hash {full.result_hash()[:16]}"
        )

        # -- 2. serve again, killed right after the second checkpoint ----
        partial = run_service(
            config,
            streaming_arrivals(demand, jobs=JOBS),
            checkpoint_path=str(snapshot),
            state_path=str(state),
            stop_after_checkpoints=2,
        )
        live = json.loads(state.read_text())
        print(
            f"interrupted: {partial.jobs_total} jobs dispatched, "
            f"{partial.checkpoints_written} checkpoints, "
            f"live state says clock={live['clock']}"
        )

        # -- 3. resume from the snapshot file ----------------------------
        # The snapshot embeds the service config; the caller only re-supplies
        # the (deterministic) stream, which the harness fast-forwards.
        resumed = resume_service(str(snapshot), streaming_arrivals(demand, jobs=JOBS))
        print(
            f"resumed:     {resumed.jobs_served}/{resumed.jobs_total} jobs, "
            f"hash {resumed.result_hash()[:16]}"
        )

        # -- 4. the resumed run IS the uninterrupted run ------------------
        assert resumed.result_hash() == full.result_hash(), "result hash diverged"
        assert resumed.fleet_digest == full.fleet_digest, "fleet state diverged"
        print("\nresumed run reproduces the uninterrupted run exactly:")
        print(f"  result_hash  {full.result_hash()}")
        print(f"  fleet_digest {full.fleet_digest}")


if __name__ == "__main__":
    main()
