"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists only
so that editable installs work in offline environments whose setuptools
lacks PEP 517 wheel support (see the note in ``pyproject.toml``).
"""

from setuptools import setup

setup()
