"""repro: a reproduction of "On a Capacitated Multivehicle Routing Problem".

The package implements the Capacitated Multivehicle Routing Problem (CMVRP)
of Gao's 2008 thesis: vehicles with a shared battery capacity ``W`` sit at
every vertex of the lattice ``Z^l``, travel and job service both drain the
battery, and the question is the smallest ``W`` that lets the fleet serve a
given demand -- offline (Chapter 2), online and decentralized (Chapter 3),
with broken vehicles (Chapter 4), and with inter-vehicle energy transfers
(Chapter 5).

Quickstart -- the unified experiment API drives every solver (offline,
online, broken vehicles, energy transfers, and the classical baselines)
through one engine::

    from repro.api import ExperimentEngine, RunConfig, ScenarioSpec

    scenario = ScenarioSpec.named("square", seed=0)   # or .from_demand(...)
    configs = [
        RunConfig(solver=name, scenario=scenario)
        for name in ("offline", "online", "greedy")
    ]
    engine = ExperimentEngine(workers=4)              # parallel, cached
    results = engine.run_many(configs)                # unified RunResults
    print(engine.summary(results).render())           # one comparison table

Every run is a pure function of its frozen :class:`~repro.api.RunConfig`
(JSON round-trippable, content-hashed for caching), so sweeps are
reproducible bit-for-bit regardless of worker count.  The same machinery
backs the command line::

    python -m repro compare --scenario square --solvers offline,online,greedy
    python -m repro sweep --scenarios all --solvers offline,greedy --workers 4

The chapter implementations remain importable directly (``offline_bounds``,
``run_online``, ...) for fine-grained control.

Subpackages
-----------
``repro.api``
    The unified experiment API: solver registry, run configs, the batch
    execution engine, and the unified result record.
``repro.grid``
    The lattice substrate (Manhattan metric, neighborhoods, cubes, coloring).
``repro.core``
    Demand model, the omega/LP characterization, Algorithm 1, the
    constructive offline plan, the online harness, and the Chapter 4/5
    extensions.
``repro.distsim``
    Discrete-event message-passing simulation and the Dijkstra--Scholten
    diffusing computation.
``repro.vehicles``
    The online vehicle protocol (state machine, Phase I/II, monitoring).
``repro.workloads``
    Demand generators and arrival orderings.
``repro.baselines``
    Classical TSP/CVRP/transportation baselines and a greedy CMVRP heuristic.
``repro.analysis``
    Bound ladders and plain-text experiment tables.
``repro.io``
    JSON serialization of workloads, plans, and results.
"""

from repro.api import (
    ExperimentEngine,
    RunConfig,
    RunResult,
    ScenarioSpec,
    available_solvers,
    get_solver,
    register_solver,
)
from repro.core.demand import DemandMap, Job, JobSequence
from repro.core.offline import (
    Algorithm1Result,
    OfflineBounds,
    algorithm1,
    offline_bounds,
    online_upper_bound_factor,
    upper_bound_factor,
)
from repro.core.omega import (
    omega_c,
    omega_for_region,
    omega_star_cubes,
    omega_star_exhaustive,
)
from repro.core.online import OnlineResult, run_online
from repro.core.plan import ServicePlan, VehicleRoute, build_cube_plan
from repro.core.feasibility import PlanAudit, audit_plan, minimal_feasible_capacity
from repro.grid.lattice import Box, manhattan
from repro.grid.regions import Region

__version__ = "1.0.0"

__all__ = [
    "ExperimentEngine",
    "RunConfig",
    "RunResult",
    "ScenarioSpec",
    "available_solvers",
    "get_solver",
    "register_solver",
    "DemandMap",
    "Job",
    "JobSequence",
    "Box",
    "Region",
    "manhattan",
    "omega_for_region",
    "omega_star_cubes",
    "omega_star_exhaustive",
    "omega_c",
    "Algorithm1Result",
    "OfflineBounds",
    "algorithm1",
    "offline_bounds",
    "upper_bound_factor",
    "online_upper_bound_factor",
    "ServicePlan",
    "VehicleRoute",
    "build_cube_plan",
    "PlanAudit",
    "audit_plan",
    "minimal_feasible_capacity",
    "OnlineResult",
    "run_online",
    "__version__",
]
