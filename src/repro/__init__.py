"""repro: a reproduction of "On a Capacitated Multivehicle Routing Problem".

The package implements the Capacitated Multivehicle Routing Problem (CMVRP)
of Gao's 2008 thesis: vehicles with a shared battery capacity ``W`` sit at
every vertex of the lattice ``Z^l``, travel and job service both drain the
battery, and the question is the smallest ``W`` that lets the fleet serve a
given demand -- offline (Chapter 2), online and decentralized (Chapter 3),
with broken vehicles (Chapter 4), and with inter-vehicle energy transfers
(Chapter 5).

Quickstart::

    from repro import offline_bounds, run_online
    from repro.workloads import square_demand
    from repro.workloads.arrivals import random_arrivals
    import numpy as np

    demand = square_demand(side=6, demand=10.0)
    bounds = offline_bounds(demand)            # omega*, upper bounds, plan
    jobs = random_arrivals(demand, np.random.default_rng(0))
    result = run_online(jobs)                  # decentralized simulation
    print(bounds.omega_star, result.max_vehicle_energy)

Subpackages
-----------
``repro.grid``
    The lattice substrate (Manhattan metric, neighborhoods, cubes, coloring).
``repro.core``
    Demand model, the omega/LP characterization, Algorithm 1, the
    constructive offline plan, the online harness, and the Chapter 4/5
    extensions.
``repro.distsim``
    Discrete-event message-passing simulation and the Dijkstra--Scholten
    diffusing computation.
``repro.vehicles``
    The online vehicle protocol (state machine, Phase I/II, monitoring).
``repro.workloads``
    Demand generators and arrival orderings.
``repro.baselines``
    Classical TSP/CVRP/transportation baselines and a greedy CMVRP heuristic.
``repro.analysis``
    Bound ladders and plain-text experiment tables.
``repro.io``
    JSON serialization of workloads, plans, and results.
"""

from repro.core.demand import DemandMap, Job, JobSequence
from repro.core.offline import (
    Algorithm1Result,
    OfflineBounds,
    algorithm1,
    offline_bounds,
    online_upper_bound_factor,
    upper_bound_factor,
)
from repro.core.omega import (
    omega_c,
    omega_for_region,
    omega_star_cubes,
    omega_star_exhaustive,
)
from repro.core.online import OnlineResult, run_online
from repro.core.plan import ServicePlan, VehicleRoute, build_cube_plan
from repro.core.feasibility import PlanAudit, audit_plan, minimal_feasible_capacity
from repro.grid.lattice import Box, manhattan
from repro.grid.regions import Region

__version__ = "1.0.0"

__all__ = [
    "DemandMap",
    "Job",
    "JobSequence",
    "Box",
    "Region",
    "manhattan",
    "omega_for_region",
    "omega_star_cubes",
    "omega_star_exhaustive",
    "omega_c",
    "Algorithm1Result",
    "OfflineBounds",
    "algorithm1",
    "offline_bounds",
    "upper_bound_factor",
    "online_upper_bound_factor",
    "ServicePlan",
    "VehicleRoute",
    "build_cube_plan",
    "PlanAudit",
    "audit_plan",
    "minimal_feasible_capacity",
    "OnlineResult",
    "run_online",
    "__version__",
]
