"""Analysis helpers: bound assembly and experiment reporting.

* :mod:`repro.analysis.bounds` -- put every theoretical and empirical bound
  for one demand map side by side (lower bounds, constructive upper bounds,
  heuristic upper bounds, online measurements).
* :mod:`repro.analysis.report` -- tiny plain-text table formatting used by
  the examples and the benchmark harness so that every experiment prints
  the same kind of rows the thesis's worked examples describe.
"""

from repro.analysis.bounds import BoundsReport, bounds_report
from repro.analysis.report import Table, format_table

__all__ = ["BoundsReport", "bounds_report", "Table", "format_table"]
