"""Assemble the full ladder of bounds for one demand map.

For a given demand map the thesis gives (Chapter 2):

    omega_c  <=  omega*  <=  W_off  <=  constructive plan  <=  (2*3^l + l) omega*

and, for the online case (Chapter 3):

    W_off  <=  W_on  <=  (4*3^l + l) omega_c.

:func:`bounds_report` computes every rung that is computable for the
instance size at hand (the exhaustive-subset and explicit-LP rungs are only
attempted on small supports) so that tests and benchmarks can assert the
ordering and report the realized constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.greedy import greedy_nearest_vehicle_plan
from repro.core.demand import DemandMap
from repro.core.feasibility import audit_plan, minimal_feasible_capacity
from repro.core.flows import min_self_radius_capacity
from repro.core.offline import (
    offline_bounds,
    online_upper_bound_factor,
    upper_bound_factor,
)
from repro.core.omega import omega_c, omega_star_exhaustive

__all__ = ["BoundsReport", "bounds_report", "escalation_capacity_bound"]

#: Above this support size the exhaustive-subset and flow cross-checks are
#: skipped (they exist to validate the scalable paths, not to run at scale).
SMALL_SUPPORT = 12


@dataclass
class BoundsReport:
    """Every bound we can compute for one demand map."""

    dim: int
    total_demand: float
    #: Cube-restricted ``max_T omega_T`` (always computed).
    omega_star_cubes: float
    #: Exhaustive-subset ``max_T omega_T`` (small supports only).
    omega_star_exhaustive: Optional[float]
    #: The Corollary 2.2.7 fixed point.
    omega_c: float
    #: Value of program (2.8) via the max-flow oracle (small supports only).
    lp_self_radius: Optional[float]
    #: Max per-vehicle energy of the audited Lemma 2.2.5 plan.
    constructive_capacity: float
    #: Smallest capacity at which the greedy nearest-vehicle plan is feasible.
    greedy_capacity: Optional[float]
    #: The worst-case factor ``2 * 3^l + l``.
    offline_factor: int

    @property
    def lower_bound(self) -> float:
        """The best certified lower bound on ``W_off``."""
        return max(self.omega_star_cubes, self.omega_c)

    @property
    def best_upper_bound(self) -> float:
        """The best audited upper bound on ``W_off``."""
        candidates = [self.constructive_capacity]
        if self.greedy_capacity is not None:
            candidates.append(self.greedy_capacity)
        return min(candidates)

    @property
    def realized_gap(self) -> float:
        """``best upper bound / lower bound`` (1.0 means the sandwich is tight)."""
        if self.lower_bound == 0:
            return 1.0
        return self.best_upper_bound / self.lower_bound


def escalation_capacity_bound(
    demand: DemandMap,
    *,
    omega: Optional[float] = None,
    reserve: float = 4.0,
) -> float:
    """Per-vehicle battery sufficient for escalated cross-cube replacement.

    Lemma 3.3.1 provisions ``(4 * 3^l + l) * omega`` for the intra-cube
    online protocol.  When a replacement search escalates through the cube
    hierarchy, the adopter additionally travels from its own home to the
    orphaned pair -- in the worst case the L1 diameter of the support's
    bounding box.  ``reserve`` pads for the recovery-round hovering a
    monitored takeover performs before re-serving abandoned jobs.

    This is a *provisioning* bound (sufficient, not tight): the sparse
    ``omega_c < 1`` differential scenarios use it instead of hand-tuned
    capacities, so growing a scenario cannot silently starve the adopters.
    """
    if demand.is_empty():
        return reserve
    if omega is None:
        omega = omega_c(demand)
    box = demand.bounding_box()
    diameter = float(sum(length - 1 for length in box.side_lengths))
    return online_upper_bound_factor(demand.dim) * float(omega) + diameter + reserve


def bounds_report(
    demand: DemandMap,
    *,
    include_greedy: bool = True,
    greedy_tolerance: float = 0.05,
) -> BoundsReport:
    """Compute the ladder of bounds for one demand map."""
    offline = offline_bounds(demand)
    small = len(demand) <= SMALL_SUPPORT
    exhaustive = omega_star_exhaustive(demand).omega if small else None
    lp_value = min_self_radius_capacity(demand) if small else None
    greedy_capacity: Optional[float] = None
    if include_greedy and not demand.is_empty():
        greedy_capacity, _ = minimal_feasible_capacity(
            demand,
            lambda capacity: greedy_nearest_vehicle_plan(demand, capacity),
            tolerance=greedy_tolerance,
        )
    return BoundsReport(
        dim=demand.dim,
        total_demand=demand.total(),
        omega_star_cubes=offline.omega_star,
        omega_star_exhaustive=exhaustive,
        omega_c=offline.omega_c,
        lp_self_radius=lp_value,
        constructive_capacity=offline.constructive_capacity,
        greedy_capacity=greedy_capacity,
        offline_factor=upper_bound_factor(demand.dim),
    )
