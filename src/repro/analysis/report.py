"""Plain-text tables for examples and the benchmark harness.

The thesis has no numeric result tables, so the reproduction's experiments
print their own: one row per scenario/parameter setting, with the paper's
predicted quantity next to the measured one.  Keeping the formatting in one
place means every benchmark emits the same kind of output, which is what
``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

__all__ = ["Table", "format_table"]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a list of rows as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Table:
    """An accumulating table: add rows as an experiment sweeps parameters."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (cell count must match the headers)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """The title plus the formatted table body."""
        return f"{self.title}\n{format_table(self.headers, self.rows)}"

    def __str__(self) -> str:
        return self.render()
