"""The unified experiment API: solver registry, run configs, batch engine.

One import gives everything needed to describe and execute experiments
across every chapter of the thesis and every baseline::

    from repro.api import ExperimentEngine, RunConfig, ScenarioSpec

    configs = [
        RunConfig(solver=name, scenario=ScenarioSpec.named("square", seed=0))
        for name in ("offline", "online", "greedy")
    ]
    engine = ExperimentEngine(workers=4)
    results = engine.run_many(configs)
    print(engine.summary(results).render())

Importing this package registers the built-in solvers (see
:mod:`repro.api.solvers`), so :func:`get_solver` and the engine always see
the full catalogue.
"""

from repro.api.config import (
    ARRIVAL_ORDERS,
    CapacitySpec,
    ConfigError,
    FailureSpec,
    RunConfig,
    ScenarioSpec,
)
from repro.api.engine import EngineStats, ExperimentEngine, config_matrix
from repro.distsim.failures import ChurnSpec, PartitionSpec
from repro.distsim.transport import TransportSpec, available_transports
from repro.api.registry import (
    Solver,
    SolverEntry,
    UnknownSolverError,
    available_solvers,
    get_solver,
    register_solver,
    solver_descriptions,
    solver_entry,
    unregister_solver,
)
from repro.api.result import RunResult
from repro.api.service import ServiceConfig, ServiceResult
from repro.api.solvers import BUILTIN_SOLVERS

__all__ = [
    "ARRIVAL_ORDERS",
    "BUILTIN_SOLVERS",
    "CapacitySpec",
    "ChurnSpec",
    "ConfigError",
    "EngineStats",
    "PartitionSpec",
    "ExperimentEngine",
    "FailureSpec",
    "RunConfig",
    "RunResult",
    "ScenarioSpec",
    "ServiceConfig",
    "ServiceResult",
    "Solver",
    "SolverEntry",
    "TransportSpec",
    "UnknownSolverError",
    "available_solvers",
    "available_transports",
    "config_matrix",
    "get_solver",
    "register_solver",
    "solver_descriptions",
    "solver_entry",
    "unregister_solver",
]
