"""Frozen run configurations: scenario + solver + knobs, hashable and JSON-safe.

A :class:`RunConfig` is the *complete* description of one experiment run:
which workload (:class:`ScenarioSpec`), which solver (a registry name), the
capacity/omega provisioning, an optional failure plan, an optional message
transport (:class:`~repro.distsim.transport.TransportSpec`), and
solver-specific parameters.  Configs are frozen, comparable, and round-trip through JSON
(:func:`RunConfig.to_json` / :func:`RunConfig.from_json`, also exposed via
:mod:`repro.io.serialize`), and :meth:`RunConfig.config_hash` gives a
stable content hash the engine uses as its cache key -- two configs with
the same hash produce byte-identical results.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import math
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.demand import DemandMap, JobSequence
from repro.distsim.failures import ChurnSpec, FailurePlan, PartitionSpec
from repro.distsim.transport import TransportSpec
from repro.grid.lattice import Point
from repro.workloads.arrivals import (
    alternating_arrivals,
    bursty_arrivals,
    random_arrivals,
    sequential_arrivals,
)

__all__ = [
    "ARRIVAL_ORDERS",
    "CapacitySpec",
    "ConfigError",
    "FailureSpec",
    "ScenarioSpec",
    "RunConfig",
    "TransportSpec",
]

#: Provisioning policy for the online family: ``"theorem"`` uses the
#: Lemma 3.3.1 budget, a float provisions that amount, ``None`` measures
#: with unbounded batteries.
CapacitySpec = Union[None, float, str]

ARRIVAL_ORDERS = ("random", "sequential", "alternating", "bursty")


class ConfigError(ValueError):
    """A run configuration failed validation."""


def _normalize_point(raw: Any) -> Point:
    if isinstance(raw, str) or not hasattr(raw, "__iter__"):
        raise ConfigError(f"not a lattice point: {raw!r}")
    point = []
    for coordinate in raw:
        if isinstance(coordinate, bool):
            raise ConfigError(f"not an integer coordinate: {coordinate!r} in {raw!r}")
        try:
            value = int(coordinate)
        except (TypeError, ValueError):
            raise ConfigError(
                f"not an integer coordinate: {coordinate!r} in {raw!r}"
            ) from None
        if value != coordinate:
            raise ConfigError(f"non-integer coordinate {coordinate!r} in {raw!r}")
        point.append(value)
    return tuple(point)


def _normalize_entries(raw: Any) -> Tuple[Tuple[Point, float], ...]:
    entries = []
    for item in raw:
        point, value = item
        value = float(value)
        if value < 0 or not math.isfinite(value):
            raise ConfigError(f"demand must be finite and non-negative, got {value}")
        entries.append((_normalize_point(point), value))
    entries.sort()
    return tuple(entries)


def _normalize_partition(raw: Any) -> PartitionSpec:
    if isinstance(raw, PartitionSpec):
        return raw
    if isinstance(raw, Mapping):
        try:
            return PartitionSpec(
                start=float(raw["start"]),
                end=float(raw["end"]),
                axis=int(raw.get("axis", 0)),
                boundary=float(raw.get("boundary", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(f"invalid partition window {raw!r}: {error}") from None
    raise ConfigError(f"not a partition window: {raw!r}")


def _normalize_churn(raw: Any) -> ChurnSpec:
    if isinstance(raw, ChurnSpec):
        return raw
    if isinstance(raw, Mapping):
        try:
            return ChurnSpec(
                time=float(raw["time"]),
                vertex=_normalize_point(raw["vertex"]),
                action=raw.get("action", "leave"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(f"invalid churn event {raw!r}: {error}") from None
    raise ConfigError(f"not a churn event: {raw!r}")


def _normalize_transport(raw: Any) -> Optional[TransportSpec]:
    if raw is None or isinstance(raw, TransportSpec):
        return raw
    try:
        if isinstance(raw, str):
            return TransportSpec(kind=raw)
        if isinstance(raw, Mapping):
            return TransportSpec.from_json(raw)
    except ValueError as error:
        raise ConfigError(str(error)) from None
    raise ConfigError(f"not a transport spec: {raw!r}")


@dataclass(frozen=True)
class FailureSpec:
    """Declarative failure injection for the online family.

    ``crashed`` vehicles are broken from the start (scenario 3): they cannot
    move, serve, or heartbeat, but their radios still relay protocol
    messages, so the monitoring loop can replace them.  ``suppressed``
    vehicles never initiate their own diffusing computations (scenario 2).
    Points name the vehicles' home vertices.

    ``partitions`` are timed network cuts and ``churn`` is a timed
    leave/join schedule (see :mod:`repro.distsim.failures`); both are
    expressed on the job clock (job ``k`` arrives at time ``k + 1``).

    ``transport`` is an adversarial delivery model
    (:class:`~repro.distsim.transport.TransportSpec`, e.g. seeded loss or
    Byzantine corruption) bundled with the rest of the failure plan --
    scenario-family failure builders use this channel.  A transport on a
    *failure-free* run belongs on :attr:`RunConfig.transport` instead.
    """

    crashed: Tuple[Point, ...] = ()
    suppressed: Tuple[Point, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    churn: Tuple[ChurnSpec, ...] = ()
    transport: Optional[TransportSpec] = None
    #: Vehicles whose *failure detector* lies (gossip monitoring): they
    #: report healthy pairs silent, suspect without evidence, and invert
    #: attestations.  The quorum masks up to ``quorum - 1`` of them.
    byzantine_watchers: Tuple[Point, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crashed", tuple(sorted(_normalize_point(p) for p in self.crashed))
        )
        object.__setattr__(
            self, "suppressed", tuple(sorted(_normalize_point(p) for p in self.suppressed))
        )
        object.__setattr__(
            self,
            "byzantine_watchers",
            tuple(sorted(_normalize_point(p) for p in self.byzantine_watchers)),
        )
        try:
            partitions = tuple(_normalize_partition(p) for p in self.partitions)
            churn = tuple(_normalize_churn(c) for c in self.churn)
        except ValueError as error:
            raise ConfigError(str(error)) from None
        object.__setattr__(
            self,
            "partitions",
            tuple(sorted(partitions, key=lambda p: (p.start, p.end, p.axis, p.boundary))),
        )
        object.__setattr__(
            self,
            "churn",
            tuple(sorted(churn, key=lambda c: (c.time, c.vertex, c.action))),
        )
        object.__setattr__(self, "transport", _normalize_transport(self.transport))

    def is_empty(self) -> bool:
        """Whether the spec injects nothing at all (every channel empty)."""
        return not (
            self.crashed
            or self.suppressed
            or self.partitions
            or self.churn
            or self.transport is not None
            or self.byzantine_watchers
        )

    def without_transport(self) -> "FailureSpec":
        """A copy with the transport channel cleared (an explicit transport
        elsewhere -- RunConfig, a CLI flag -- overrides the bundled one)."""
        return dataclasses.replace(self, transport=None)

    def to_plan(self) -> FailurePlan:
        """The network-level :class:`FailurePlan` (suppression + partitions).

        Scenario 3 crashes are fleet-level (the vehicle dies, its radio
        lives) and are applied via :func:`repro.core.online.run_online`'s
        ``dead_vehicles`` argument; churn is likewise harness-level, via
        ``run_online``'s ``churn`` argument (see :meth:`churn_events`).
        """
        plan = FailurePlan()
        for point in self.suppressed:
            plan.suppress_initiation(point)
        for window in self.partitions:
            plan.add_partition(window)
        for point in self.byzantine_watchers:
            plan.mark_byzantine_watcher(point)
        return plan

    def churn_events(self) -> Tuple[ChurnSpec, ...]:
        """The timed leave/join schedule for the run harness."""
        return self.churn

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "crashed": [list(p) for p in self.crashed],
            "suppressed": [list(p) for p in self.suppressed],
        }
        if self.partitions:
            payload["partitions"] = [
                {"start": p.start, "end": p.end, "axis": p.axis, "boundary": p.boundary}
                for p in self.partitions
            ]
        if self.churn:
            payload["churn"] = [
                {"time": c.time, "vertex": list(c.vertex), "action": c.action}
                for c in self.churn
            ]
        if self.transport is not None:
            payload["transport"] = self.transport.to_json()
        if self.byzantine_watchers:
            payload["byzantine_watchers"] = [list(p) for p in self.byzantine_watchers]
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "FailureSpec":
        return cls(
            crashed=tuple(tuple(p) for p in payload.get("crashed", ())),
            suppressed=tuple(tuple(p) for p in payload.get("suppressed", ())),
            partitions=tuple(payload.get("partitions", ())),
            churn=tuple(payload.get("churn", ())),
            transport=payload.get("transport"),
            byzantine_watchers=tuple(
                tuple(p) for p in payload.get("byzantine_watchers", ())
            ),
        )


@functools.lru_cache(maxsize=None)
def _paper_scenario_demand(name: str) -> Optional[DemandMap]:
    """Demand map of a built-in paper scenario, generated once per process.

    The paper suite includes randomized scenarios whose generation is not
    free; the engine looks named scenarios up on every run, so the suite
    must not be rebuilt per lookup.  Demand maps are immutable, so sharing
    one instance across runs is safe (paper-scenario demands are
    seed-independent: the spec's seed only shuffles arrivals).  Returns
    ``None`` for names that are not paper scenarios.
    """
    from repro.workloads.scenarios import paper_scenarios

    for scenario in paper_scenarios():
        if scenario.name == name:
            return scenario.demand
    return None


def _named_scenario_demand(name: str, seed: int = 0) -> DemandMap:
    """Demand of a paper scenario, or of a scenario family as a fallback."""
    from repro.workloads.library import available_families
    from repro.workloads.scenarios import paper_scenarios

    demand = _paper_scenario_demand(name)
    if demand is not None:
        return demand
    if name in available_families():
        return _family_demand(name, (), seed)
    known = ", ".join(
        [s.name for s in paper_scenarios()] + available_families()
    )
    raise ConfigError(f"unknown paper scenario or family {name!r}; known scenarios: {known}")


def _family_demand(
    family: str, params: Tuple[Tuple[str, Any], ...], seed: int
) -> DemandMap:
    """Demand map built by a scenario family (cached inside the library)."""
    from repro.workloads.library import UnknownFamilyError, build_family_demand

    try:
        return build_family_demand(family, dict(params), seed=seed)
    except (UnknownFamilyError, ValueError) as error:
        raise ConfigError(str(error)) from None


@dataclass(frozen=True)
class ScenarioSpec:
    """A workload: a paper scenario, a scenario family, or an inline demand.

    Three sources, in precedence order:

    * ``entries`` set -- the entries *are* the demand map and ``name`` is a
      free label;
    * ``family`` set -- the demand is built by the named scenario family
      (see :mod:`repro.workloads.library`) from ``family_params`` and the
      spec's ``seed``;
    * otherwise ``name`` is looked up among the built-in paper scenarios
      (:func:`repro.workloads.scenarios.paper_scenarios`), falling back to
      a family of that name with default parameters.

    The spec also fixes the arrival ordering and its seed, so the job
    sequence a run sees is a pure function of the spec.
    """

    name: str
    entries: Optional[Tuple[Tuple[Point, float], ...]] = None
    order: str = "random"
    seed: int = 0
    #: Lattice dimension; only needed for inline scenarios with no entries
    #: (an empty demand map cannot infer it).
    dim: Optional[int] = None
    #: Scenario family name (see :mod:`repro.workloads.library`).
    family: Optional[str] = None
    #: Family parameters, stored as a sorted tuple of pairs (hashable).
    family_params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError(f"scenario name must be a non-empty string, got {self.name!r}")
        if self.dim is not None and (not isinstance(self.dim, int) or self.dim < 1):
            raise ConfigError(f"dim must be a positive integer, got {self.dim!r}")
        if self.order not in ARRIVAL_ORDERS:
            raise ConfigError(
                f"arrival order must be one of {ARRIVAL_ORDERS}, got {self.order!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ConfigError(f"seed must be a non-negative integer, got {self.seed!r}")
        if self.entries is not None:
            object.__setattr__(self, "entries", _normalize_entries(self.entries))
        if self.family is not None and (not self.family or not isinstance(self.family, str)):
            raise ConfigError(f"family must be a non-empty string, got {self.family!r}")
        if self.entries is not None and self.family is not None:
            raise ConfigError("a scenario is either inline (entries) or family-built, not both")
        object.__setattr__(self, "family_params", _normalize_params(self.family_params))
        if self.family_params and self.family is None:
            raise ConfigError("family_params given without a family name")

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_demand(
        cls, demand: DemandMap, *, name: str = "custom", order: str = "random", seed: int = 0
    ) -> "ScenarioSpec":
        """Wrap a concrete demand map as an inline scenario."""
        return cls(
            name=name,
            entries=tuple(demand.items()),
            order=order,
            seed=seed,
            dim=demand.dim,
        )

    @classmethod
    def named(cls, name: str, *, order: str = "random", seed: int = 0) -> "ScenarioSpec":
        """Reference a built-in paper scenario or family by name (validated eagerly)."""
        spec = cls(name=name, order=order, seed=seed)
        spec.demand()  # raises ConfigError on unknown names
        return spec

    @classmethod
    def from_family(
        cls,
        family: str,
        *,
        order: Optional[str] = None,
        seed: int = 0,
        **params: Any,
    ) -> "ScenarioSpec":
        """A spec built by the named scenario family (validated eagerly).

        Unspecified parameters take the family's defaults; the family's
        preferred arrival order is used unless ``order`` is given.
        """
        from repro.workloads.library import family_spec

        try:
            return family_spec(family, seed=seed, order=order, **params)
        except (KeyError, ValueError) as error:
            raise ConfigError(str(error)) from None

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #

    def family_params_dict(self) -> Dict[str, Any]:
        """Family parameters as a plain dictionary."""
        return dict(self.family_params)

    def demand(self) -> DemandMap:
        """The demand map this spec describes."""
        if self.entries is not None:
            return DemandMap(dict(self.entries), dim=self.dim)
        if self.family is not None:
            return _family_demand(self.family, self.family_params, self.seed)
        return _named_scenario_demand(self.name, self.seed)

    def jobs(self) -> JobSequence:
        """The online job sequence: demand expanded under the spec's ordering."""
        demand = self.demand()
        if self.order == "sequential":
            return sequential_arrivals(demand)
        if self.order == "alternating":
            return alternating_arrivals(demand)
        if self.order == "bursty":
            return bursty_arrivals(demand, np.random.default_rng(self.seed))
        return random_arrivals(demand, np.random.default_rng(self.seed))

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name, "order": self.order, "seed": self.seed}
        if self.entries is not None:
            payload["entries"] = [[list(point), value] for point, value in self.entries]
        if self.dim is not None:
            payload["dim"] = self.dim
        if self.family is not None:
            payload["family"] = self.family
            payload["family_params"] = {key: value for key, value in self.family_params}
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        entries = payload.get("entries")
        return cls(
            name=payload["name"],
            entries=tuple((tuple(p), v) for p, v in entries) if entries is not None else None,
            order=payload.get("order", "random"),
            seed=payload.get("seed", 0),
            dim=payload.get("dim"),
            family=payload.get("family"),
            family_params=payload.get("family_params", ()),
        )


def _normalize_params(raw: Any) -> Tuple[Tuple[str, Any], ...]:
    if isinstance(raw, Mapping):
        items = raw.items()
    else:
        items = tuple(raw)
    normalized = []
    for key, value in items:
        if not isinstance(key, str) or not key:
            raise ConfigError(f"param keys must be non-empty strings, got {key!r}")
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            raise ConfigError(f"param {key!r} is not JSON-serializable: {value!r}") from None
        normalized.append((key, value))
    normalized.sort(key=lambda item: item[0])
    return tuple(normalized)


@dataclass(frozen=True)
class RunConfig:
    """The complete, frozen description of one experiment run."""

    #: Registry name of the solver (see :mod:`repro.api.registry`).
    solver: str
    #: The workload (demand + arrival ordering + seed).
    scenario: ScenarioSpec
    #: Capacity provisioning for the online family (see :data:`CapacitySpec`).
    capacity: CapacitySpec = "theorem"
    #: Cube-partition parameter override (``None`` = the solver's default).
    omega: Optional[float] = None
    #: Failure injection (online-broken).
    failures: Optional[FailureSpec] = None
    #: Message transport for the online family (``None`` = the historical
    #: channel).  Mutually exclusive with ``failures.transport``.
    transport: Optional[TransportSpec] = None
    #: Whether an exhausted Phase I replacement search may escalate through
    #: the cube hierarchy (cross-cube replacement; online family only).
    escalation: bool = False
    #: Heartbeat rounds the monitoring loop may spend recovering a job.
    recovery_rounds: int = 0
    #: Cube-aligned shards to partition the run into (online family only;
    #: see :mod:`repro.distsim.sharding`).  Results are byte-identical to
    #: the single-shard run by construction.
    shards: int = 1
    #: Solver-specific parameters, stored as a sorted tuple of pairs so the
    #: config stays hashable; pass a dict, it is normalized on construction.
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.solver or not isinstance(self.solver, str):
            raise ConfigError(f"solver must be a non-empty string, got {self.solver!r}")
        if not isinstance(self.scenario, ScenarioSpec):
            raise ConfigError(f"scenario must be a ScenarioSpec, got {self.scenario!r}")
        if isinstance(self.capacity, str):
            if self.capacity != "theorem":
                raise ConfigError(
                    f'capacity must be "theorem", a positive number, or None; '
                    f"got {self.capacity!r}"
                )
        elif self.capacity is not None:
            value = float(self.capacity)
            if value <= 0 or not math.isfinite(value):
                raise ConfigError(f"capacity must be positive and finite, got {value}")
            object.__setattr__(self, "capacity", value)
        if self.omega is not None:
            omega = float(self.omega)
            if omega <= 0 or not math.isfinite(omega):
                raise ConfigError(f"omega must be positive and finite, got {omega}")
            object.__setattr__(self, "omega", omega)
        if not isinstance(self.escalation, bool):
            raise ConfigError(f"escalation must be a bool, got {self.escalation!r}")
        if not isinstance(self.recovery_rounds, int) or self.recovery_rounds < 0:
            raise ConfigError(
                f"recovery_rounds must be a non-negative integer, got {self.recovery_rounds!r}"
            )
        if (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ConfigError(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        if self.failures is not None and not isinstance(self.failures, FailureSpec):
            raise ConfigError(f"failures must be a FailureSpec, got {self.failures!r}")
        object.__setattr__(self, "transport", _normalize_transport(self.transport))
        if (
            self.transport is not None
            and self.failures is not None
            and self.failures.transport is not None
        ):
            raise ConfigError(
                "transport is set both on the config and inside its failure "
                "spec; pick one place"
            )
        object.__setattr__(self, "params", _normalize_params(self.params))

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #

    def params_dict(self) -> Dict[str, Any]:
        """Solver parameters as a plain dictionary."""
        return dict(self.params)

    def param(self, key: str, default: Any = None) -> Any:
        """One solver parameter with a default."""
        return dict(self.params).get(key, default)

    def effective_transport(self) -> Optional[TransportSpec]:
        """The transport this run should use, wherever it was configured."""
        if self.transport is not None:
            return self.transport
        if self.failures is not None:
            return self.failures.transport
        return None

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy of the config with fields replaced (re-validated)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return RunConfig(**current)

    def validate(self) -> "RunConfig":
        """Full validation: field checks (done eagerly) plus registry/scenario lookups."""
        from repro.api.registry import solver_entry

        solver_entry(self.solver)  # raises UnknownSolverError
        self.scenario.demand()  # raises ConfigError on unknown names
        return self

    # ------------------------------------------------------------------ #
    # serialization and hashing
    # ------------------------------------------------------------------ #

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "type": "run_config",
            # Execution-semantics version, part of the content hash.  Bumped
            # when an unchanged config would no longer reproduce its cached
            # result -- e.g. v2: the online family's default engine flipped
            # from the lockstep rounds driver to the event driver, so
            # pre-transport disk caches must not be served for these hashes.
            "schema": 2,
            "solver": self.solver,
            "scenario": self.scenario.to_json(),
            "capacity": self.capacity,
            "omega": self.omega,
            "recovery_rounds": self.recovery_rounds,
            "params": {key: value for key, value in self.params},
        }
        # Serialize the failure spec whenever one is attached, even when all
        # of its channels are empty: dropping "empty-looking" specs made two
        # configs that differ only in FailureSpec fields canonicalize (and
        # hence hash) identically, so they collided in the engine's disk
        # cache.  ``failures=None`` keeps its historical serialized form.
        if self.failures is not None:
            payload["failures"] = self.failures.to_json()
        # Same reasoning for the transport: absent and present-but-default
        # must canonicalize differently.
        if self.transport is not None:
            payload["transport"] = self.transport.to_json()
        # Emitted only when enabled so every pre-escalation config keeps its
        # historical content hash (and hence its disk-cache entries).
        if self.escalation:
            payload["escalation"] = True
        # Same hash-preserving rule: the default shards=1 stays unserialized
        # (a sharded run produces byte-identical results, but it is still a
        # different execution plan, so shards>1 earns its own cache entry).
        if self.shards != 1:
            payload["shards"] = self.shards
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "RunConfig":
        if payload.get("type") != "run_config":
            raise ConfigError("payload is not a serialized run config")
        failures = payload.get("failures")
        return cls(
            solver=payload["solver"],
            scenario=ScenarioSpec.from_json(payload["scenario"]),
            capacity=payload.get("capacity", "theorem"),
            omega=payload.get("omega"),
            failures=FailureSpec.from_json(failures) if failures else None,
            transport=payload.get("transport"),
            escalation=payload.get("escalation", False),
            recovery_rounds=payload.get("recovery_rounds", 0),
            shards=payload.get("shards", 1),
            params=payload.get("params", ()),
        )

    def canonical_json(self) -> str:
        """Deterministic JSON text (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def config_hash(self) -> str:
        """Stable content hash -- the engine's cache key."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable identifier for progress lines and tables."""
        return f"{self.solver}/{self.scenario.name}#{self.scenario.seed}"
