"""The batch execution engine: fan configs out, cache, and summarize.

:class:`ExperimentEngine` is the one place experiments execute.  It takes a
list of :class:`~repro.api.config.RunConfig` objects and

* resolves each config's solver through the registry,
* runs them serially or over a ``concurrent.futures`` pool (threads by
  default; processes on request for CPU-bound sweeps),
* caches results keyed on the config's content hash -- in memory always,
  and as one JSON file per run when a ``cache_dir`` is given, so repeated
  sweeps are free and artifacts can be archived/diffed,
* reports progress through a callback and renders a cross-solver
  comparison table via :mod:`repro.analysis.report`.

Because every run is a pure function of its config (seeds live in the
config, never in ambient state), a sweep's results are byte-identical
regardless of worker count -- the property the CLI's ``sweep`` command and
the engine tests assert.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import Table
from repro.api.config import CapacitySpec, RunConfig, ScenarioSpec
from repro.api.registry import get_solver
from repro.api.result import RunResult
from repro.api.service import ServiceConfig, ServiceResult

__all__ = ["EngineStats", "ExperimentEngine", "config_matrix"]

PathLike = Union[str, Path]
ProgressCallback = Callable[[int, int, RunResult], None]

SUMMARY_HEADERS = (
    "solver",
    "scenario",
    "feasible",
    "omega*",
    "capacity",
    "max energy",
    "objective",
    "max/omega*",
)


def config_matrix(
    scenarios: Iterable[ScenarioSpec],
    solvers: Iterable[str],
    *,
    seeds: Iterable[int] = (0,),
    capacity: CapacitySpec = "theorem",
) -> List[RunConfig]:
    """The cross product scenario x solver x seed as a list of configs.

    The deterministic enumeration order (scenario-major, then solver, then
    seed) is part of the sweep format: results are reported in this order.
    """
    scenario_list = list(scenarios)
    solver_list = list(solvers)
    seed_list = list(seeds)
    configs = []
    for scenario, solver, seed in itertools.product(scenario_list, solver_list, seed_list):
        configs.append(
            RunConfig(
                solver=solver,
                scenario=replace(scenario, seed=seed),
                capacity=capacity,
            )
        )
    return configs


@dataclass
class EngineStats:
    """Counters the engine accumulates across ``run``/``run_many`` calls."""

    executed: int = 0
    memory_cache_hits: int = 0
    disk_cache_hits: int = 0

    @property
    def cache_hits(self) -> int:
        return self.memory_cache_hits + self.disk_cache_hits


def _solve_payload(payload: str) -> str:
    """Process-pool entrypoint: JSON config in, canonical JSON result out.

    Module-level (and string-typed) so it pickles cleanly and so the child
    process repopulates the registry by importing :mod:`repro.api`.
    """
    import repro.api  # noqa: F401 - registers the built-in solvers

    config = RunConfig.from_json(json.loads(payload))
    result = get_solver(config.solver)(config)
    result = replace(result, config_hash=config.config_hash())
    return result.canonical_json()


def _solve_service_payload(payload: str) -> str:
    """Process-pool entrypoint for service runs, mirroring :func:`_solve_payload`.

    The payload carries the serialized :class:`ServiceConfig` plus the job
    count: a service config deliberately owns no arrival ordering, so the
    engine pins the stream to the deterministic ``streaming_arrivals``
    expansion of the config's demand -- making the run, like a ``RunConfig``
    run, a pure function of the payload.
    """
    import repro.api  # noqa: F401 - registers the built-in solvers

    from repro.service import run_service
    from repro.workloads.arrivals import streaming_arrivals

    spec = json.loads(payload)
    config = ServiceConfig.from_json(spec["config"])
    jobs = streaming_arrivals(config.demand(), jobs=spec["jobs"])
    return run_service(config, jobs).canonical_json()


class ExperimentEngine:
    """Run batches of configs with caching, workers, and progress reporting."""

    def __init__(
        self,
        *,
        workers: int = 1,
        cache_dir: Optional[PathLike] = None,
        use_processes: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.workers = workers
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.use_processes = use_processes
        self.progress = progress
        self.stats = EngineStats()
        self._stats_lock = threading.Lock()
        self._memory_cache: Dict[str, RunResult] = {}
        self._service_cache: Dict[str, ServiceResult] = {}
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # caching
    # ------------------------------------------------------------------ #

    def _cache_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.json"

    def _cached(self, key: str) -> Optional[RunResult]:
        hit = self._memory_cache.get(key)
        if hit is not None:
            self.stats.memory_cache_hits += 1
            return hit
        path = self._cache_path(key)
        if path is not None and path.exists():
            result = RunResult.from_json(json.loads(path.read_text()))
            self._memory_cache[key] = result
            self.stats.disk_cache_hits += 1
            return result
        return None

    def _store(self, key: str, result: RunResult) -> None:
        self._memory_cache[key] = result
        path = self._cache_path(key)
        if path is not None:
            path.write_text(result.canonical_json())

    def clear_cache(self) -> None:
        """Drop the in-memory cache and delete on-disk cache entries."""
        self._memory_cache.clear()
        self._service_cache.clear()
        if self.cache_dir is not None:
            for path in self.cache_dir.glob("*.json"):
                path.unlink()

    @staticmethod
    def _service_key(config: ServiceConfig, jobs: int) -> str:
        """Cache key of a service run: the config hash plus the job count.

        The stream itself is pinned by the engine (``streaming_arrivals`` of
        the config's demand), so the pair fully determines the result.  The
        ``service-`` prefix keeps disk entries disjoint from RunConfig ones.
        """
        text = json.dumps(
            {"config_hash": config.config_hash(), "jobs": jobs}, sort_keys=True
        )
        return "service-" + hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _cached_service(self, key: str) -> Optional[ServiceResult]:
        hit = self._service_cache.get(key)
        if hit is not None:
            self.stats.memory_cache_hits += 1
            return hit
        path = self._cache_path(key)
        if path is not None and path.exists():
            result = ServiceResult.from_json(json.loads(path.read_text()))
            self._service_cache[key] = result
            self.stats.disk_cache_hits += 1
            return result
        return None

    def _store_service(self, key: str, result: ServiceResult) -> None:
        self._service_cache[key] = result
        path = self._cache_path(key)
        if path is not None:
            path.write_text(result.canonical_json())

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, config: RunConfig) -> RunResult:
        """Execute one config (cache-aware)."""
        config.validate()
        key = config.config_hash()
        cached = self._cached(key)
        if cached is not None:
            return cached
        result = self._execute(config, key)
        self._store(key, result)
        return result

    def _execute(self, config: RunConfig, key: str) -> RunResult:
        solver = get_solver(config.solver)
        result = replace(solver(config), config_hash=key)
        with self._stats_lock:
            self.stats.executed += 1
        return result

    def run_many(self, configs: Sequence[RunConfig]) -> List[RunResult]:
        """Execute a batch, preserving input order in the returned list.

        With ``workers == 1`` runs are strictly sequential; otherwise
        uncached configs are fanned out over the pool.  Either way the
        results (and their serialized form) are identical.
        """
        configs = list(configs)
        for config in configs:
            config.validate()
        keys = [config.config_hash() for config in configs]
        total = len(configs)
        results: List[Optional[RunResult]] = [None] * total
        done = 0

        def report(index: int, result: RunResult) -> None:
            nonlocal done
            done += 1
            if self.progress is not None:
                self.progress(done, total, result)

        # Duplicate configs in one batch are solved once: pending indices
        # are grouped by cache key, and every index of a group receives the
        # single result (the within-batch face of the caching promise).
        pending: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            cached = self._cached(key)
            if cached is not None:
                results[index] = cached
                report(index, cached)
            else:
                pending.setdefault(key, []).append(index)

        def deliver(key: str, result: RunResult) -> None:
            self._store(key, result)
            for index in pending[key]:
                results[index] = result
                report(index, result)

        if not pending:
            return [result for result in results if result is not None]

        unique = [(key, configs[indices[0]]) for key, indices in pending.items()]
        if self.workers == 1:
            for key, config in unique:
                deliver(key, self._execute(config, key))
        else:
            with self._executor() as pool:
                if self.use_processes:
                    payloads = [
                        json.dumps(config.to_json(), sort_keys=True)
                        for _, config in unique
                    ]
                    for (key, _), text in zip(unique, pool.map(_solve_payload, payloads)):
                        with self._stats_lock:
                            self.stats.executed += 1
                        deliver(key, RunResult.from_json(json.loads(text)))
                else:
                    futures = [
                        (key, pool.submit(self._execute, config, key))
                        for key, config in unique
                    ]
                    for key, future in futures:
                        deliver(key, future.result())

        return [result for result in results if result is not None]

    def _executor(self) -> Executor:
        if self.use_processes:
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers)

    # ------------------------------------------------------------------ #
    # service runs
    # ------------------------------------------------------------------ #

    def run_service(self, config: ServiceConfig, jobs: int) -> ServiceResult:
        """Execute one service config over ``jobs`` streamed arrivals (cache-aware).

        The stream is the deterministic ``streaming_arrivals`` expansion of
        the config's demand, so -- exactly like :meth:`run` -- the result is
        a pure function of ``(config, jobs)`` and caches under their key.
        """
        key = self._service_key(config, jobs)
        cached = self._cached_service(key)
        if cached is not None:
            return cached
        result = self._execute_service(config, jobs)
        self._store_service(key, result)
        return result

    def _execute_service(self, config: ServiceConfig, jobs: int) -> ServiceResult:
        # Imported lazily: the api package must stay importable without the
        # service package (the dependency arrow points service -> api).
        from repro.service import run_service
        from repro.workloads.arrivals import streaming_arrivals

        result = run_service(config, streaming_arrivals(config.demand(), jobs=jobs))
        with self._stats_lock:
            self.stats.executed += 1
        return result

    def run_service_many(
        self, items: Sequence[Tuple[ServiceConfig, int]]
    ) -> List[ServiceResult]:
        """Fan ``(config, jobs)`` service runs out exactly like :meth:`run_many`.

        Duplicates are solved once, results preserve input order, and the
        batch is byte-identical regardless of worker count or pool type --
        the same determinism contract ``RunConfig`` sweeps have.
        """
        items = list(items)
        keys = [self._service_key(config, jobs) for config, jobs in items]
        results: List[Optional[ServiceResult]] = [None] * len(items)

        pending: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            cached = self._cached_service(key)
            if cached is not None:
                results[index] = cached
            else:
                pending.setdefault(key, []).append(index)

        def deliver(key: str, result: ServiceResult) -> None:
            self._store_service(key, result)
            for index in pending[key]:
                results[index] = result

        if not pending:
            return [result for result in results if result is not None]

        unique = [(key, items[indices[0]]) for key, indices in pending.items()]
        if self.workers == 1:
            for key, (config, jobs) in unique:
                deliver(key, self._execute_service(config, jobs))
        else:
            with self._executor() as pool:
                if self.use_processes:
                    payloads = [
                        json.dumps(
                            {"config": config.to_json(), "jobs": jobs}, sort_keys=True
                        )
                        for _, (config, jobs) in unique
                    ]
                    for (key, _), text in zip(
                        unique, pool.map(_solve_service_payload, payloads)
                    ):
                        with self._stats_lock:
                            self.stats.executed += 1
                        deliver(key, ServiceResult.from_json(json.loads(text)))
                else:
                    futures = [
                        (key, pool.submit(self._execute_service, config, jobs))
                        for key, (config, jobs) in unique
                    ]
                    for key, future in futures:
                        deliver(key, future.result())

        return [result for result in results if result is not None]

    @staticmethod
    def service_results_payload(results: Iterable[ServiceResult]) -> str:
        """The deterministic artifact for a service batch (one JSON document)."""
        return json.dumps(
            {"type": "service_results", "results": [r.to_json() for r in results]},
            sort_keys=True,
            indent=2,
        )

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    @staticmethod
    def summary(results: Iterable[RunResult], *, title: str = "Experiment results") -> Table:
        """A cross-solver comparison table (one row per result)."""
        table = Table(title, list(SUMMARY_HEADERS))
        for result in results:
            table.add_row(*result.comparison_row())
        return table

    @staticmethod
    def results_payload(results: Iterable[RunResult]) -> str:
        """The deterministic sweep artifact: one JSON document for a batch."""
        return json.dumps(
            {"type": "run_results", "results": [r.to_json() for r in results]},
            sort_keys=True,
            indent=2,
        )
