"""The solver registry: one uniform calling convention for every chapter.

The thesis develops one model per chapter (offline, online, broken
vehicles, energy transfers) and the reproduction adds classical baselines;
historically each had its own ad-hoc entrypoint.  The registry wraps them
all behind a single :class:`Solver` calling convention

    solver(config: RunConfig) -> RunResult

so the :class:`~repro.api.engine.ExperimentEngine`, the CLI, benchmarks,
and examples can drive any of them interchangeably.  Solvers are
registered by name with :func:`register_solver`; the built-in set lives in
:mod:`repro.api.solvers` and is installed when :mod:`repro.api` is
imported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.api.config import RunConfig
    from repro.api.result import RunResult

__all__ = [
    "Solver",
    "SolverEntry",
    "UnknownSolverError",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "solver_entry",
    "available_solvers",
    "solver_descriptions",
]


@runtime_checkable
class Solver(Protocol):
    """Anything callable as ``solver(config) -> RunResult``."""

    def __call__(self, config: "RunConfig") -> "RunResult":  # pragma: no cover
        ...


@dataclass(frozen=True)
class SolverEntry:
    """A registered solver plus its catalogue metadata."""

    name: str
    solve: Solver
    description: str


class UnknownSolverError(KeyError):
    """Raised when a solver name is not in the registry.

    The message lists the registered names so CLI users and config authors
    see the valid choices without digging through the source.
    """

    def __init__(self, name: str, available: List[str]) -> None:
        self.name = name
        self.available = available
        super().__init__(
            f"unknown solver {name!r}; registered solvers: {', '.join(available) or '(none)'}"
        )

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


_REGISTRY: Dict[str, SolverEntry] = {}


def register_solver(
    name: str, *, description: str = "", override: bool = False
) -> Callable[[Solver], Solver]:
    """Class/function decorator registering a solver under ``name``.

    Usage::

        @register_solver("offline", description="Theorem 1.4.1 characterization")
        def solve_offline(config: RunConfig) -> RunResult:
            ...

    Re-registering an existing name is an error unless ``override=True``
    (tests use override to install probes).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"solver name must be a non-empty string, got {name!r}")

    def decorator(solve: Solver) -> Solver:
        if name in _REGISTRY and not override:
            raise ValueError(f"solver {name!r} is already registered")
        _REGISTRY[name] = SolverEntry(name=name, solve=solve, description=description)
        return solve

    return decorator


def unregister_solver(name: str) -> None:
    """Remove a solver from the registry (primarily for tests)."""
    if name not in _REGISTRY:
        raise UnknownSolverError(name, available_solvers())
    del _REGISTRY[name]


def solver_entry(name: str) -> SolverEntry:
    """The full registry entry for ``name`` (raises :class:`UnknownSolverError`)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSolverError(name, available_solvers()) from None


def get_solver(name: str) -> Solver:
    """The solver callable registered under ``name``."""
    return solver_entry(name).solve


def available_solvers() -> List[str]:
    """Registered solver names, sorted."""
    return sorted(_REGISTRY)


def solver_descriptions() -> Dict[str, str]:
    """Mapping of registered name -> one-line description (sorted by name)."""
    return {name: _REGISTRY[name].description for name in available_solvers()}
