"""The unified run record: one result shape for every solver.

:class:`RunResult` subsumes :class:`~repro.core.offline.OfflineBounds`,
:class:`~repro.core.online.OnlineResult`, and the baseline outputs.  Every
solver reports the same core quantities -- the ``omega*`` lower bound, the
capacity it provisioned/required, feasibility, and the energy counters --
so a comparison table can place, say, the Lemma 2.2.5 constructive plan
next to the online strategy and the greedy heuristic without unit
conversions.  Solver-specific counters (protocol messages, tour lengths,
transfer overheads, ...) ride along in ``extras``.

Results are frozen, comparable, and JSON round-trippable, which is what
lets the engine cache them on disk keyed by config hash and what makes
``sweep`` output byte-identical regardless of worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["RunResult"]


def _normalize_extras(raw: Any) -> Tuple[Tuple[str, Any], ...]:
    if isinstance(raw, Mapping):
        items = raw.items()
    else:
        items = tuple(raw)
    normalized = []
    for key, value in items:
        if not isinstance(key, str) or not key:
            raise ValueError(f"extras keys must be non-empty strings, got {key!r}")
        json.dumps(value)  # extras must survive the JSON round-trip
        normalized.append((key, value))
    normalized.sort(key=lambda item: item[0])
    return tuple(normalized)


@dataclass(frozen=True)
class RunResult:
    """Everything one solver run reports, in comparable units."""

    #: Registry name of the solver that produced the result.
    solver: str
    #: Scenario label (from the config's :class:`~repro.api.config.ScenarioSpec`).
    scenario: str
    #: The offline lower bound ``max_T omega_T`` (over cubes) for the demand.
    omega_star: float
    #: Capacity provisioned or required per vehicle (``None`` = unbounded).
    capacity: Optional[float]
    #: Whether the run served every job / covered every demand.
    feasible: bool
    #: Largest per-vehicle energy drawn (the min-max objective of the thesis).
    max_vehicle_energy: float
    #: Total energy spent across the fleet (travel + service + overheads).
    total_energy: float
    #: The solver's native headline number (max energy for CMVRP solvers,
    #: total route length for TSP/CVRP, transport cost for the LP).
    objective: float
    #: Unit jobs in the workload and how many were served.
    jobs_total: int
    jobs_served: int
    #: Solver-specific counters, stored sorted so results hash/compare cleanly.
    extras: Tuple[Tuple[str, Any], ...] = ()
    #: Hash of the producing config (ties cached artifacts back to configs).
    config_hash: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "extras", _normalize_extras(self.extras))

    @property
    def capacity_ratio(self) -> float:
        """``max_vehicle_energy / omega_star`` -- the constant the theorems bound."""
        if self.omega_star == 0:
            return 1.0
        return self.max_vehicle_energy / self.omega_star

    def extras_dict(self) -> Dict[str, Any]:
        """Solver-specific counters as a plain dictionary."""
        return dict(self.extras)

    def extra(self, key: str, default: Any = None) -> Any:
        """One solver-specific counter with a default."""
        return dict(self.extras).get(key, default)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_json(self) -> Dict[str, Any]:
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["extras"] = {key: value for key, value in self.extras}
        payload["type"] = "run_result"
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "RunResult":
        if payload.get("type") != "run_result":
            raise ValueError("payload is not a serialized run result")
        kwargs = {f.name: payload[f.name] for f in fields(cls) if f.name in payload}
        return cls(**kwargs)

    def canonical_json(self) -> str:
        """Deterministic JSON text (sorted keys) -- the cache/sweep format."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def comparison_row(self) -> Tuple[Any, ...]:
        """The row :meth:`ExperimentEngine.summary` prints for this result."""
        return (
            self.solver,
            self.scenario,
            "yes" if self.feasible else "NO",
            self.omega_star,
            "unbounded" if self.capacity is None else self.capacity,
            self.max_vehicle_energy,
            self.objective,
            self.capacity_ratio,
        )
