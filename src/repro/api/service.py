"""Frozen service-run configuration and result types for :mod:`repro.service`.

A :class:`ServiceConfig` is the complete, JSON-round-trippable description
of a *long-lived* service run: the demand map the fleet is provisioned
for, the protocol knobs (:class:`~repro.vehicles.fleet.FleetConfig`
overrides), failure injection, the transport, and the harness cadences
(look-ahead window, metrics window size, checkpoint cadence).  It is what
a checkpoint embeds, so ``resume(snapshot)`` can rebuild an identical
fleet without the caller re-supplying anything but the job stream.

Unlike :class:`~repro.api.config.RunConfig`, a service config does *not*
carry an arrival ordering: the jobs of a service run come from a
generator/iterator the caller owns (they may be infinite), so the config
only pins everything the *fleet side* of the run depends on.

This module deliberately does not import :mod:`repro.service` (the service
package imports these types), keeping the dependency arrow pointing one
way: ``api`` -> nothing, ``service`` -> ``api``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.config import (
    CapacitySpec,
    ConfigError,
    _normalize_churn,
    _normalize_entries,
    _normalize_partition,
    _normalize_point,
    _normalize_transport,
)
from repro.core.demand import DemandMap
from repro.distsim.failures import ChurnSpec, FailurePlan, PartitionSpec
from repro.distsim.transport import TransportSpec
from repro.grid.lattice import Point
from repro.vehicles.fleet import FleetConfig

__all__ = ["ServiceConfig", "ServiceResult"]

_FLEET_FIELDS = {f.name for f in dataclasses.fields(FleetConfig)}


def _normalize_fleet(raw: Any) -> Tuple[Tuple[str, Any], ...]:
    if isinstance(raw, FleetConfig):
        items = dataclasses.asdict(raw).items()
    elif isinstance(raw, Mapping):
        items = raw.items()
    else:
        items = tuple(raw)
    normalized = []
    for key, value in items:
        if key not in _FLEET_FIELDS:
            raise ConfigError(f"unknown FleetConfig field {key!r}")
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            raise ConfigError(f"fleet field {key!r} is not JSON-serializable") from None
        normalized.append((key, value))
    normalized.sort(key=lambda item: item[0])
    return tuple(normalized)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a long-lived service run depends on, minus the job stream."""

    #: The demand map the fleet is provisioned for, as sorted entries.
    demand_entries: Tuple[Tuple[Point, float], ...]
    #: Lattice dimension (only needed when the entries cannot infer it).
    dim: Optional[int] = None
    #: Cube-partition parameter; ``None`` = ``omega_c`` of the demand.
    omega: Optional[float] = None
    #: Capacity provisioning (same contract as :func:`repro.core.online.run_online`).
    capacity: CapacitySpec = "theorem"
    #: :class:`~repro.vehicles.fleet.FleetConfig` field overrides, stored as
    #: a sorted tuple of pairs (hashable; pass a dict or a ``FleetConfig``).
    fleet: Tuple[Tuple[str, Any], ...] = ()
    #: Heartbeat rounds the monitoring loop may spend recovering a job.
    recovery_rounds: int = 0
    #: Message transport (``None`` = the historical channel; randomized when
    #: ``seed`` is set, exactly as ``run_online(rng=...)``).
    transport: Optional[TransportSpec] = None
    #: Timed leave/join schedule, on the job clock.
    churn: Tuple[ChurnSpec, ...] = ()
    #: Vehicles broken from the start (scenario 3).
    dead_vehicles: Tuple[Point, ...] = ()
    #: Vehicles that never initiate their own computations (scenario 2).
    suppressed: Tuple[Point, ...] = ()
    #: Vehicles whose failure detector lies (gossip monitoring; see
    #: :attr:`repro.distsim.failures.FailurePlan.byzantine_watchers`).
    byzantine_watchers: Tuple[Point, ...] = ()
    #: Timed network partitions.
    partitions: Tuple[PartitionSpec, ...] = ()
    #: Seed of the run RNG (jitter transport); ``None`` = deterministic delay.
    seed: Optional[int] = None
    #: Arrivals scheduled ahead of the clock (the streaming look-ahead).
    lookahead: int = 64
    #: Jobs per metrics window.
    window_jobs: int = 1000
    #: Windows between automatic checkpoints (``None`` = never).
    checkpoint_every: Optional[int] = None
    #: Windows retained in the live-state file.
    keep_windows: int = 8
    #: Cube-aligned shards (see :mod:`repro.distsim.sharding`): the
    #: streaming harness classifies protocol traffic against the shard
    #: plan; physical results stay byte-identical to ``shards=1``.
    shards: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "demand_entries", _normalize_entries(self.demand_entries))
        if not self.demand_entries:
            raise ConfigError("a service needs a non-empty demand map")
        if self.omega is not None:
            omega = float(self.omega)
            if omega <= 0 or not math.isfinite(omega):
                raise ConfigError(f"omega must be positive and finite, got {omega}")
            object.__setattr__(self, "omega", omega)
        if isinstance(self.capacity, str):
            if self.capacity != "theorem":
                raise ConfigError(f"capacity must be \"theorem\", a number, or None")
        elif self.capacity is not None:
            value = float(self.capacity)
            if value <= 0 or not math.isfinite(value):
                raise ConfigError(f"capacity must be positive and finite, got {value}")
            object.__setattr__(self, "capacity", value)
        object.__setattr__(self, "fleet", _normalize_fleet(self.fleet))
        if not isinstance(self.recovery_rounds, int) or self.recovery_rounds < 0:
            raise ConfigError("recovery_rounds must be a non-negative integer")
        object.__setattr__(self, "transport", _normalize_transport(self.transport))
        try:
            churn = tuple(_normalize_churn(c) for c in self.churn)
            partitions = tuple(_normalize_partition(p) for p in self.partitions)
        except ValueError as error:
            raise ConfigError(str(error)) from None
        object.__setattr__(
            self, "churn", tuple(sorted(churn, key=lambda c: (c.time, c.vertex, c.action)))
        )
        object.__setattr__(
            self,
            "partitions",
            tuple(sorted(partitions, key=lambda p: (p.start, p.end, p.axis, p.boundary))),
        )
        object.__setattr__(
            self, "dead_vehicles", tuple(sorted(_normalize_point(p) for p in self.dead_vehicles))
        )
        object.__setattr__(
            self, "suppressed", tuple(sorted(_normalize_point(p) for p in self.suppressed))
        )
        object.__setattr__(
            self,
            "byzantine_watchers",
            tuple(sorted(_normalize_point(p) for p in self.byzantine_watchers)),
        )
        if self.seed is not None and (not isinstance(self.seed, int) or self.seed < 0):
            raise ConfigError(f"seed must be a non-negative integer, got {self.seed!r}")
        for name in ("lookahead", "window_jobs"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(f"{name} must be a positive integer, got {value!r}")
        if self.checkpoint_every is not None and (
            not isinstance(self.checkpoint_every, int) or self.checkpoint_every < 1
        ):
            raise ConfigError("checkpoint_every must be a positive integer or None")
        if not isinstance(self.keep_windows, int) or self.keep_windows < 1:
            raise ConfigError("keep_windows must be a positive integer")
        if (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise ConfigError(f"shards must be a positive integer, got {self.shards!r}")

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_demand(cls, demand: DemandMap, **changes: Any) -> "ServiceConfig":
        """Wrap a concrete demand map as a service config."""
        return cls(demand_entries=tuple(demand.items()), dim=demand.dim, **changes)

    def replace(self, **changes: Any) -> "ServiceConfig":
        """A copy with fields replaced (re-validated)."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return ServiceConfig(**current)

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #

    def demand(self) -> DemandMap:
        """The demand map the fleet is provisioned for."""
        return DemandMap(dict(self.demand_entries), dim=self.dim)

    def fleet_config(self) -> FleetConfig:
        """The :class:`FleetConfig` with this config's overrides applied."""
        return FleetConfig(**dict(self.fleet))

    def failure_plan(self) -> FailurePlan:
        """A fresh network-level failure plan (suppression + partitions)."""
        plan = FailurePlan()
        for point in self.suppressed:
            plan.suppress_initiation(point)
        for window in self.partitions:
            plan.add_partition(window)
        for point in self.byzantine_watchers:
            plan.mark_byzantine_watcher(point)
        return plan

    # ------------------------------------------------------------------ #
    # serialization and hashing
    # ------------------------------------------------------------------ #

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "type": "service_config",
            "schema": 1,
            "demand_entries": [[list(point), value] for point, value in self.demand_entries],
            "capacity": self.capacity,
            "omega": self.omega,
            "recovery_rounds": self.recovery_rounds,
            "seed": self.seed,
            "lookahead": self.lookahead,
            "window_jobs": self.window_jobs,
            "checkpoint_every": self.checkpoint_every,
            "keep_windows": self.keep_windows,
        }
        if self.dim is not None:
            payload["dim"] = self.dim
        if self.fleet:
            payload["fleet"] = {key: value for key, value in self.fleet}
        if self.transport is not None:
            payload["transport"] = self.transport.to_json()
        if self.churn:
            payload["churn"] = [
                {"time": c.time, "vertex": list(c.vertex), "action": c.action}
                for c in self.churn
            ]
        if self.dead_vehicles:
            payload["dead_vehicles"] = [list(p) for p in self.dead_vehicles]
        if self.suppressed:
            payload["suppressed"] = [list(p) for p in self.suppressed]
        if self.byzantine_watchers:
            payload["byzantine_watchers"] = [list(p) for p in self.byzantine_watchers]
        if self.partitions:
            payload["partitions"] = [
                {"start": p.start, "end": p.end, "axis": p.axis, "boundary": p.boundary}
                for p in self.partitions
            ]
        # Hash-preserving: the default shards=1 stays unserialized so every
        # pre-sharding config keeps its historical content hash.
        if self.shards != 1:
            payload["shards"] = self.shards
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ServiceConfig":
        if payload.get("type") != "service_config":
            raise ConfigError("payload is not a serialized service config")
        return cls(
            demand_entries=tuple((tuple(p), v) for p, v in payload["demand_entries"]),
            dim=payload.get("dim"),
            omega=payload.get("omega"),
            capacity=payload.get("capacity", "theorem"),
            fleet=payload.get("fleet", ()),
            recovery_rounds=payload.get("recovery_rounds", 0),
            transport=payload.get("transport"),
            churn=tuple(payload.get("churn", ())),
            dead_vehicles=tuple(tuple(p) for p in payload.get("dead_vehicles", ())),
            suppressed=tuple(tuple(p) for p in payload.get("suppressed", ())),
            byzantine_watchers=tuple(
                tuple(p) for p in payload.get("byzantine_watchers", ())
            ),
            partitions=tuple(payload.get("partitions", ())),
            seed=payload.get("seed"),
            lookahead=payload.get("lookahead", 64),
            window_jobs=payload.get("window_jobs", 1000),
            checkpoint_every=payload.get("checkpoint_every"),
            keep_windows=payload.get("keep_windows", 8),
            shards=payload.get("shards", 1),
        )

    def canonical_json(self) -> str:
        """Deterministic JSON text (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def config_hash(self) -> str:
        """Stable content hash of the config."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


#: Result fields covered by :meth:`ServiceResult.result_hash` -- the
#: *physical* outcome of the run.  Harness-side bookkeeping (windows
#: emitted, checkpoints written, whether the run was resumed) is excluded:
#: a resumed run must hash identically to the uninterrupted one.
_HASHED_FIELDS = (
    "jobs_total",
    "jobs_served",
    "feasible",
    "max_vehicle_energy",
    "total_travel",
    "total_service",
    "omega",
    "omega_star",
    "capacity",
    "theorem_capacity",
    "replacements",
    "searches",
    "failed_replacements",
    "messages",
    "messages_dropped",
    "messages_corrupted",
    "heartbeat_rounds",
    "escalations",
    "escalated_replacements",
    "adoptions",
    "hand_backs",
    "events_processed",
    "sim_time",
    "transport",
    "fleet_digest",
)


@dataclass
class ServiceResult:
    """Everything measured over one service run (or one resumed leg of it)."""

    #: Jobs dispatched to the fleet (arrival events that fired).
    jobs_total: int
    #: Jobs actually served.
    jobs_served: int
    #: Whether every dispatched job was served.
    feasible: bool
    max_vehicle_energy: float
    total_travel: float
    total_service: float
    omega: float
    omega_star: float
    capacity: Optional[float]
    theorem_capacity: float
    replacements: int
    searches: int
    failed_replacements: int
    messages: int
    messages_dropped: int
    messages_corrupted: int
    heartbeat_rounds: int
    escalations: int
    escalated_replacements: int
    adoptions: int
    hand_backs: int
    events_processed: int
    sim_time: float
    transport: str
    #: SHA-256 over the fleet's full physical state (energy ledgers,
    #: positions, working states) -- byte-identical iff the runs are.
    fleet_digest: str = ""
    #: Metrics windows emitted.
    windows: int = 0
    #: Checkpoints written during the run.
    checkpoints_written: int = 0
    #: Whether this run continued from a snapshot.
    resumed: bool = False
    #: Whether the run stopped early (``stop_after_checkpoints``); the
    #: physical fields then describe the state *at the stop point*.
    interrupted: bool = False
    #: Per-window rollup totals (equal to the batch counters by construction).
    rollup: Dict[str, Any] = field(default_factory=dict)
    #: Shard bookkeeping (excluded from ``result_hash`` like the other
    #: harness-side fields: an N-shard run must hash identically to the
    #: single-shard run -- that equality is the determinism contract).
    shards: int = 1
    #: Logical sends that crossed a shard boundary.
    cross_shard_messages: int = 0
    #: Lockstep window barriers the run advanced through.
    window_barriers: int = 0
    #: Failure-detection mode: ``""``, ``"ring"`` or ``"gossip"``.  New
    #: observability fields below are excluded from ``result_hash`` (the
    #: explicit ``_HASHED_FIELDS`` tuple is unchanged), so pre-gossip
    #: result hashes are untouched.
    monitoring_mode: str = ""
    #: Gossip mode: quorum collections opened.
    suspicions: int = 0
    #: Gossip mode: co-signatures granted.
    attestations: int = 0
    #: Gossip mode: attestation requests declined.
    refused_attestations: int = 0
    #: Gossip mode: suspicions raised against pairs that were alive.
    false_suspicions: int = 0
    #: Crashed pairs whose detection latency was measured.
    detections: int = 0
    #: Median detection latency in heartbeat rounds (0.0 when none).
    detection_p50: float = 0.0
    #: 99th-percentile detection latency in heartbeat rounds (0.0 when none).
    detection_p99: float = 0.0

    def result_hash(self) -> str:
        """Stable hash of the physical outcome (see ``_HASHED_FIELDS``)."""
        payload = {name: getattr(self, name) for name in _HASHED_FIELDS}
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def to_json(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["type"] = "service_result"
        payload["result_hash"] = self.result_hash()
        return payload

    def canonical_json(self) -> str:
        """Deterministic JSON text (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "ServiceResult":
        if payload.get("type") != "service_result":
            raise ConfigError("payload is not a serialized service result")
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in names})
