"""The built-in solvers: every chapter and baseline behind one interface.

Each function here adapts an existing implementation to the registry's
``solver(config) -> RunResult`` convention:

============== ==============================================================
name           wraps
============== ==============================================================
offline        Theorem 1.4.1 characterization + audited Lemma 2.2.5 plan
online         the decentralized Chapter 3 strategy (Theorem 1.4.2)
online-broken  Chapter 3 with crash/suppression injection (Section 3.2.5,
               the simulated face of Chapter 4's broken vehicles)
online-transfer Chapter 5 energy transfers: line collection schedule with
               closed-form validation, or the Theorem 5.1.1 square bound
greedy         the greedy nearest-vehicle heuristic + capacity bisection
cvrp           single-depot CVRP (Clarke--Wright / sweep / nearest-neighbor)
tsp            single-vehicle nearest-neighbor + 2-opt tour
transportation the classical transportation LP (earth mover's distance)
============== ==============================================================

Importing this module populates the registry; :mod:`repro.api` does so on
import, which is why ``from repro.api import get_solver`` always sees the
full catalogue.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.api.config import ConfigError, RunConfig
from repro.api.registry import register_solver
from repro.api.result import RunResult
from repro.baselines.cvrp import (
    CVRPInstance,
    clarke_wright,
    nearest_neighbor_routes,
    sweep_routes,
)
from repro.baselines.greedy import greedy_nearest_vehicle_plan
from repro.baselines.transportation import transportation_problem
from repro.baselines.tsp import nearest_neighbor_tour, tour_length, two_opt
from repro.core.demand import DemandMap
from repro.core.feasibility import audit_plan, minimal_feasible_capacity
from repro.core.offline import offline_bounds
from repro.core.omega import omega_star_cubes
from repro.core.online import run_online
from repro.core.transfer import (
    TransferAccounting,
    line_tank_requirement,
    simulate_line_collection,
    transfer_lower_bound,
)
from repro.grid.lattice import Point
from repro.vehicles.fleet import FleetConfig
from repro.workloads.arrivals import sequential_arrivals

__all__ = ["BUILTIN_SOLVERS"]

#: Names this module registers, in catalogue order.
BUILTIN_SOLVERS = (
    "offline",
    "online",
    "online-broken",
    "online-transfer",
    "greedy",
    "cvrp",
    "tsp",
    "transportation",
)


def _unit_job_count(demand: DemandMap) -> int:
    """Number of unit jobs the demand expands into (the online workload size)."""
    return len(sequential_arrivals(demand))


def _omega_star(demand: DemandMap) -> float:
    return 0.0 if demand.is_empty() else omega_star_cubes(demand).omega


def _empty_result(config: RunConfig) -> RunResult:
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=0.0,
        capacity=None,
        feasible=True,
        max_vehicle_energy=0.0,
        total_energy=0.0,
        objective=0.0,
        jobs_total=0,
        jobs_served=0,
    )


# --------------------------------------------------------------------------- #
# Chapter 2: offline
# --------------------------------------------------------------------------- #


@register_solver(
    "offline",
    description="Theorem 1.4.1 offline characterization with the audited Lemma 2.2.5 plan",
)
def solve_offline(config: RunConfig) -> RunResult:
    demand = config.scenario.demand()
    if demand.is_empty():
        return _empty_result(config)
    bounds = offline_bounds(demand)
    jobs = _unit_job_count(demand)
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=bounds.omega_star,
        capacity=bounds.constructive_capacity,
        feasible=True,
        max_vehicle_energy=bounds.constructive_capacity,
        total_energy=demand.total(),
        objective=bounds.constructive_capacity,
        jobs_total=jobs,
        jobs_served=jobs,
        extras={
            "omega_c": bounds.omega_c,
            "upper_bound": bounds.upper_bound,
            "sandwich_ratio": bounds.sandwich_ratio,
        },
    )


# --------------------------------------------------------------------------- #
# Chapter 3: online (and its broken-vehicle variant)
# --------------------------------------------------------------------------- #


def _run_online_family(config: RunConfig, *, broken: bool) -> RunResult:
    jobs = config.scenario.jobs()
    if len(jobs) == 0:
        return _empty_result(config)
    engine = config.param("engine", "events")
    transport = config.effective_transport()
    failure_plan = None
    dead_vehicles = None
    churn = None
    monitoring = False
    if not broken and config.failures is not None and not config.failures.is_empty():
        raise ConfigError(
            'the "online" solver ignores failure specs; use "online-broken" '
            "to run with crashed/suppressed vehicles (a bare transport "
            "belongs on RunConfig.transport)"
        )
    if broken:
        if config.failures is None or config.failures.is_empty():
            raise ConfigError(
                "the online-broken solver needs a non-empty failures spec "
                "(crashed/suppressed vehicles, partitions, or churn)"
            )
        failure_plan = config.failures.to_plan()
        dead_vehicles = config.failures.crashed
        churn = config.failures.churn_events()
        monitoring = True
    # The monitoring param overrides the solver default: "ring" is the
    # explicit spelling of the historical monitoring loop (same booleans,
    # same hashes), "gossip" opts into the epidemic detector -- on the
    # failure-free solver too, so ring/gossip equivalence is testable.
    monitoring_param = config.param("monitoring", None)
    if monitoring_param is not None:
        if monitoring_param == "ring":
            monitoring = True
        elif monitoring_param == "gossip":
            monitoring = "gossip"
        else:
            raise ConfigError(
                f"monitoring param must be 'ring' or 'gossip', got {monitoring_param!r}"
            )
    try:
        fleet_config = FleetConfig(
            monitoring=monitoring,
            escalation=config.escalation,
            gossip_fanout=config.param("gossip_fanout", 2),
            suspicion_threshold=config.param("suspicion_threshold", 2),
            quorum=config.param("quorum", 2),
        )
    except ValueError as error:
        raise ConfigError(str(error)) from None
    result = run_online(
        jobs,
        omega=config.omega,
        capacity=config.capacity,
        config=fleet_config,
        rng=np.random.default_rng(config.scenario.seed),
        failure_plan=failure_plan,
        dead_vehicles=dead_vehicles,
        recovery_rounds=config.recovery_rounds,
        churn=churn,
        engine=engine,
        transport=transport,
        shards=config.shards,
        shard_workers=config.param("shard_workers", None),
    )
    extras = {
        "theorem_capacity": result.theorem_capacity,
        "total_travel": result.total_travel,
        "total_service": result.total_service,
        "replacements": result.replacements,
        "searches": result.searches,
        "failed_replacements": result.failed_replacements,
        "messages": result.messages,
        "heartbeat_rounds": result.heartbeat_rounds,
        "engine": result.engine,
        "events_processed": result.events_processed,
        "transport": result.transport,
        "messages_dropped": result.messages_dropped,
        "messages_corrupted": result.messages_corrupted,
    }
    if config.escalation:
        extras["escalation"] = True
        extras["escalations"] = result.escalations
        extras["escalated_replacements"] = result.escalated_replacements
        extras["adoptions"] = result.adoptions
    if broken and config.failures is not None:
        extras["crashed_vehicles"] = len(config.failures.crashed)
        extras["suppressed_vehicles"] = len(config.failures.suppressed)
        extras["partition_windows"] = len(config.failures.partitions)
        extras["churn_events"] = len(config.failures.churn)
        if config.failures.byzantine_watchers:
            extras["byzantine_watchers"] = len(config.failures.byzantine_watchers)
    # Gossip-mode counters and the detection-latency digest only appear
    # when opted into (the gossip detector, or the ``detection_latency``
    # param on a ring run) -- default-config extras, and with them every
    # golden hash, are byte-identical to the pre-gossip runs.
    if result.monitoring_mode == "gossip":
        extras["monitoring_mode"] = "gossip"
        extras["suspicions"] = result.suspicions
        extras["attestations"] = result.attestations
        extras["refused_attestations"] = result.refused_attestations
        extras["false_suspicions"] = result.false_suspicions
    if result.monitoring_mode == "gossip" or config.param("detection_latency", False):
        extras["detections"] = result.detections
        extras["detection_p50"] = result.detection_p50
        extras["detection_p99"] = result.detection_p99
    if config.shards > 1:
        # Sharded runs record which execution mode actually ran (and, on a
        # lockstep fallback, the first disqualifying feature) so bench
        # numbers can't silently be misread as parallel.  Guarded behind
        # shards > 1: unsharded extras -- and their golden hashes -- are
        # untouched.
        extras["shard_mode"] = result.shard_mode
        if result.shard_mode_reason:
            extras["shard_mode_reason"] = result.shard_mode_reason
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=result.omega_star,
        capacity=result.capacity,
        feasible=result.feasible,
        max_vehicle_energy=result.max_vehicle_energy,
        total_energy=result.total_travel + result.total_service,
        objective=result.max_vehicle_energy,
        jobs_total=result.jobs_total,
        jobs_served=result.jobs_served,
        extras=extras,
    )


@register_solver(
    "online",
    description="the decentralized online strategy of Chapter 3 (Theorem 1.4.2)",
)
def solve_online(config: RunConfig) -> RunResult:
    return _run_online_family(config, broken=False)


@register_solver(
    "online-broken",
    description="the online strategy under crash/suppression injection (Section 3.2.5)",
)
def solve_online_broken(config: RunConfig) -> RunResult:
    return _run_online_family(config, broken=True)


# --------------------------------------------------------------------------- #
# Chapter 5: energy transfers
# --------------------------------------------------------------------------- #


def _collinear_axis(points: List[Point]) -> Optional[int]:
    """The axis along which all support points vary, if they are collinear."""
    if len(points) < 2:
        return None
    dim = len(points[0])
    varying = [
        axis for axis in range(dim) if len({point[axis] for point in points}) > 1
    ]
    if len(varying) == 1:
        return varying[0]
    return None


def _line_profile(demand: DemandMap, axis: int) -> List[float]:
    """Per-vertex demands along the (gap-filled) line spanned by the support."""
    support = demand.support()
    coordinates = [point[axis] for point in support]
    lo, hi = min(coordinates), max(coordinates)
    template = list(support[0])
    profile = []
    for coordinate in range(lo, hi + 1):
        template[axis] = coordinate
        profile.append(demand[tuple(template)])
    return profile


def _minimal_line_charge(
    demands: List[float], closed_form: float, accounting: TransferAccounting, a1: float, a2: float
) -> Tuple[float, object]:
    """Smallest feasible initial charge for the collection schedule.

    The closed form is exact up to the integrality of the schedule, so the
    search starts there and bisects within a small bracket.
    """

    def feasible(charge: float):
        sim = simulate_line_collection(demands, charge, accounting=accounting, a1=a1, a2=a2)
        return sim if sim.feasible else None

    hi = max(closed_form, 1e-9)
    best = feasible(hi)
    doublings = 0
    while best is None:
        hi *= 2.0
        doublings += 1
        if doublings > 60:
            raise RuntimeError("no feasible initial charge found for the line schedule")
        best = feasible(hi)
    lo = 0.0
    while hi - lo > 1e-9 * max(1.0, hi):
        mid = (lo + hi) / 2.0
        sim = feasible(mid)
        if sim is not None:
            hi, best = mid, sim
        else:
            lo = mid
    return hi, best


@register_solver(
    "online-transfer",
    description="Chapter 5 energy transfers: line collection schedule or the Theorem 5.1.1 bound",
)
def solve_online_transfer(config: RunConfig) -> RunResult:
    demand = config.scenario.demand()
    if demand.is_empty():
        return _empty_result(config)
    accounting = TransferAccounting(config.param("accounting", "fixed"))
    a1 = float(config.param("a1", 0.0))
    a2 = float(config.param("a2", 0.0))
    jobs = _unit_job_count(demand)
    omega_star = _omega_star(demand)
    axis = _collinear_axis(demand.support())
    if axis is not None:
        # Section 5.2.1: large tanks on a line -- execute the collection
        # schedule and validate the closed form.
        profile = _line_profile(demand, axis)
        closed_form = line_tank_requirement(profile, accounting=accounting, a1=a1, a2=a2)
        charge, sim = _minimal_line_charge(profile, closed_form, accounting, a1, a2)
        return RunResult(
            solver=config.solver,
            scenario=config.scenario.name,
            omega_star=omega_star,
            capacity=charge,
            feasible=sim.feasible,
            max_vehicle_energy=charge,
            total_energy=charge * len(profile),
            objective=charge,
            jobs_total=jobs,
            jobs_served=jobs if sim.feasible else 0,
            extras={
                "mode": "line-tanks",
                "accounting": accounting.value,
                "closed_form_requirement": closed_form,
                "transfers": sim.transfers,
                "collector_distance": sim.distance,
                "transfer_overhead": sim.transfer_overhead,
            },
        )
    # General planar demand: the Theorem 5.1.1 transfer-aware lower bound.
    bound = transfer_lower_bound(demand)
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=omega_star,
        capacity=bound,
        feasible=True,
        max_vehicle_energy=bound,
        total_energy=demand.total(),
        objective=bound,
        jobs_total=jobs,
        jobs_served=jobs,
        extras={
            "mode": "square-bound",
            "transfer_vs_omega_star": bound / omega_star if omega_star else 1.0,
        },
    )


# --------------------------------------------------------------------------- #
# Baselines
# --------------------------------------------------------------------------- #


@register_solver(
    "greedy",
    description="greedy nearest-vehicle heuristic with capacity bisection (empirical W_off)",
)
def solve_greedy(config: RunConfig) -> RunResult:
    demand = config.scenario.demand()
    if demand.is_empty():
        return _empty_result(config)
    tolerance = float(config.param("tolerance", 1e-3))
    capacity, plan = minimal_feasible_capacity(
        demand,
        lambda w: greedy_nearest_vehicle_plan(demand, w),
        tolerance=tolerance,
    )
    audit = audit_plan(plan, demand, capacity=capacity)
    jobs = _unit_job_count(demand)
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=_omega_star(demand),
        capacity=capacity,
        feasible=audit.feasible,
        max_vehicle_energy=audit.max_vehicle_energy,
        total_energy=audit.total_energy,
        objective=audit.max_vehicle_energy,
        jobs_total=jobs,
        jobs_served=jobs if audit.feasible else 0,
        extras={"vehicles_used": len(plan), "bisection_tolerance": tolerance},
    )


_CVRP_HEURISTICS = {
    "clarke-wright": clarke_wright,
    "sweep": sweep_routes,
    "nearest-neighbor": nearest_neighbor_routes,
}


@register_solver(
    "cvrp",
    description="classical single-depot CVRP (Clarke--Wright / sweep / nearest-neighbor)",
)
def solve_cvrp(config: RunConfig) -> RunResult:
    demand = config.scenario.demand()
    if demand.is_empty():
        return _empty_result(config)
    heuristic_name = config.param("heuristic", "clarke-wright")
    if heuristic_name not in _CVRP_HEURISTICS:
        raise ConfigError(
            f"unknown CVRP heuristic {heuristic_name!r}; "
            f"choose from {sorted(_CVRP_HEURISTICS)}"
        )
    vehicle_capacity = float(
        config.param("vehicle_capacity", max(2.0 * demand.max_demand(), 10.0))
    )
    instance = CVRPInstance.from_demand_map(demand, capacity=vehicle_capacity)
    solution = _CVRP_HEURISTICS[heuristic_name](instance)
    jobs = _unit_job_count(demand)
    feasible = solution.is_feasible()
    total_length = solution.total_length()
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=_omega_star(demand),
        capacity=vehicle_capacity,
        feasible=feasible,
        max_vehicle_energy=solution.max_route_energy(),
        total_energy=total_length + demand.total(),
        objective=total_length,
        jobs_total=jobs,
        jobs_served=jobs if feasible else 0,
        extras={
            "heuristic": heuristic_name,
            "routes": len(solution.routes) + len(instance.full_load_stops),
            "depot": list(instance.depot),
        },
    )


@register_solver(
    "tsp",
    description="single-vehicle nearest-neighbor + 2-opt tour over the demand support",
)
def solve_tsp(config: RunConfig) -> RunResult:
    demand = config.scenario.demand()
    if demand.is_empty():
        return _empty_result(config)
    tour = two_opt(nearest_neighbor_tour(demand.support()))
    length = tour_length(tour, closed=True)
    jobs = _unit_job_count(demand)
    # A single vehicle walks the tour and performs every unit of service.
    single_vehicle_energy = length + demand.total()
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=_omega_star(demand),
        capacity=single_vehicle_energy,
        feasible=True,
        max_vehicle_energy=single_vehicle_energy,
        total_energy=single_vehicle_energy,
        objective=length,
        jobs_total=jobs,
        jobs_served=jobs,
        extras={"tour_stops": len(tour)},
    )


@register_solver(
    "transportation",
    description="the classical transportation LP (earth mover's distance) against the demand",
)
def solve_transportation(config: RunConfig) -> RunResult:
    demand = config.scenario.demand()
    if demand.is_empty():
        return _empty_result(config)
    supply_mode = config.param("supply", "center")
    total = demand.total()
    if supply_mode == "center":
        center = demand.bounding_box().center()
        supplies = {tuple(center): total}
    elif supply_mode == "uniform":
        box = demand.bounding_box()
        per_vertex = total / box.size
        supplies = {point: per_vertex for point in box.points()}
    else:
        raise ConfigError(
            f'unknown supply mode {supply_mode!r}; choose "center" or "uniform"'
        )
    result = transportation_problem(supplies, demand.as_dict())
    jobs = _unit_job_count(demand)
    mean_distance = result.cost / total if total else 0.0
    return RunResult(
        solver=config.solver,
        scenario=config.scenario.name,
        omega_star=_omega_star(demand),
        capacity=None,
        feasible=True,
        max_vehicle_energy=result.cost,
        total_energy=result.cost + total,
        objective=result.cost,
        jobs_total=jobs,
        jobs_served=jobs,
        extras={
            "supply_mode": supply_mode,
            "mean_transport_distance": mean_distance,
            "active_flows": len(result.flows),
        },
    )
