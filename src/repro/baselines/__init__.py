"""Classical baselines reviewed in Chapter 1 of the thesis.

The thesis positions the CMVRP against the classical vehicle-routing
literature: the original VRP/TSP, the Capacitated VRP served from a central
depot, and the Transportation Problem (earth mover's distance).  These
baselines are implemented here both to reproduce that review concretely and
to contrast objectives in benchmark E13: classical CVRP minimizes *total
route length from one depot*, whereas the CMVRP minimizes the *maximum
per-vehicle energy* with vehicles everywhere.

* :mod:`repro.baselines.tsp` -- nearest-neighbor and 2-opt tours.
* :mod:`repro.baselines.cvrp` -- Clarke--Wright savings, sweep, and
  nearest-neighbor route construction for single-depot CVRP.
* :mod:`repro.baselines.transportation` -- the classical transportation LP.
* :mod:`repro.baselines.greedy` -- a greedy nearest-vehicle CMVRP heuristic
  used as an empirical upper bound on ``W_off``.
"""

from repro.baselines.tsp import nearest_neighbor_tour, tour_length, two_opt
from repro.baselines.cvrp import (
    CVRPInstance,
    CVRPSolution,
    clarke_wright,
    nearest_neighbor_routes,
    sweep_routes,
)
from repro.baselines.transportation import transportation_problem
from repro.baselines.greedy import greedy_nearest_vehicle_plan

__all__ = [
    "nearest_neighbor_tour",
    "two_opt",
    "tour_length",
    "CVRPInstance",
    "CVRPSolution",
    "clarke_wright",
    "sweep_routes",
    "nearest_neighbor_routes",
    "transportation_problem",
    "greedy_nearest_vehicle_plan",
]
