"""Single-depot Capacitated VRP baselines (Clarke--Wright, sweep, NN).

The classical CVRP dispatches a fleet from one central depot; every vehicle
has the same *service* capacity and the objective is the total length of
all routes.  This is the model the thesis contrasts with: CMVRP has a
vehicle (and depot) at every vertex, an energy budget that covers travel
*and* service, and a min-max objective.  Benchmark E13 converts CMVRP
workloads into CVRP instances and reports both objectives side by side.

Implemented heuristics (all standard, all deterministic):

* :func:`clarke_wright` -- the savings algorithm of Clarke and Wright
  (reference [4] of the thesis).
* :func:`sweep_routes` -- the sweep heuristic of Gillett and Miller
  (reference [9]): sort customers by polar angle around the depot, cut the
  circle into capacity-feasible sectors, order each sector with 2-opt.
* :func:`nearest_neighbor_routes` -- repeatedly send a vehicle to the
  nearest unserved customer until its capacity is exhausted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.baselines.tsp import tour_length, two_opt
from repro.core.demand import DemandMap
from repro.grid.lattice import Point, manhattan

__all__ = [
    "CVRPInstance",
    "CVRPSolution",
    "clarke_wright",
    "sweep_routes",
    "nearest_neighbor_routes",
]


@dataclass(frozen=True)
class CVRPInstance:
    """A single-depot CVRP instance under the Manhattan metric."""

    depot: Point
    demands: Dict[Point, float]
    capacity: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "depot", tuple(int(c) for c in self.depot))
        cleaned = {}
        for point, value in self.demands.items():
            value = float(value)
            if value < 0:
                raise ValueError(f"negative demand {value} at {point}")
            if value > self.capacity:
                raise ValueError(
                    f"demand {value} at {point} exceeds the vehicle capacity "
                    f"{self.capacity}; classical CVRP forbids split deliveries"
                )
            if value > 0:
                cleaned[tuple(int(c) for c in point)] = value
        object.__setattr__(self, "demands", cleaned)
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")

    @staticmethod
    def from_demand_map(
        demand: DemandMap, *, capacity: float, depot: Sequence[int] | None = None
    ) -> "CVRPInstance":
        """Derive a CVRP instance from a CMVRP demand map.

        The depot defaults to the center of the demand's bounding box --
        the classical "central depot" the thesis contrasts with.  Demands
        larger than the capacity are split into full loads plus a remainder
        (the standard preprocessing for unsplittable CVRP).
        """
        if demand.is_empty():
            raise ValueError("cannot build a CVRP instance from empty demand")
        if depot is None:
            depot = demand.bounding_box().center()
        demands: Dict[Point, float] = {}
        extra_full_loads: List[Point] = []
        for point, value in demand.items():
            while value > capacity:
                extra_full_loads.append(point)
                value -= capacity
            if value > 0:
                demands[point] = demands.get(point, 0.0) + value
        instance = CVRPInstance(tuple(depot), demands, capacity)
        if extra_full_loads:
            # Full loads become dedicated out-and-back routes; record them so
            # solvers can account for their cost uniformly.
            object.__setattr__(instance, "_full_load_stops", tuple(extra_full_loads))
        return instance

    @property
    def full_load_stops(self) -> Tuple[Point, ...]:
        """Customers requiring dedicated full-capacity round trips."""
        return getattr(self, "_full_load_stops", ())

    def customers(self) -> List[Point]:
        """Customer positions in deterministic order."""
        return sorted(self.demands)

    def distance(self, a: Sequence[int], b: Sequence[int]) -> float:
        """Manhattan distance between two positions."""
        return float(manhattan(a, b))


@dataclass
class CVRPSolution:
    """A set of depot-rooted routes."""

    instance: CVRPInstance
    routes: List[List[Point]] = field(default_factory=list)

    def route_load(self, route: Sequence[Point]) -> float:
        """Total demand served by one route."""
        return sum(self.instance.demands.get(stop, 0.0) for stop in route)

    def route_length(self, route: Sequence[Point]) -> float:
        """Length of depot -> stops -> depot."""
        if not route:
            return 0.0
        path = [self.instance.depot, *route, self.instance.depot]
        return tour_length(path, closed=False)

    def total_length(self) -> float:
        """The classical CVRP objective: summed route length."""
        total = sum(self.route_length(route) for route in self.routes)
        # Dedicated full-load round trips (from demand splitting).
        for stop in self.instance.full_load_stops:
            total += 2 * self.instance.distance(self.instance.depot, stop)
        return total

    def max_route_energy(self) -> float:
        """The CMVRP-style objective: the largest travel+service of one route."""
        best = 0.0
        for route in self.routes:
            energy = self.route_length(route) + self.route_load(route)
            best = max(best, energy)
        for stop in self.instance.full_load_stops:
            energy = 2 * self.instance.distance(self.instance.depot, stop) + self.instance.capacity
            best = max(best, energy)
        return best

    def is_feasible(self) -> bool:
        """Every customer served exactly once, every route within capacity."""
        seen: Dict[Point, int] = {}
        for route in self.routes:
            if self.route_load(route) > self.instance.capacity + 1e-9:
                return False
            for stop in route:
                seen[stop] = seen.get(stop, 0) + 1
        return all(seen.get(c, 0) == 1 for c in self.instance.customers())


def clarke_wright(instance: CVRPInstance) -> CVRPSolution:
    """The Clarke--Wright parallel savings algorithm.

    Start with one out-and-back route per customer; repeatedly merge the two
    routes whose endpoints give the largest positive saving
    ``s(i, j) = d(depot, i) + d(depot, j) - d(i, j)``, subject to capacity,
    until no merge is possible.
    """
    customers = instance.customers()
    depot = instance.depot
    routes: Dict[int, List[Point]] = {k: [c] for k, c in enumerate(customers)}
    route_of: Dict[Point, int] = {c: k for k, c in enumerate(customers)}
    loads: Dict[int, float] = {
        k: instance.demands[c] for k, c in enumerate(customers)
    }

    savings: List[Tuple[float, Point, Point]] = []
    for i, a in enumerate(customers):
        for b in customers[i + 1 :]:
            saving = (
                instance.distance(depot, a)
                + instance.distance(depot, b)
                - instance.distance(a, b)
            )
            if saving > 1e-12:
                savings.append((saving, a, b))
    savings.sort(key=lambda item: (-item[0], item[1], item[2]))

    for saving, a, b in savings:
        ra, rb = route_of[a], route_of[b]
        if ra == rb:
            continue
        route_a, route_b = routes[ra], routes[rb]
        if loads[ra] + loads[rb] > instance.capacity + 1e-9:
            continue
        # Merging is only allowed end-to-end: ``a`` must be at a boundary of
        # its route and ``b`` at a boundary of its route.
        if route_a[-1] == a and route_b[0] == b:
            merged = route_a + route_b
        elif route_b[-1] == b and route_a[0] == a:
            merged = route_b + route_a
        elif route_a[0] == a and route_b[0] == b:
            merged = list(reversed(route_a)) + route_b
        elif route_a[-1] == a and route_b[-1] == b:
            merged = route_a + list(reversed(route_b))
        else:
            continue
        routes[ra] = merged
        loads[ra] += loads[rb]
        del routes[rb]
        del loads[rb]
        for stop in merged:
            route_of[stop] = ra

    return CVRPSolution(instance, [routes[k] for k in sorted(routes)])


def sweep_routes(instance: CVRPInstance) -> CVRPSolution:
    """The sweep heuristic (two-dimensional instances only)."""
    customers = instance.customers()
    if customers and len(customers[0]) != 2:
        raise ValueError("the sweep heuristic is defined for planar instances")
    depot = instance.depot

    def angle(point: Point) -> float:
        return math.atan2(point[1] - depot[1], point[0] - depot[0])

    ordered = sorted(customers, key=lambda p: (angle(p), manhattan(depot, p), p))
    routes: List[List[Point]] = []
    current: List[Point] = []
    load = 0.0
    for customer in ordered:
        demand = instance.demands[customer]
        if current and load + demand > instance.capacity + 1e-9:
            routes.append(current)
            current, load = [], 0.0
        current.append(customer)
        load += demand
    if current:
        routes.append(current)
    improved = [
        _order_route(instance, route) for route in routes
    ]
    return CVRPSolution(instance, improved)


def nearest_neighbor_routes(instance: CVRPInstance) -> CVRPSolution:
    """Send vehicles to the nearest unserved customer until capacity runs out."""
    unserved = set(instance.customers())
    routes: List[List[Point]] = []
    while unserved:
        position = instance.depot
        load = 0.0
        route: List[Point] = []
        while True:
            candidates = [
                c
                for c in sorted(unserved)
                if load + instance.demands[c] <= instance.capacity + 1e-9
            ]
            if not candidates:
                break
            nxt = min(candidates, key=lambda c: (manhattan(position, c), c))
            route.append(nxt)
            unserved.remove(nxt)
            load += instance.demands[nxt]
            position = nxt
        if not route:
            raise RuntimeError("no customer fits the capacity (should be impossible)")
        routes.append(route)
    return CVRPSolution(instance, routes)


def _order_route(instance: CVRPInstance, route: List[Point]) -> List[Point]:
    """Order the stops of one route with 2-opt (keeping the depot implicit)."""
    if len(route) <= 2:
        return route
    closed = two_opt([instance.depot, *route])
    # Rotate so the depot is first, then drop it.
    depot_index = closed.index(instance.depot)
    rotated = closed[depot_index:] + closed[:depot_index]
    return rotated[1:]
