"""A greedy nearest-vehicle heuristic for the CMVRP itself.

Given a capacity ``W`` the heuristic assigns demand to vehicles greedily:
each demand point repeatedly pulls energy from the nearest vehicle that can
still reach it and has budget left (travel from the vehicle's *current*
position plus the served amount must fit in ``W``).  The result is a
:class:`~repro.core.plan.ServicePlan` that can be audited like any other,
so the heuristic doubles as a capacity-parameterized plan builder for
:func:`repro.core.feasibility.minimal_feasible_capacity`: bisecting over
``W`` yields an independent empirical upper bound on ``W_off`` to place
next to the ``omega*`` lower bound and the Lemma 2.2.5 construction.

The vehicle-selection scan is vectorized: per pull, walk distances and
remaining budgets for *all* vehicles are computed as numpy arrays and the
winner is picked with one ``lexsort`` over ``(walk, -available, home)`` --
the same tie-breaking the original per-vehicle Python loop used, at a
fraction of the cost on the neighborhood-sized fleets the scale-up
scenarios produce.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.demand import DemandMap
from repro.core.plan import ServicePlan, VehicleRoute
from repro.grid.lattice import Point
from repro.grid.regions import neighborhood

__all__ = ["greedy_nearest_vehicle_plan"]

#: Budget slack below which a vehicle is considered exhausted.
_EPS = 1e-9


def greedy_nearest_vehicle_plan(
    demand: DemandMap,
    capacity: float,
    *,
    search_radius: Optional[int] = None,
) -> ServicePlan:
    """Build a greedy plan for capacity ``W = capacity``.

    Vehicles exist at every lattice point within ``search_radius`` of the
    demand support (default: ``ceil(capacity)``, since a vehicle further
    away could never arrive with energy to spare).  Demand points are
    processed in decreasing demand order; each repeatedly takes as much as
    possible from the nearest vehicle with remaining budget.  The produced
    plan may be infeasible (some demand unserved) when the capacity is too
    small -- the audit reports that, which is exactly what the bisection in
    ``minimal_feasible_capacity`` needs.
    """
    dim = demand.dim
    plan = ServicePlan(dim=dim, metadata={"capacity": float(capacity), "heuristic": 1.0})
    if demand.is_empty():
        return plan
    if capacity <= 0:
        return plan
    radius = search_radius if search_radius is not None else int(math.ceil(capacity))
    support = demand.support()
    vehicle_homes = sorted(neighborhood(support, radius))
    count = len(vehicle_homes)

    # Mutable per-vehicle state as dense arrays: remaining budget, current
    # position, and the home coordinates (the deterministic tie-breaker).
    homes = np.array(vehicle_homes, dtype=np.int64)
    budget = np.full(count, float(capacity), dtype=np.float64)
    position = homes.astype(np.float64).copy()
    stops: List[List[Tuple[Point, float]]] = [[] for _ in range(count)]

    order = sorted(demand.items(), key=lambda item: (-item[1], item[0]))
    for target, required in order:
        target_arr = np.array(target, dtype=np.float64)
        remaining = float(required)
        while remaining > _EPS:
            walk = np.abs(position - target_arr).sum(axis=1)
            available = budget - walk
            candidates = np.flatnonzero((budget > _EPS) & (available > _EPS))
            if candidates.size == 0:
                break  # capacity too small; leave the remainder unserved
            # Minimize walk, then maximize available energy, then break ties
            # by lexicographically smallest home vertex -- identical to the
            # scalar loop's ``(walk, -available, vehicle)`` key.
            keys = (
                tuple(homes[candidates, axis] for axis in reversed(range(dim)))
                + (-available[candidates], walk[candidates])
            )
            best = int(candidates[np.lexsort(keys)[0]])
            serve = min(remaining, float(available[best]))
            budget[best] -= float(walk[best]) + serve
            position[best] = target_arr
            stops[best].append((target, serve))
            remaining -= serve

    for index in range(count):
        if stops[index]:
            plan.add(VehicleRoute(start=vehicle_homes[index], stops=tuple(stops[index])))
    return plan
