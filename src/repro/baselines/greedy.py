"""A greedy nearest-vehicle heuristic for the CMVRP itself.

Given a capacity ``W`` the heuristic assigns demand to vehicles greedily:
each demand point repeatedly pulls energy from the nearest vehicle that can
still reach it and has budget left (travel from the vehicle's *current*
position plus the served amount must fit in ``W``).  The result is a
:class:`~repro.core.plan.ServicePlan` that can be audited like any other,
so the heuristic doubles as a capacity-parameterized plan builder for
:func:`repro.core.feasibility.minimal_feasible_capacity`: bisecting over
``W`` yields an independent empirical upper bound on ``W_off`` to place
next to the ``omega*`` lower bound and the Lemma 2.2.5 construction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.demand import DemandMap
from repro.core.plan import ServicePlan, VehicleRoute
from repro.grid.lattice import Point, manhattan
from repro.grid.regions import neighborhood

__all__ = ["greedy_nearest_vehicle_plan"]


def greedy_nearest_vehicle_plan(
    demand: DemandMap,
    capacity: float,
    *,
    search_radius: Optional[int] = None,
) -> ServicePlan:
    """Build a greedy plan for capacity ``W = capacity``.

    Vehicles exist at every lattice point within ``search_radius`` of the
    demand support (default: ``ceil(capacity)``, since a vehicle further
    away could never arrive with energy to spare).  Demand points are
    processed in decreasing demand order; each repeatedly takes as much as
    possible from the nearest vehicle with remaining budget.  The produced
    plan may be infeasible (some demand unserved) when the capacity is too
    small -- the audit reports that, which is exactly what the bisection in
    ``minimal_feasible_capacity`` needs.
    """
    dim = demand.dim
    plan = ServicePlan(dim=dim, metadata={"capacity": float(capacity), "heuristic": 1.0})
    if demand.is_empty():
        return plan
    if capacity <= 0:
        return plan
    radius = search_radius if search_radius is not None else int(math.ceil(capacity))
    support = demand.support()
    vehicle_positions = sorted(neighborhood(support, radius))

    # Mutable per-vehicle state: remaining budget, current position, stops.
    budget: Dict[Point, float] = {v: float(capacity) for v in vehicle_positions}
    position: Dict[Point, Point] = {v: v for v in vehicle_positions}
    stops: Dict[Point, List[Tuple[Point, float]]] = {v: [] for v in vehicle_positions}

    order = sorted(demand.items(), key=lambda item: (-item[1], item[0]))
    for target, required in order:
        remaining = float(required)
        while remaining > 1e-9:
            best_vehicle: Optional[Point] = None
            best_key: Optional[Tuple[float, float, Point]] = None
            for vehicle in vehicle_positions:
                if budget[vehicle] <= 1e-9:
                    continue
                walk = manhattan(position[vehicle], target)
                available = budget[vehicle] - walk
                if available <= 1e-9:
                    continue
                key = (float(walk), -available, vehicle)
                if best_key is None or key < best_key:
                    best_key = key
                    best_vehicle = vehicle
            if best_vehicle is None:
                break  # capacity too small; leave the remainder unserved
            walk = manhattan(position[best_vehicle], target)
            serve = min(remaining, budget[best_vehicle] - walk)
            budget[best_vehicle] -= walk + serve
            position[best_vehicle] = target
            stops[best_vehicle].append((target, serve))
            remaining -= serve

    for vehicle in vehicle_positions:
        if stops[vehicle]:
            plan.add(VehicleRoute(start=vehicle, stops=tuple(stops[vehicle])))
    return plan
