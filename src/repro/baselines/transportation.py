"""The classical Transportation Problem (earth mover's distance).

Section 2.2 carefully distinguishes the supply LP (2.1) from the classical
Transportation Problem: there, both supply and demand distributions are
known and the objective is the minimal transport *cost* (the earth mover's
distance); in the thesis the supply is part of the unknowns and the
transport distance is bounded.  Implementing the classical problem lets the
tests and benchmark E13 show that distinction numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.grid.lattice import Point, manhattan

__all__ = ["TransportationResult", "transportation_problem"]


@dataclass(frozen=True)
class TransportationResult:
    """Optimal transport between a supply and a demand distribution."""

    cost: float
    flows: Dict[Tuple[Point, Point], float]


def transportation_problem(
    supplies: Mapping[Sequence[int], float],
    demands: Mapping[Sequence[int], float],
) -> TransportationResult:
    """Solve the balanced transportation problem under the Manhattan metric.

    ``supplies`` and ``demands`` map positions to non-negative amounts; the
    totals must match (the balanced case the earth mover's distance assumes).
    Returns the minimal total ``flow * distance`` cost and the optimal flows.
    """
    supply_points = [tuple(int(c) for c in p) for p in supplies]
    demand_points = [tuple(int(c) for c in p) for p in demands]
    supply_values = np.array([float(supplies[p]) for p in supplies], dtype=float)
    demand_values = np.array([float(demands[p]) for p in demands], dtype=float)
    if (supply_values < 0).any() or (demand_values < 0).any():
        raise ValueError("supplies and demands must be non-negative")
    if abs(supply_values.sum() - demand_values.sum()) > 1e-9 * max(1.0, supply_values.sum()):
        raise ValueError(
            "unbalanced instance: total supply "
            f"{supply_values.sum():g} != total demand {demand_values.sum():g}"
        )
    if not supply_points or not demand_points:
        return TransportationResult(0.0, {})

    num_s, num_d = len(supply_points), len(demand_points)
    costs = np.zeros(num_s * num_d)
    for i, s in enumerate(supply_points):
        for j, d in enumerate(demand_points):
            costs[i * num_d + j] = manhattan(s, d)

    # Equality constraints: each supply fully shipped, each demand fully met.
    a_eq = np.zeros((num_s + num_d, num_s * num_d))
    b_eq = np.concatenate([supply_values, demand_values])
    for i in range(num_s):
        for j in range(num_d):
            a_eq[i, i * num_d + j] = 1.0
            a_eq[num_s + j, i * num_d + j] = 1.0

    result = linprog(
        costs,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * (num_s * num_d),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"transportation LP failed: {result.message}")
    flows: Dict[Tuple[Point, Point], float] = {}
    for i, s in enumerate(supply_points):
        for j, d in enumerate(demand_points):
            value = float(result.x[i * num_d + j])
            if value > 1e-12:
                flows[(s, d)] = value
    return TransportationResult(float(result.fun), flows)
