"""Traveling Salesman baselines (nearest neighbor, 2-opt).

The thesis's review notes that the original VRP degenerates to the TSP when
the objective becomes total distance.  These heuristics operate on arbitrary
point lists under the Manhattan metric (the metric of the whole
reproduction) and are used by the CVRP baselines to order customers within
a route and by benchmark E13 as the single-vehicle reference.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.grid.lattice import Point, manhattan

__all__ = ["tour_length", "nearest_neighbor_tour", "two_opt"]


def tour_length(tour: Sequence[Sequence[int]], *, closed: bool = True) -> float:
    """Total Manhattan length of a tour (closed by default)."""
    if len(tour) < 2:
        return 0.0
    total = 0.0
    for a, b in zip(tour, tour[1:]):
        total += manhattan(a, b)
    if closed:
        total += manhattan(tour[-1], tour[0])
    return float(total)


def nearest_neighbor_tour(
    points: Sequence[Sequence[int]],
    *,
    start: Optional[Sequence[int]] = None,
) -> List[Point]:
    """Greedy nearest-neighbor tour over ``points``.

    Ties are broken lexicographically so the tour is deterministic.
    """
    remaining = [tuple(int(c) for c in p) for p in points]
    if not remaining:
        return []
    if start is None:
        current = min(remaining)
    else:
        current = tuple(int(c) for c in start)
        if current not in remaining:
            raise ValueError("start must be one of the points")
    tour = [current]
    remaining.remove(current)
    while remaining:
        nxt = min(remaining, key=lambda p: (manhattan(current, p), p))
        tour.append(nxt)
        remaining.remove(nxt)
        current = nxt
    return tour


def two_opt(tour: Sequence[Sequence[int]], *, max_rounds: int = 50) -> List[Point]:
    """Improve a closed tour with 2-opt moves until no improvement is found.

    A 2-opt move reverses a segment of the tour; it is accepted whenever it
    strictly shortens the closed tour.  The procedure terminates because the
    length strictly decreases, and ``max_rounds`` bounds the work.
    """
    route = [tuple(int(c) for c in p) for p in tour]
    n = len(route)
    if n < 4:
        return route
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue  # reversing the full cycle changes nothing
                a, b = route[i], route[i + 1]
                c, d = route[j], route[(j + 1) % n]
                delta = (
                    manhattan(a, c) + manhattan(b, d) - manhattan(a, b) - manhattan(c, d)
                )
                if delta < -1e-12:
                    route[i + 1 : j + 1] = reversed(route[i + 1 : j + 1])
                    improved = True
        if not improved:
            break
    return route
