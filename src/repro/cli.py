"""Command-line interface for the CMVRP reproduction.

Every subcommand is a thin layer over :mod:`repro.api`: configs are built
from the flags, executed by the :class:`~repro.api.engine.ExperimentEngine`,
and rendered with :mod:`repro.analysis.report`.

``python -m repro scenarios``
    List the built-in paper scenarios with their parameters.

``python -m repro solvers``
    List the registered solvers (the names ``run``/``sweep``/``compare``
    accept) with one-line descriptions.

``python -m repro run --scenario square --solver online --seed 7``
    Execute one solver on one workload and print the unified result
    record.  ``--param key=value`` passes solver-specific parameters
    (e.g. ``--param heuristic=sweep`` for ``cvrp``), ``--crash x,y`` /
    ``--suppress x,y`` / ``--recovery-rounds n`` inject Section 3.2.5
    failures for the ``online-broken`` solver, ``--json path`` archives
    the :class:`~repro.api.result.RunResult`, and the exit code reflects
    feasibility.

``python -m repro sweep --scenarios square,line --solvers offline,greedy
--seeds 0,1,2 --workers 4 --out results.json``
    Fan the scenario x solver x seed matrix out over the engine's worker
    pool.  Results are deterministic -- the artifact written by ``--out``
    is byte-identical regardless of ``--workers`` -- and ``--cache-dir``
    makes repeated sweeps incremental.

``python -m repro compare --scenario square --solvers offline,online,greedy``
    Run several solvers on the same workload and print one comparison
    table, the omega*-anchored sandwich the thesis is about.  Exit code 1
    if any run is infeasible.

``python -m repro bounds --scenario square`` and ``python -m repro online
--scenario point --seed 7``
    The original detail views (Theorem 1.4.1 quantities, Theorem 1.4.2
    quantities), kept for scripts that rely on them; both now execute
    through the engine's ``offline``/``online`` solvers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import Table
from repro.api import (
    CapacitySpec,
    ConfigError,
    ExperimentEngine,
    FailureSpec,
    RunConfig,
    RunResult,
    ScenarioSpec,
    TransportSpec,
    UnknownSolverError,
    available_solvers,
    available_transports,
    config_matrix,
    solver_descriptions,
)
from repro.core.demand import DemandMap
from repro.core.offline import offline_bounds
from repro.core.online import run_online
from repro.io.serialize import demand_from_json, load_json, save_json
from repro.workloads.arrivals import (
    alternating_arrivals,
    random_arrivals,
    sequential_arrivals,
)
from repro.workloads.library import (
    available_families,
    family_descriptions,
    family_matrix,
    get_family,
)
from repro.workloads.scenarios import paper_scenarios

__all__ = ["main", "build_parser"]

ORDER_CHOICES = ["random", "sequential", "alternating", "bursty"]


def _scenario_names() -> List[str]:
    return [s.name for s in paper_scenarios()]


def _workload_names() -> List[str]:
    """Every name ``--scenario`` accepts: paper scenarios plus families."""
    return _scenario_names() + available_families()


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Capacitated Multivehicle Routing Problem (CMVRP) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("scenarios", help="list the built-in paper scenarios")
    subparsers.add_parser("families", help="list the registered scenario families")
    subparsers.add_parser("solvers", help="list the registered solvers")

    run = subparsers.add_parser("run", help="execute one solver on one workload")
    _add_workload_arguments(run)
    _add_run_arguments(run)
    run.add_argument(
        "--solver",
        required=True,
        choices=available_solvers(),
        help="registry name of the solver",
    )
    run.add_argument("--json", dest="json_out", help="write the RunResult to this path")
    run.add_argument("--cache-dir", help="result cache directory (keyed on config hash)")
    run.add_argument(
        "--profile",
        action="store_true",
        help="profile the solve under cProfile and print the top-20 "
        "cumulative entries to stderr (perf work starts from data; "
        "composes with --metrics-out streaming runs)",
    )
    run.add_argument(
        "--metrics-out",
        help="write windowed metrics as JSON lines to this path; routes the "
        "online solvers through the streaming service harness "
        "(byte-identical to the batch run)",
    )
    run.add_argument(
        "--window",
        type=_positive_int,
        default=1000,
        help="jobs per metrics window (with --metrics-out; default 1000)",
    )
    run.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="partition the run into N cube-aligned shards (online solvers "
        "only; results are byte-identical to --shards 1)",
    )
    run.add_argument(
        "--shard-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap the worker-process pool for sharded runs (default: one "
        "process per shard); results are identical at any worker count",
    )
    _add_monitoring_arguments(run)

    sweep = subparsers.add_parser(
        "sweep", help="run a scenario x solver x seed matrix through the engine"
    )
    sweep.add_argument(
        "--scenarios",
        default="all",
        help='comma-separated paper-scenario names, "all" (default), or "none"',
    )
    sweep.add_argument(
        "--families",
        default="none",
        help='comma-separated scenario-family names, "all", or "none" (default)',
    )
    sweep.add_argument(
        "--preset",
        choices=["default", "small"],
        default="default",
        help="family parameter preset (families only)",
    )
    sweep.add_argument(
        "--solvers",
        required=True,
        help="comma-separated solver names",
    )
    sweep.add_argument(
        "--seeds", default="0", help='comma-separated seeds (default "0")'
    )
    sweep.add_argument(
        "--order",
        choices=ORDER_CHOICES,
        default=None,
        help="arrival ordering of the unit jobs (default: random; families "
        "use their preferred ordering)",
    )
    sweep.add_argument(
        "--capacity",
        default="theorem",
        help='provisioned battery: "theorem", "unbounded", or a number',
    )
    sweep.add_argument("--workers", type=_positive_int, default=1, help="worker pool size")
    sweep.add_argument(
        "--verbose",
        action="store_true",
        help="print per-run progress lines to stderr",
    )
    sweep.add_argument(
        "--processes",
        action="store_true",
        help="use a process pool instead of threads",
    )
    sweep.add_argument("--cache-dir", help="result cache directory (keyed on config hash)")
    sweep.add_argument("--out", help="write the deterministic results JSON to this path")
    _add_transport_arguments(sweep)

    compare = subparsers.add_parser(
        "compare", help="run several solvers on one workload and print one table"
    )
    _add_workload_arguments(compare)
    _add_run_arguments(compare)
    compare.add_argument(
        "--solvers",
        required=True,
        help="comma-separated solver names",
    )
    compare.add_argument("--workers", type=_positive_int, default=1, help="worker pool size")
    compare.add_argument("--cache-dir", help="result cache directory (keyed on config hash)")

    bounds = subparsers.add_parser(
        "bounds", help="compute the offline characterization for a workload"
    )
    _add_workload_arguments(bounds)

    online = subparsers.add_parser(
        "online", help="run the decentralized online strategy on a workload"
    )
    _add_workload_arguments(online)
    _add_run_arguments(online, engine=False)

    serve = subparsers.add_parser(
        "serve",
        help="run the fleet as a long-lived streaming service (constant "
        "memory, windowed metrics, checkpoint/resume, live state)",
    )
    source = serve.add_mutually_exclusive_group(required=False)
    source.add_argument(
        "--scenario",
        choices=_workload_names(),
        help="a built-in paper scenario or a scenario family",
    )
    source.add_argument(
        "--demand-json",
        help="path to a demand map serialized with repro.io.serialize",
    )
    serve.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="total jobs to stream (omit for an endless stream bounded "
        "by --duration)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop dispatching after this simulation time",
    )
    serve.add_argument("--seed", type=int, default=0, help="run-RNG seed")
    serve.add_argument(
        "--omega", type=float, default=None, help="cube parameter (default: omega_c)"
    )
    serve.add_argument(
        "--capacity",
        default=None,
        help='per-vehicle battery: a number, "unbounded", or the default '
        "Lemma 3.3.1 theorem capacity",
    )
    serve.add_argument(
        "--recovery-rounds",
        type=int,
        default=0,
        help="heartbeat rounds the monitoring loop may spend recovering a job",
    )
    serve.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="X,Y",
        help="home vertex of a vehicle broken from the start (repeatable)",
    )
    serve.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="X,Y",
        help="home vertex of a vehicle that never initiates diffusing "
        "computations (repeatable)",
    )
    serve.add_argument(
        "--monitoring",
        nargs="?",
        const="ring",
        choices=["ring", "gossip"],
        default=None,
        help="enable the failure-detection loop (implied by --crash, "
        '--suppress, or --recovery-rounds): "ring" (the bare-flag '
        'default) is the Section 3.2.5 heartbeat ring, "gossip" the '
        "epidemic detector with quorum-attested replacement",
    )
    serve.add_argument(
        "--gossip-fanout",
        type=_positive_int,
        default=None,
        metavar="F",
        help="peers each vehicle gossips its digest to per round "
        "(gossip monitoring only; default 2)",
    )
    serve.add_argument(
        "--suspicion-threshold",
        type=_positive_int,
        default=None,
        metavar="S",
        help="independent silent reports needed before a watcher opens a "
        "suspicion (gossip monitoring only; default 2)",
    )
    serve.add_argument(
        "--quorum",
        type=_positive_int,
        default=None,
        metavar="Q",
        help="co-signatures a watcher must collect before initiating "
        "replacement (gossip monitoring only; default 2)",
    )
    serve.add_argument(
        "--byzantine-watcher",
        action="append",
        default=[],
        metavar="X,Y",
        help="home vertex of a vehicle whose failure-detection role lies "
        "(repeatable; the gossip quorum masks up to quorum-1 of these)",
    )
    serve.add_argument(
        "--hand-back",
        action="store_true",
        help="revived vehicles reclaim pairs their adopters hold "
        "(proactive load shedding)",
    )
    serve.add_argument(
        "--window",
        type=_positive_int,
        default=1000,
        help="jobs per metrics window (default 1000)",
    )
    serve.add_argument(
        "--lookahead",
        type=_positive_int,
        default=64,
        help="arrivals scheduled ahead of the clock (default 64)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="W",
        help="write a checkpoint every W metrics windows (needs --checkpoint)",
    )
    serve.add_argument(
        "--checkpoint", help="checkpoint path (atomically replaced each write)"
    )
    serve.add_argument(
        "--keep-checkpoints",
        type=_positive_int,
        default=None,
        metavar="K",
        help="rotate checkpoints: keep the last K snapshots as numbered "
        "siblings of --checkpoint instead of replacing a single file",
    )
    serve.add_argument(
        "--resume",
        metavar="SNAPSHOT",
        help="continue from a checkpoint (workload flags come from the "
        "snapshot's embedded config)",
    )
    serve.add_argument(
        "--state-out", help="live-state JSON path (atomically rewritten every window)"
    )
    serve.add_argument("--log-out", help="append-only JSONL milestone log path")
    serve.add_argument(
        "--metrics-out", help="append each metrics window as one JSON line here"
    )
    serve.add_argument(
        "--stop-after-checkpoints",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stop right after the Nth checkpoint (deterministic kill, for "
        "resume demonstrations)",
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="classify protocol traffic against an N-shard cube partition "
        "(bookkeeping only; results are byte-identical to --shards 1).  "
        "With --resume this overrides the snapshot's shard count: a "
        "checkpoint taken under N shards resumes under M shards to the "
        "same hashes",
    )
    serve.add_argument(
        "--json", dest="json_out", help="write the ServiceResult to this path"
    )
    _add_transport_arguments(serve)
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--scenario",
        choices=_workload_names(),
        help="a built-in paper scenario or a scenario family",
    )
    source.add_argument(
        "--demand-json",
        help="path to a demand map serialized with repro.io.serialize",
    )


def _add_run_arguments(parser: argparse.ArgumentParser, *, engine: bool = True) -> None:
    parser.add_argument("--seed", type=int, default=0, help="arrival-order seed")
    parser.add_argument(
        "--order",
        choices=ORDER_CHOICES,
        default=None,
        help="arrival ordering of the unit jobs (default: random; families "
        "use their preferred ordering)",
    )
    parser.add_argument(
        "--capacity",
        default=None,
        help='per-vehicle battery: a number, "unbounded", or the default '
        "Lemma 3.3.1 theorem capacity",
    )
    parser.add_argument(
        "--omega", type=float, default=None, help="cube parameter (default: omega_c)"
    )
    if not engine:
        return
    parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="solver-specific parameter (repeatable); values parse as JSON "
        "when possible",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print per-run progress lines to stderr",
    )
    parser.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="X,Y",
        help="home vertex of a vehicle broken from the start (repeatable; "
        "scenario 3, for the online-broken solver)",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="X,Y",
        help="home vertex of a vehicle that never initiates diffusing "
        "computations (repeatable; scenario 2, for the online-broken solver)",
    )
    parser.add_argument(
        "--recovery-rounds",
        type=int,
        default=0,
        help="heartbeat rounds the monitoring loop may spend recovering a job",
    )
    _add_transport_arguments(parser)


def _add_monitoring_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--monitoring",
        choices=["ring", "gossip"],
        default=None,
        help="failure-detection mode for the message-passing solvers: "
        '"ring" is the Section 3.2.5 heartbeat ring (the default when '
        'failures are modelled), "gossip" opts into the epidemic '
        "detector with quorum-attested replacement",
    )
    parser.add_argument(
        "--gossip-fanout",
        type=_positive_int,
        default=None,
        metavar="F",
        help="peers each vehicle gossips its digest to per round "
        "(gossip monitoring only; default 2)",
    )
    parser.add_argument(
        "--suspicion-threshold",
        type=_positive_int,
        default=None,
        metavar="S",
        help="independent silent reports needed before a watcher opens a "
        "suspicion (gossip monitoring only; default 2)",
    )
    parser.add_argument(
        "--quorum",
        type=_positive_int,
        default=None,
        metavar="Q",
        help="co-signatures a watcher must collect before initiating "
        "replacement (gossip monitoring only; default 2, at most the "
        "suspicion threshold)",
    )
    parser.add_argument(
        "--byzantine-watcher",
        action="append",
        default=[],
        metavar="X,Y",
        help="home vertex of a vehicle whose failure-detection role lies "
        "(reports every pair silent, inverts attestations; repeatable; "
        "the quorum masks up to quorum-1 of these)",
    )


def _add_transport_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transport",
        choices=list(available_transports()),
        default=None,
        help="message-delivery model for the online solvers (default: the "
        "historical reliable channel)",
    )
    parser.add_argument(
        "--transport-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="transport parameter, e.g. loss=0.1 or seed=3 (repeatable; "
        "values parse as JSON when possible)",
    )
    parser.add_argument(
        "--escalation",
        action="store_true",
        help="let exhausted replacement searches escalate through the cube "
        "hierarchy (cross-cube replacement; online solvers only)",
    )


def _parse_point(raw: str) -> tuple:
    try:
        return tuple(int(c) for c in raw.split(","))
    except ValueError:
        raise SystemExit(
            f"invalid point {raw!r}: expected comma-separated integers like 3,3"
        ) from None


def _parse_failures(
    args: argparse.Namespace, scenario: Optional[ScenarioSpec] = None
) -> Optional[FailureSpec]:
    crashed = tuple(_parse_point(p) for p in getattr(args, "crash", []))
    suppressed = tuple(_parse_point(p) for p in getattr(args, "suppress", []))
    byzantine = tuple(
        _parse_point(p) for p in getattr(args, "byzantine_watcher", [])
    )
    if crashed or suppressed or byzantine:
        return FailureSpec(
            crashed=crashed, suppressed=suppressed, byzantine_watchers=byzantine
        )
    if scenario is not None and scenario.family is not None:
        # No explicit failure flags: fall back to the scenario family's own
        # failure plan (outage regions, churn schedules, partition windows),
        # synthesized for failure-free families -- exactly what `sweep` uses,
        # so every subcommand agrees on family x online-broken.
        from repro.workloads.library import family_broken_failures

        return family_broken_failures(
            scenario.family, scenario.family_params_dict(), seed=scenario.seed
        )
    return None


def _parse_transport(args: argparse.Namespace) -> Optional[TransportSpec]:
    kind = getattr(args, "transport", None)
    params = _parse_params(getattr(args, "transport_param", []))
    if kind is None:
        if params:
            raise SystemExit("--transport-param given without --transport")
        return None
    try:
        return TransportSpec(kind=kind, params=tuple(sorted(params.items())))
    except ValueError as error:
        raise SystemExit(f"invalid transport: {error}") from None


def _parse_capacity(raw: Optional[str]) -> CapacitySpec:
    if raw is None or raw == "theorem":
        return "theorem"
    if raw in ("unbounded", "none", "None"):
        return None
    try:
        return float(raw)
    except ValueError:
        raise SystemExit(
            f'invalid --capacity {raw!r}: expected "theorem", "unbounded", or a number'
        ) from None


def _parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"invalid --param {pair!r}: expected KEY=VALUE")
        key, raw = pair.split("=", 1)
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _scenario_spec(args: argparse.Namespace) -> ScenarioSpec:
    order = getattr(args, "order", None)
    seed = getattr(args, "seed", 0)
    if getattr(args, "demand_json", None):
        demand = demand_from_json(load_json(args.demand_json))
        name = Path(args.demand_json).stem
        return ScenarioSpec.from_demand(demand, name=name, order=order or "random", seed=seed)
    if args.scenario in available_families():
        return ScenarioSpec.from_family(args.scenario, order=order, seed=seed)
    return ScenarioSpec(name=args.scenario, order=order or "random", seed=seed)


def _split_csv(raw: str) -> List[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _engine(args: argparse.Namespace, *, workers: int = 1) -> ExperimentEngine:
    def progress(done: int, total: int, result: RunResult) -> None:
        status = "ok" if result.feasible else "INFEASIBLE"
        print(
            f"[{done}/{total}] {result.solver}/{result.scenario} "
            f"max_energy={result.max_vehicle_energy:g} ({status})",
            file=sys.stderr,
        )

    return ExperimentEngine(
        workers=workers,
        cache_dir=getattr(args, "cache_dir", None),
        use_processes=getattr(args, "processes", False),
        progress=progress if workers > 1 or getattr(args, "verbose", False) else None,
    )


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #


def _command_scenarios() -> int:
    table = Table("Built-in paper scenarios", ["name", "support", "total demand", "description"])
    for scenario in paper_scenarios():
        table.add_row(
            scenario.name,
            len(scenario.demand),
            scenario.demand.total(),
            scenario.description,
        )
    print(table.render())
    return 0


def _command_families() -> int:
    table = Table(
        "Registered scenario families", ["name", "tags", "defaults", "description"]
    )
    for name, description in family_descriptions().items():
        family = get_family(name)
        defaults = ", ".join(f"{k}={v}" for k, v in sorted(family.defaults.items()))
        table.add_row(name, ",".join(family.tags), defaults, description)
    print(table.render())
    return 0


def _command_solvers() -> int:
    table = Table("Registered solvers", ["name", "description"])
    for name, description in solver_descriptions().items():
        table.add_row(name, description)
    print(table.render())
    return 0


#: Solvers that simulate the message-passing protocol (and hence a transport).
_TRANSPORT_SOLVERS = ("online", "online-broken")


def _command_run(args: argparse.Namespace) -> int:
    scenario = _scenario_spec(args)
    transport = _parse_transport(args)
    if transport is not None and args.solver not in _TRANSPORT_SOLVERS:
        print(
            f"error: --transport only applies to the message-passing solvers "
            f"({', '.join(_TRANSPORT_SOLVERS)}), not {args.solver!r}",
            file=sys.stderr,
        )
        return 2
    if args.escalation and args.solver not in _TRANSPORT_SOLVERS:
        print(
            f"error: --escalation only applies to the message-passing solvers "
            f"({', '.join(_TRANSPORT_SOLVERS)}), not {args.solver!r}",
            file=sys.stderr,
        )
        return 2
    if args.shards > 1 and args.solver not in _TRANSPORT_SOLVERS:
        print(
            f"error: --shards only applies to the message-passing solvers "
            f"({', '.join(_TRANSPORT_SOLVERS)}), not {args.solver!r}",
            file=sys.stderr,
        )
        return 2
    gossip_knobs = {
        "--gossip-fanout": args.gossip_fanout,
        "--suspicion-threshold": args.suspicion_threshold,
        "--quorum": args.quorum,
    }
    monitoring_flags = (
        args.monitoring is not None
        or any(value is not None for value in gossip_knobs.values())
        or bool(args.byzantine_watcher)
    )
    if monitoring_flags and args.solver not in _TRANSPORT_SOLVERS:
        print(
            f"error: --monitoring and the gossip flags only apply to the "
            f"message-passing solvers ({', '.join(_TRANSPORT_SOLVERS)}), "
            f"not {args.solver!r}",
            file=sys.stderr,
        )
        return 2
    if args.monitoring != "gossip":
        given = [flag for flag, value in gossip_knobs.items() if value is not None]
        if given:
            print(
                f"error: {', '.join(given)} need --monitoring gossip",
                file=sys.stderr,
            )
            return 2
    failures = _parse_failures(
        args, scenario if args.solver == "online-broken" else None
    )
    if transport is not None and failures is not None and failures.transport is not None:
        # An explicit --transport overrides the family failure plan's own.
        failures = failures.without_transport()
    params = _parse_params(args.param)
    if args.shard_workers is not None:
        params["shard_workers"] = args.shard_workers
    # Monitoring flags ride the params channel: absent flags leave the
    # params dict (and hence every existing config hash) untouched.
    if args.monitoring is not None:
        params["monitoring"] = args.monitoring
    if args.gossip_fanout is not None:
        params["gossip_fanout"] = args.gossip_fanout
    if args.suspicion_threshold is not None:
        params["suspicion_threshold"] = args.suspicion_threshold
    if args.quorum is not None:
        params["quorum"] = args.quorum
    config = RunConfig(
        solver=args.solver,
        scenario=scenario,
        capacity=_parse_capacity(args.capacity),
        omega=args.omega,
        # The family-failure fallback only applies to the solver that
        # models failures; other solvers see the bare workload.
        failures=failures,
        transport=transport,
        escalation=args.escalation,
        recovery_rounds=args.recovery_rounds,
        shards=args.shards,
        params=params,
    )
    if args.metrics_out:
        if args.solver not in _TRANSPORT_SOLVERS:
            print(
                f"error: --metrics-out streams through the service harness and "
                f"only applies to {', '.join(_TRANSPORT_SOLVERS)}, "
                f"not {args.solver!r}",
                file=sys.stderr,
            )
            return 2
        return _command_run_streaming(args, config)
    engine = _engine(args)
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = engine.run(config)
        finally:
            profiler.disable()
            pstats.Stats(profiler, stream=sys.stderr).sort_stats(
                "cumulative"
            ).print_stats(20)
    else:
        result = engine.run(config)
    print(ExperimentEngine.summary([result], title=f"Run {config.label()}").render())
    extras = result.extras_dict()
    if extras:
        detail = Table("Solver detail", ["counter", "value"])
        for key, value in extras.items():
            detail.add_row(key, value)
        print()
        print(detail.render())
    if args.json_out:
        save_json(result.to_json(), args.json_out)
    return 0 if result.feasible else 1


def _service_summary(result) -> Table:
    table = Table("Service run", ["quantity", "value"])
    table.add_row("jobs served / dispatched", f"{result.jobs_served}/{result.jobs_total}")
    table.add_row("feasible", result.feasible)
    table.add_row("windows closed", result.windows)
    table.add_row("checkpoints written", result.checkpoints_written)
    table.add_row("resumed / interrupted", f"{result.resumed} / {result.interrupted}")
    table.add_row("max per-vehicle energy", result.max_vehicle_energy)
    table.add_row("protocol messages", result.messages)
    table.add_row("transport", result.transport)
    table.add_row("sim time", result.sim_time)
    if result.shards > 1:
        table.add_row("shards", result.shards)
        # The streaming driver serializes execution on one clock, so a
        # sharded service run is always observational lockstep.
        table.add_row("shard mode", "lockstep (single clock)")
        table.add_row("cross-shard messages", result.cross_shard_messages)
        table.add_row("window barriers", result.window_barriers)
    table.add_row("result hash", result.result_hash()[:16])
    return table


def _command_run_streaming(args: argparse.Namespace, config: RunConfig) -> int:
    """``run --metrics-out``: the same online run, through the service harness.

    Finite sequences stream byte-identically to the batch driver, so the
    printed numbers match a plain ``run`` exactly -- this path merely adds
    the windowed-metrics JSONL (and still composes with ``--profile``).
    """
    from repro.api.service import ServiceConfig
    from repro.service import run_service

    if config.param("engine", "events") != "events":
        print("error: --metrics-out requires the events engine", file=sys.stderr)
        return 2
    jobs = config.scenario.jobs()
    if len(jobs) == 0:
        print("error: the workload is empty; nothing to stream", file=sys.stderr)
        return 2
    broken = config.solver == "online-broken"
    failures = config.failures
    if broken and (failures is None or failures.is_empty()):
        print(
            "error: the online-broken solver needs a non-empty failures spec",
            file=sys.stderr,
        )
        return 2
    service_config = ServiceConfig.from_demand(
        jobs.demand_map(),
        omega=config.omega,
        capacity=config.capacity,
        fleet={"monitoring": broken, "escalation": config.escalation},
        recovery_rounds=config.recovery_rounds,
        transport=config.effective_transport(),
        churn=failures.churn_events() if broken else (),
        dead_vehicles=failures.crashed if broken else (),
        suppressed=failures.suppressed if broken else (),
        partitions=failures.partitions if broken else (),
        seed=config.scenario.seed,
        window_jobs=args.window,
        shards=config.shards,
    )

    def execute():
        return run_service(service_config, jobs.jobs, metrics_path=args.metrics_out)

    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = execute()
        finally:
            profiler.disable()
            pstats.Stats(profiler, stream=sys.stderr).sort_stats(
                "cumulative"
            ).print_stats(20)
    else:
        result = execute()
    print(_service_summary(result).render())
    print(f"\nwrote {result.windows} metrics windows to {args.metrics_out}", file=sys.stderr)
    if args.json_out:
        save_json(result.to_json(), args.json_out)
    return 0 if result.feasible else 1


def _command_serve(args: argparse.Namespace) -> int:
    from repro.api.service import ServiceConfig
    from repro.service import load_checkpoint, run_service
    from repro.workloads.arrivals import streaming_arrivals

    if args.jobs is None and args.duration is None:
        print("error: serve needs --jobs N, --duration T, or both", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and args.checkpoint is None:
        print("error: --checkpoint-every needs --checkpoint PATH", file=sys.stderr)
        return 2
    if args.keep_checkpoints is not None and args.checkpoint is None:
        print("error: --keep-checkpoints needs --checkpoint PATH", file=sys.stderr)
        return 2
    outputs = dict(
        duration=args.duration,
        metrics_path=args.metrics_out,
        state_path=args.state_out,
        log_path=args.log_out,
        checkpoint_path=args.checkpoint,
        keep_checkpoints=args.keep_checkpoints,
        stop_after_checkpoints=args.stop_after_checkpoints,
    )
    if args.resume:
        payload = load_checkpoint(args.resume)
        config = ServiceConfig.from_json(payload["config"])
        if args.shards is not None:
            # Observational sharding: resuming an N-shard checkpoint under
            # M shards reaches the same result_hash / fleet_digest.
            config = config.replace(shards=args.shards)
        jobs = streaming_arrivals(config.demand(), jobs=args.jobs)
        result = run_service(config, jobs, snapshot=payload, **outputs)
    else:
        if args.scenario is None and args.demand_json is None:
            print(
                "error: serve needs --scenario, --demand-json, or --resume",
                file=sys.stderr,
            )
            return 2
        demand = _legacy_demand(args)
        crashed = tuple(_parse_point(p) for p in args.crash)
        suppressed = tuple(_parse_point(p) for p in args.suppress)
        byzantine = tuple(_parse_point(p) for p in args.byzantine_watcher)
        gossip_knobs = {
            "gossip_fanout": args.gossip_fanout,
            "suspicion_threshold": args.suspicion_threshold,
            "quorum": args.quorum,
        }
        monitoring = args.monitoring
        if monitoring is None and (
            crashed or suppressed or byzantine or args.recovery_rounds > 0
        ):
            monitoring = "ring"
        if monitoring != "gossip":
            given = [
                "--" + name.replace("_", "-")
                for name, value in gossip_knobs.items()
                if value is not None
            ]
            if given:
                print(
                    f"error: {', '.join(given)} need --monitoring gossip",
                    file=sys.stderr,
                )
                return 2
        fleet: Dict[str, Any] = {}
        if monitoring == "ring":
            # The historical boolean spelling: checkpoints and config
            # hashes of pre-gossip ring runs stay byte-identical.
            fleet["monitoring"] = True
        elif monitoring == "gossip":
            fleet["monitoring"] = "gossip"
            for name, value in gossip_knobs.items():
                if value is not None:
                    fleet[name] = value
        if args.escalation:
            fleet["escalation"] = True
        if args.hand_back:
            fleet["hand_back"] = True
        config = ServiceConfig.from_demand(
            demand,
            omega=args.omega,
            capacity=_parse_capacity(args.capacity),
            fleet=fleet,
            recovery_rounds=args.recovery_rounds,
            transport=_parse_transport(args),
            dead_vehicles=crashed,
            suppressed=suppressed,
            byzantine_watchers=byzantine,
            seed=args.seed,
            lookahead=args.lookahead,
            window_jobs=args.window,
            checkpoint_every=args.checkpoint_every,
            shards=args.shards if args.shards is not None else 1,
        )
        jobs = streaming_arrivals(demand, jobs=args.jobs)
        result = run_service(config, jobs, **outputs)
    print(_service_summary(result).render())
    if args.json_out:
        save_json(result.to_json(), args.json_out)
    return 0 if result.feasible else 1


def _command_sweep(args: argparse.Namespace) -> int:
    if args.scenarios == "none":
        names: List[str] = []
    elif args.scenarios == "all":
        names = _scenario_names()
    else:
        names = _split_csv(args.scenarios)
    if args.families == "none":
        families: List[str] = []
    elif args.families == "all":
        families = available_families()
    else:
        families = _split_csv(args.families)
    seeds = [int(seed) for seed in _split_csv(args.seeds)]
    solvers = _split_csv(args.solvers)
    capacity = _parse_capacity(args.capacity)
    scenarios = [ScenarioSpec(name=name, order=args.order or "random") for name in names]
    configs = config_matrix(scenarios, solvers, seeds=seeds, capacity=capacity)
    configs += family_matrix(
        families,
        solvers,
        seeds=seeds,
        capacity=capacity,
        order=args.order,
        preset=None if args.preset == "default" else args.preset,
    )
    if not configs:
        print("error: nothing to sweep (no scenarios and no families)", file=sys.stderr)
        return 2
    transport = _parse_transport(args)
    if transport is not None:
        if not any(config.solver in _TRANSPORT_SOLVERS for config in configs):
            print(
                f"error: --transport needs at least one message-passing solver "
                f"({', '.join(_TRANSPORT_SOLVERS)}) in --solvers",
                file=sys.stderr,
            )
            return 2
        # The transport rides only on the solvers that simulate messaging;
        # when a family's failure plan already bundles one, the explicit
        # flag wins (mirroring `run`).
        configs = [
            config.replace(
                transport=transport,
                failures=(
                    config.failures.without_transport()
                    if config.failures is not None and config.failures.transport is not None
                    else config.failures
                ),
            )
            if config.solver in _TRANSPORT_SOLVERS
            else config
            for config in configs
        ]
    if args.escalation:
        # Like the transport, escalation rides only on the solvers that
        # simulate the message-passing protocol.
        configs = [
            config.replace(escalation=True)
            if config.solver in _TRANSPORT_SOLVERS
            else config
            for config in configs
        ]
    engine = _engine(args, workers=args.workers)
    results = engine.run_many(configs)
    print(
        ExperimentEngine.summary(
            results, title=f"Sweep: {len(results)} runs ({engine.stats.cache_hits} cached)"
        ).render()
    )
    if args.out:
        Path(args.out).write_text(ExperimentEngine.results_payload(results))
        print(f"\nwrote {len(results)} results to {args.out}", file=sys.stderr)
    return 0 if all(result.feasible for result in results) else 1


def _command_compare(args: argparse.Namespace) -> int:
    scenario = _scenario_spec(args)
    failures = _parse_failures(args, scenario)
    transport = _parse_transport(args)
    if transport is not None and failures is not None and failures.transport is not None:
        failures = failures.without_transport()
    configs = [
        RunConfig(
            solver=solver,
            scenario=scenario,
            capacity=_parse_capacity(args.capacity),
            omega=args.omega,
            # Failure flags only apply to the solver that models them; the
            # transport rides on every solver that simulates messaging.
            failures=failures if solver == "online-broken" else None,
            transport=transport if solver in _TRANSPORT_SOLVERS else None,
            escalation=args.escalation and solver in _TRANSPORT_SOLVERS,
            recovery_rounds=args.recovery_rounds if solver == "online-broken" else 0,
            params=_parse_params(args.param),
        )
        for solver in _split_csv(args.solvers)
    ]
    engine = _engine(args, workers=args.workers)
    results = engine.run_many(configs)
    print(
        ExperimentEngine.summary(
            results, title=f"Comparison on scenario {scenario.name!r}"
        ).render()
    )
    return 0 if all(result.feasible for result in results) else 1


def _legacy_demand(args: argparse.Namespace) -> DemandMap:
    if args.demand_json:
        return demand_from_json(load_json(args.demand_json))
    for scenario in paper_scenarios():
        if scenario.name == args.scenario:
            return scenario.demand
    from repro.workloads.library import build_family_demand

    return build_family_demand(args.scenario, seed=getattr(args, "seed", 0))


def _command_bounds(args: argparse.Namespace) -> int:
    demand = _legacy_demand(args)
    bounds = offline_bounds(demand)
    table = Table("Offline characterization (Theorem 1.4.1)", ["quantity", "value"])
    table.add_row("support size", len(demand))
    table.add_row("total demand", demand.total())
    table.add_row("omega_c (Cor. 2.2.7)", bounds.omega_c)
    table.add_row("omega* = max_T omega_T (cubes)", bounds.omega_star)
    table.add_row("audited constructive capacity", bounds.constructive_capacity)
    table.add_row("(2*3^l + l) * omega* upper bound", bounds.upper_bound)
    table.add_row("realized gap", bounds.sandwich_ratio)
    print(table.render())
    return 0


def _command_online(args: argparse.Namespace) -> int:
    import numpy as np

    demand = _legacy_demand(args)
    if args.order == "sequential":
        jobs = sequential_arrivals(demand)
    elif args.order == "alternating":
        jobs = alternating_arrivals(demand)
    elif args.order == "bursty":
        from repro.workloads.arrivals import bursty_arrivals

        jobs = bursty_arrivals(demand, np.random.default_rng(args.seed))
    else:
        jobs = random_arrivals(demand, np.random.default_rng(args.seed))
    capacity = _parse_capacity(args.capacity)
    result = run_online(jobs, omega=args.omega, capacity=capacity)
    table = Table("Online strategy (Theorem 1.4.2)", ["quantity", "value"])
    table.add_row("jobs served / total", f"{result.jobs_served}/{result.jobs_total}")
    table.add_row("feasible", result.feasible)
    table.add_row("omega (cube parameter)", result.omega)
    table.add_row("offline lower bound omega*", result.omega_star)
    table.add_row("provisioned capacity", result.capacity)
    table.add_row("max per-vehicle energy", result.max_vehicle_energy)
    table.add_row("online / offline ratio", result.online_to_offline_ratio)
    table.add_row("replacements", result.replacements)
    table.add_row("protocol messages", result.messages)
    print(table.render())
    return 0 if result.feasible else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "scenarios": lambda: _command_scenarios(),
        "families": lambda: _command_families(),
        "solvers": lambda: _command_solvers(),
        "run": lambda: _command_run(args),
        "sweep": lambda: _command_sweep(args),
        "compare": lambda: _command_compare(args),
        "bounds": lambda: _command_bounds(args),
        "online": lambda: _command_online(args),
        "serve": lambda: _command_serve(args),
    }
    command = commands.get(args.command)
    if command is None:  # pragma: no cover - argparse rejects unknown commands
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return command()
    except (ConfigError, UnknownSolverError, OSError, json.JSONDecodeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
