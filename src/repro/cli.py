"""Command-line interface for the CMVRP reproduction.

Three subcommands cover the workflows a user typically wants without
writing Python:

``python -m repro scenarios``
    List the built-in paper scenarios with their parameters.

``python -m repro bounds --scenario square``
    Compute the offline characterization (Theorem 1.4.1 quantities) for a
    built-in scenario or for a demand map loaded from JSON
    (``--demand-json path``, in the :mod:`repro.io.serialize` format).

``python -m repro online --scenario point --seed 7``
    Run the decentralized online strategy (Chapter 3) on the scenario's
    demand with a random arrival order and report the Theorem 1.4.2
    quantities.  ``--capacity`` overrides the provisioned battery and
    ``--omega`` the cube parameter, which is how the replacement machinery
    can be stress-tested from the command line.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.report import Table
from repro.core.demand import DemandMap
from repro.core.offline import offline_bounds
from repro.core.online import run_online
from repro.io.serialize import demand_from_json, load_json
from repro.workloads.arrivals import random_arrivals, sequential_arrivals
from repro.workloads.scenarios import Scenario, paper_scenarios

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Capacitated Multivehicle Routing Problem (CMVRP) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("scenarios", help="list the built-in paper scenarios")

    bounds = subparsers.add_parser(
        "bounds", help="compute the offline characterization for a workload"
    )
    _add_workload_arguments(bounds)

    online = subparsers.add_parser(
        "online", help="run the decentralized online strategy on a workload"
    )
    _add_workload_arguments(online)
    online.add_argument("--seed", type=int, default=0, help="arrival-order seed")
    online.add_argument(
        "--order",
        choices=["random", "sequential"],
        default="random",
        help="arrival ordering of the unit jobs",
    )
    online.add_argument(
        "--capacity",
        type=float,
        default=None,
        help="per-vehicle battery (default: the Lemma 3.3.1 theorem capacity)",
    )
    online.add_argument(
        "--omega", type=float, default=None, help="cube parameter (default: omega_c)"
    )
    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--scenario",
        choices=[s.name for s in paper_scenarios()],
        help="one of the built-in paper scenarios",
    )
    source.add_argument(
        "--demand-json",
        help="path to a demand map serialized with repro.io.serialize",
    )


def _load_demand(args: argparse.Namespace) -> DemandMap:
    if args.demand_json:
        return demand_from_json(load_json(args.demand_json))
    scenario = next(s for s in paper_scenarios() if s.name == args.scenario)
    return scenario.demand


def _command_scenarios() -> int:
    table = Table("Built-in paper scenarios", ["name", "support", "total demand", "description"])
    for scenario in paper_scenarios():
        table.add_row(
            scenario.name,
            len(scenario.demand),
            scenario.demand.total(),
            scenario.description,
        )
    print(table.render())
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    demand = _load_demand(args)
    bounds = offline_bounds(demand)
    table = Table("Offline characterization (Theorem 1.4.1)", ["quantity", "value"])
    table.add_row("support size", len(demand))
    table.add_row("total demand", demand.total())
    table.add_row("omega_c (Cor. 2.2.7)", bounds.omega_c)
    table.add_row("omega* = max_T omega_T (cubes)", bounds.omega_star)
    table.add_row("audited constructive capacity", bounds.constructive_capacity)
    table.add_row("(2*3^l + l) * omega* upper bound", bounds.upper_bound)
    table.add_row("realized gap", bounds.sandwich_ratio)
    print(table.render())
    return 0


def _command_online(args: argparse.Namespace) -> int:
    demand = _load_demand(args)
    if args.order == "random":
        jobs = random_arrivals(demand, np.random.default_rng(args.seed))
    else:
        jobs = sequential_arrivals(demand)
    capacity = args.capacity if args.capacity is not None else "theorem"
    result = run_online(jobs, omega=args.omega, capacity=capacity)
    table = Table("Online strategy (Theorem 1.4.2)", ["quantity", "value"])
    table.add_row("jobs served / total", f"{result.jobs_served}/{result.jobs_total}")
    table.add_row("feasible", result.feasible)
    table.add_row("omega (cube parameter)", result.omega)
    table.add_row("offline lower bound omega*", result.omega_star)
    table.add_row("provisioned capacity", result.capacity)
    table.add_row("max per-vehicle energy", result.max_vehicle_energy)
    table.add_row("online / offline ratio", result.online_to_offline_ratio)
    table.add_row("replacements", result.replacements)
    table.add_row("protocol messages", result.messages)
    print(table.render())
    return 0 if result.feasible else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "scenarios":
        return _command_scenarios()
    if args.command == "bounds":
        return _command_bounds(args)
    if args.command == "online":
        return _command_online(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
