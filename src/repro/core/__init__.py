"""Core CMVRP machinery: demand model, characterization, solvers, extensions.

This package implements the primary contribution of the thesis:

* :mod:`repro.core.demand` -- demand maps ``d(.)`` and timed job sequences.
* :mod:`repro.core.omega` -- the ``omega_T`` equation (1.1), its cube
  restrictions (Corollaries 2.2.6/2.2.7) and exhaustive-subset versions.
* :mod:`repro.core.lp` -- the linear programs (2.1)/(2.8), their duals and
  the Lemma 2.2.1 decomposition, backed by scipy.
* :mod:`repro.core.flows` -- flow-based feasibility oracles (networkx).
* :mod:`repro.core.offline` -- Algorithm 1 and the full offline solver.
* :mod:`repro.core.plan` -- the constructive service plan of Lemma 2.2.5.
* :mod:`repro.core.feasibility` -- audits that a plan serves all demand
  within capacity.
* :mod:`repro.core.online` -- the online simulation harness (Theorem 1.4.2).
* :mod:`repro.core.broken` -- Chapter 4 (broken vehicles).
* :mod:`repro.core.transfer` -- Chapter 5 (inter-vehicle energy transfers).
"""

from repro.core.demand import DemandMap, Job, JobSequence
from repro.core.omega import (
    OmegaResult,
    omega_for_region,
    omega_star_cubes,
    omega_star_exhaustive,
    omega_c,
)
from repro.core.offline import (
    Algorithm1Result,
    OfflineBounds,
    algorithm1,
    offline_bounds,
    upper_bound_factor,
)
from repro.core.plan import ServicePlan, build_cube_plan
from repro.core.feasibility import PlanAudit, audit_plan, minimal_feasible_capacity
from repro.core.online import OnlineResult, run_online

__all__ = [
    "DemandMap",
    "Job",
    "JobSequence",
    "OmegaResult",
    "omega_for_region",
    "omega_star_cubes",
    "omega_star_exhaustive",
    "omega_c",
    "Algorithm1Result",
    "OfflineBounds",
    "algorithm1",
    "offline_bounds",
    "upper_bound_factor",
    "ServicePlan",
    "build_cube_plan",
    "PlanAudit",
    "audit_plan",
    "minimal_feasible_capacity",
    "OnlineResult",
    "run_online",
]
