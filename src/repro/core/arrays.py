"""Dense-array helpers shared by the omega solvers and Algorithm 1.

The characterization machinery repeatedly needs "the largest total demand
inside any axis-aligned cube of side ``s``".  On a finite window this is a
classic sliding-window sum; we densify the sparse demand map over its
bounding box (padded so cubes that only partially overlap the support are
also considered) and compute window sums with cumulative sums along each
axis, which keeps the cost at ``O(volume * l)`` per side.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.grid.lattice import Box, Point

__all__ = [
    "dense_demand_array",
    "pairwise_manhattan",
    "sliding_cube_sums",
    "max_cube_sum",
    "max_cube_sums",
]

#: Guard against accidentally densifying an astronomically large window.
MAX_DENSE_CELLS = 50_000_000


def dense_demand_array(
    demand: Mapping[Point, float], box: Box
) -> np.ndarray:
    """Return a dense ``float64`` array of demands over ``box``.

    The array axes follow the lattice axes; index ``(0, ..., 0)`` corresponds
    to ``box.lo``.  Demand points outside ``box`` are rejected.
    """
    if box.size > MAX_DENSE_CELLS:
        raise ValueError(
            f"window of {box.size} cells is too large to densify "
            f"(limit {MAX_DENSE_CELLS})"
        )
    array = np.zeros(box.side_lengths, dtype=np.float64)
    if not demand:
        return array
    points = np.array(list(demand.keys()), dtype=np.int64)
    values = np.fromiter(demand.values(), dtype=np.float64, count=len(demand))
    lo = np.array(box.lo, dtype=np.int64)
    hi = np.array(box.hi, dtype=np.int64)
    outside = np.any((points < lo) | (points > hi), axis=1)
    if outside.any():
        culprit = tuple(int(c) for c in points[np.argmax(outside)])
        raise ValueError(f"demand point {culprit} lies outside the window {box}")
    indices = (points - lo).T
    # Bulk scatter-add: duplicate demand points accumulate, exactly as the
    # per-point loop did.
    np.add.at(array, tuple(indices), values)
    return array


def pairwise_manhattan(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """L1 distance matrix between two point arrays.

    ``sources`` is ``(m, dim)``, ``targets`` is ``(n, dim)``; the result is
    ``(m, n)`` with ``result[i, j] = ||sources[i] - targets[j]||_1``.  This
    is the shared inner primitive of the transport-feasibility oracle and
    the greedy baseline, replacing their per-pair Python loops.
    """
    sources = np.asarray(sources)
    targets = np.asarray(targets)
    if sources.ndim != 2 or targets.ndim != 2 or sources.shape[1] != targets.shape[1]:
        raise ValueError(
            f"expected (m, dim) and (n, dim) arrays, got {sources.shape} and {targets.shape}"
        )
    return np.abs(sources[:, None, :] - targets[None, :, :]).sum(axis=2)


def sliding_cube_sums(array: np.ndarray, side: int, *, pad: bool = True) -> np.ndarray:
    """Return sums over every ``side``-cube window of ``array``.

    With ``pad=True`` (the default) the array is zero-padded by ``side - 1``
    on every face first, so windows that only partially overlap the original
    array are included; this mirrors the thesis's cubes, which may be placed
    anywhere on the infinite lattice.
    """
    if side < 1:
        raise ValueError("cube side must be at least 1")
    work = array.astype(np.float64, copy=False)
    if pad and side > 1:
        work = np.pad(work, side - 1, mode="constant", constant_values=0.0)
    for axis in range(work.ndim):
        if work.shape[axis] < side:
            # The (padded) window is thinner than the cube along this axis;
            # the only meaningful window is the full extent.
            work = work.sum(axis=axis, keepdims=True)
            continue
        # window sum = csum[i + side - 1] - csum[i - 1]; the first window has
        # no lag term.
        csum = np.cumsum(work, axis=axis)
        first = np.take(csum, [side - 1], axis=axis)
        rest = np.take(csum, range(side, csum.shape[axis]), axis=axis) - np.take(
            csum, range(0, csum.shape[axis] - side), axis=axis
        )
        work = np.concatenate([first, rest], axis=axis)
    return work


def max_cube_sum(demand: Mapping[Point, float], side: int, *, box: Box | None = None) -> float:
    """Largest total demand over any ``side``-cube (any position)."""
    if not demand:
        return 0.0
    if box is None:
        from repro.grid.lattice import bounding_box

        box = bounding_box(demand.keys())
    array = dense_demand_array(demand, box)
    sums = sliding_cube_sums(array, side, pad=True)
    return float(sums.max()) if sums.size else 0.0


def max_cube_sums(
    demand: Mapping[Point, float],
    sides: Iterable[int],
    *,
    box: Box | None = None,
) -> Dict[int, float]:
    """Largest total demand per cube side, computed on a shared dense array."""
    sides = sorted(set(int(s) for s in sides))
    if any(s < 1 for s in sides):
        raise ValueError("cube sides must be at least 1")
    if not demand:
        return {s: 0.0 for s in sides}
    if box is None:
        from repro.grid.lattice import bounding_box

        box = bounding_box(demand.keys())
    array = dense_demand_array(demand, box)
    result: Dict[int, float] = {}
    for side in sides:
        sums = sliding_cube_sums(array, side, pad=True)
        result[side] = float(sums.max()) if sums.size else 0.0
    return result
