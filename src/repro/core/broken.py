"""Chapter 4: broken vehicles (longevity parameters).

Every vehicle ``i`` carries a longevity parameter ``p_i`` in ``[0, 1]`` and
breaks down after spending a fraction ``p_i`` of its initial energy: a
vehicle with ``p_i = 0`` is broken from the start, ``p_i = 1`` never breaks
early.  Chapter 4 shows that the LP machinery of Chapter 2 still yields a
lower bound on the required capacity ``W_off-b`` (Theorem 4.1.1) but that,
unlike the unbroken case, the bound is *not* tight up to a constant: the
Figure 4.1 instance needs ``Theta(r1^2)`` capacity while the LP bound is
only ``2 r1`` because a single surviving vehicle must shuttle between two
alternating demand points.

This module provides the longevity model, the generalized ``omega``
equation of Theorem 4.1.1, the exhaustive/cube maximizations, the Figure
4.1 instance generator with its closed-form actual requirement, and a small
single-vehicle shuttle simulator used to validate that closed form.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.demand import DemandMap, JobSequence
from repro.core.omega import MAX_EXHAUSTIVE_SUPPORT
from repro.grid.lattice import Point, manhattan
from repro.grid.regions import Region, neighborhood

__all__ = [
    "LongevityMap",
    "broken_omega_for_region",
    "broken_lower_bound",
    "figure41_instance",
    "figure41_lp_lower_bound",
    "figure41_actual_requirement",
    "simulate_single_vehicle_shuttle",
]


class LongevityMap:
    """Per-vehicle longevity parameters with a default value.

    The lattice hosts a vehicle at every vertex; only finitely many can have
    a non-default longevity, so the map stores sparse overrides over a
    default (the thesis's examples use default 1 -- healthy vehicles -- with
    a region of broken ones).
    """

    def __init__(
        self,
        overrides: Optional[Mapping[Sequence[int], float]] = None,
        *,
        default: float = 1.0,
    ) -> None:
        if not 0.0 <= default <= 1.0:
            raise ValueError(f"default longevity must be in [0, 1], got {default}")
        self.default = float(default)
        self._overrides: Dict[Point, float] = {}
        for raw_point, value in (overrides or {}).items():
            value = float(value)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"longevity must be in [0, 1], got {value} at {raw_point}")
            self._overrides[tuple(int(c) for c in raw_point)] = value

    def __getitem__(self, point: Sequence[int]) -> float:
        return self._overrides.get(tuple(int(c) for c in point), self.default)

    def overrides(self) -> Dict[Point, float]:
        """A copy of the sparse overrides."""
        return dict(self._overrides)

    def set(self, point: Sequence[int], value: float) -> None:
        """Set one vehicle's longevity."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"longevity must be in [0, 1], got {value}")
        self._overrides[tuple(int(c) for c in point)] = float(value)


def broken_omega_for_region(
    demand: DemandMap,
    longevity: LongevityMap,
    region: Region | Iterable[Sequence[int]],
    *,
    max_radius: Optional[int] = None,
) -> float:
    """Solve Theorem 4.1.1's generalized equation for one region ``T``.

    The equation is ``omega * sum_{i : dist(i, T) <= p_i * omega} p_i =
    sum_{x in T} d(x)``; as with the unbroken ``omega_T`` we take the
    threshold (infimum) reading.  The relevant vehicles are those within
    distance ``p_i * omega <= omega`` of ``T``, so the search expands the
    candidate radius geometrically until the threshold is reachable.
    """
    if not isinstance(region, Region):
        region = Region.from_points(region)
    if region.is_empty():
        raise ValueError("omega_T is defined for non-empty regions only")
    total = demand.total_over(region)
    if total == 0:
        return 0.0

    radius = 1
    while True:
        if max_radius is not None:
            radius = min(radius, max_radius)
        candidates = neighborhood(region.points, radius)
        # Breakpoints of the step function f(omega) = sum of p_i over
        # vehicles whose (scaled) reach covers T.
        entries: List[Tuple[float, float]] = []  # (activation omega, p_i)
        for vehicle in candidates:
            p = longevity[vehicle]
            if p <= 0:
                continue
            dist = region.distance_to(vehicle)
            activation = dist / p
            entries.append((activation, p))
        entries.sort()
        # Evaluate the threshold on the breakpoint grid restricted to
        # omega <= radius (vehicles beyond `radius` are not yet included).
        cumulative = 0.0
        solution: Optional[float] = None
        index = 0
        breakpoints = sorted({activation for activation, _ in entries if activation <= radius})
        breakpoints.append(float(radius))
        for point_index, start in enumerate(breakpoints):
            while index < len(entries) and entries[index][0] <= start:
                cumulative += entries[index][1]
                index += 1
            if cumulative <= 0:
                continue
            end = breakpoints[point_index + 1] if point_index + 1 < len(breakpoints) else float(radius)
            candidate = max(total / cumulative, start)
            if candidate <= end + 1e-12:
                solution = candidate
                break
        if solution is not None:
            return solution
        if max_radius is not None and radius >= max_radius:
            # Cannot be satisfied within the allowed radius (e.g. all nearby
            # vehicles are broken); report the unreachable requirement.
            return math.inf
        radius *= 2


def broken_lower_bound(
    demand: DemandMap,
    longevity: LongevityMap,
    *,
    exhaustive: bool = True,
) -> float:
    """Theorem 4.1.1's lower bound ``max_T omega_T`` for the broken model.

    With ``exhaustive=True`` the maximum ranges over all subsets of the
    demand support (small instances); otherwise only over single points and
    the full support, which is what the Figure 4.1 analysis needs.
    """
    support = demand.support()
    if not support:
        return 0.0
    candidates: List[Tuple[Point, ...]] = []
    if exhaustive:
        if len(support) > MAX_EXHAUSTIVE_SUPPORT:
            raise ValueError(
                f"support of size {len(support)} too large for exhaustive subsets"
            )
        for size in range(1, len(support) + 1):
            candidates.extend(itertools.combinations(support, size))
    else:
        candidates.extend((point,) for point in support)
        candidates.append(tuple(support))
    best = 0.0
    for subset in candidates:
        value = broken_omega_for_region(demand, longevity, subset)
        if value > best:
            best = value
    return best


# --------------------------------------------------------------------------- #
# The Figure 4.1 instance
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Figure41Instance:
    """The adversarial instance of Section 4.2.

    Demands ``r1`` at ``i = (-r1, 0)`` and ``j = (r1, 0)``; the only healthy
    vehicle near them is ``k = (0, 0)``; every other vehicle within distance
    ``r2`` of ``i`` or ``j`` is broken from the start (``p = 0``); vehicles
    beyond are healthy (``p = 1``) but too far to matter when ``r2 >> r1``.
    Requests alternate ``i, j, i, j, ...``.
    """

    r1: int
    r2: int
    demand: DemandMap
    longevity: LongevityMap
    jobs: JobSequence
    point_i: Point
    point_j: Point
    point_k: Point


def figure41_instance(r1: int, r2: int) -> Figure41Instance:
    """Build the Figure 4.1 instance for given ``r1`` and ``r2 >> r1``."""
    if r1 < 1:
        raise ValueError("r1 must be at least 1")
    if r2 <= 2 * r1:
        raise ValueError("the construction needs r2 > 2 * r1 (the thesis takes r2 >> r1)")
    point_i: Point = (-r1, 0)
    point_j: Point = (r1, 0)
    point_k: Point = (0, 0)
    demand = DemandMap({point_i: float(r1), point_j: float(r1)})
    # Vehicles within distance r2 of i or j are broken, except k.
    overrides: Dict[Point, float] = {}
    broken_zone = neighborhood([point_i, point_j], r2)
    for vehicle in broken_zone:
        overrides[vehicle] = 0.0
    overrides[point_k] = 1.0
    longevity = LongevityMap(overrides, default=1.0)
    positions: List[Point] = []
    for _ in range(r1):
        positions.append(point_i)
        positions.append(point_j)
    jobs = JobSequence.from_positions(positions)
    return Figure41Instance(
        r1=r1,
        r2=r2,
        demand=demand,
        longevity=longevity,
        jobs=jobs,
        point_i=point_i,
        point_j=point_j,
        point_k=point_k,
    )


def figure41_lp_lower_bound(instance: Figure41Instance) -> float:
    """The LP (4.1) value for the instance: ``2 r1`` (vehicle k ships r1 to each)."""
    return broken_omega_for_region(
        instance.demand, instance.longevity, [instance.point_i, instance.point_j]
    )


def figure41_actual_requirement(r1: int) -> float:
    """The true capacity requirement of the Figure 4.1 instance.

    Vehicle ``k`` alone must serve the alternating sequence: it walks ``r1``
    to the first request and ``2 r1`` for each of the remaining ``2 r1 - 1``
    requests, and spends one unit of service per request, so

        W_off-b  =  r1 + (2 r1 - 1) * 2 r1  +  2 r1   =  Theta(r1^2).
    """
    travel = r1 + (2 * r1 - 1) * (2 * r1)
    service = 2 * r1
    return float(travel + service)


def simulate_single_vehicle_shuttle(jobs: JobSequence, start: Sequence[int]) -> float:
    """Energy a single vehicle starting at ``start`` needs to serve ``jobs``.

    Serves requests in arrival order, walking directly to each; returns the
    total travel-plus-service energy.  Used to validate
    :func:`figure41_actual_requirement` by actually executing the shuttle.
    """
    position = tuple(int(c) for c in start)
    energy = 0.0
    for job in jobs:
        energy += manhattan(position, job.position) + job.energy
        position = job.position
    return energy
