"""Demand maps and timed job sequences.

The thesis's problem statement (Section 1.3) places one customer and one
depot (with one vehicle) at every lattice vertex.  A sequence of ``k``
unit-energy service requests arrives at positions ``x_1, ..., x_k`` at
strictly increasing times; the demand ``d(x)`` of a position is the number
of requests that arrive there.

:class:`DemandMap` is the *offline* view -- a sparse non-negative function
``d: Z^l -> R_{>=0}`` with finite support (the thesis uses integer unit
demands, but Chapter 2's LP machinery is stated for arbitrary non-negative
demands, so we allow reals).  :class:`JobSequence` is the *online* view --
an ordered list of :class:`Job` arrivals; collapsing it yields a demand
map.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.grid.lattice import Box, Point

__all__ = ["DemandMap", "Job", "JobSequence"]


class DemandMap:
    """A sparse, finitely-supported demand function on the lattice.

    Parameters
    ----------
    demands:
        Mapping from lattice points to non-negative demand values.  Zero
        entries are dropped.
    dim:
        Lattice dimension.  Required when ``demands`` is empty; otherwise it
        is inferred and cross-checked.
    """

    def __init__(
        self,
        demands: Mapping[Sequence[int], float] | None = None,
        *,
        dim: int | None = None,
    ) -> None:
        cleaned: Dict[Point, float] = {}
        for raw_point, value in (demands or {}).items():
            point = tuple(int(c) for c in raw_point)
            value = float(value)
            if value < 0:
                raise ValueError(f"negative demand {value} at {point}")
            if not math.isfinite(value):
                raise ValueError(f"non-finite demand {value} at {point}")
            if value == 0:
                continue
            cleaned[point] = cleaned.get(point, 0.0) + value
        inferred_dims = {len(p) for p in cleaned}
        if len(inferred_dims) > 1:
            raise ValueError(f"points of mixed dimensions: {sorted(inferred_dims)}")
        if cleaned:
            inferred = inferred_dims.pop()
            if dim is not None and dim != inferred:
                raise ValueError(f"dim={dim} but points have dimension {inferred}")
            dim = inferred
        if dim is None:
            raise ValueError("dim is required for an empty demand map")
        if dim < 1:
            raise ValueError("dimension must be at least 1")
        self._demands = cleaned
        self._dim = dim

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_jobs(jobs: Iterable["Job"], *, dim: int | None = None) -> "DemandMap":
        """Collapse a job sequence into its demand map (1 unit per job)."""
        demands: Dict[Point, float] = {}
        for job in jobs:
            demands[job.position] = demands.get(job.position, 0.0) + job.energy
        return DemandMap(demands, dim=dim) if (demands or dim is not None) else DemandMap(
            demands, dim=2
        )

    @staticmethod
    def uniform_on_box(box: Box, demand: float) -> "DemandMap":
        """Demand ``demand`` at every point of ``box`` (Examples 2.1.1/2.1.2)."""
        return DemandMap({p: demand for p in box.points()}, dim=box.dim)

    @staticmethod
    def point_demand(point: Sequence[int], demand: float) -> "DemandMap":
        """All demand concentrated at a single point (Example 2.1.3)."""
        point = tuple(int(c) for c in point)
        return DemandMap({point: demand}, dim=len(point))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        """Lattice dimension ``l``."""
        return self._dim

    def __len__(self) -> int:
        return len(self._demands)

    def __iter__(self) -> Iterator[Point]:
        return iter(sorted(self._demands))

    def __contains__(self, point: object) -> bool:
        return point in self._demands

    def __getitem__(self, point: Sequence[int]) -> float:
        return self._demands.get(tuple(int(c) for c in point), 0.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DemandMap):
            return NotImplemented
        return self._dim == other._dim and self._demands == other._demands

    def __repr__(self) -> str:
        return (
            f"DemandMap(dim={self._dim}, support={len(self._demands)}, "
            f"total={self.total():g})"
        )

    def items(self) -> Iterator[Tuple[Point, float]]:
        """Iterate ``(point, demand)`` pairs in sorted point order."""
        for point in sorted(self._demands):
            yield point, self._demands[point]

    def as_dict(self) -> Dict[Point, float]:
        """A copy of the underlying sparse dictionary."""
        return dict(self._demands)

    def support(self) -> List[Point]:
        """Sorted list of points with strictly positive demand."""
        return sorted(self._demands)

    def support_array(self) -> "np.ndarray":
        """The support as an ``(n, dim)`` int array, unsorted.

        The batch fleet constructor only needs the support's *set* of
        points (it derives cube indices and uniquifies), so this skips the
        Python tuple sort :meth:`support` pays.
        """
        import numpy as np

        if not self._demands:
            return np.empty((0, self._dim), dtype=np.int64)
        return np.fromiter(
            (c for point in self._demands for c in point),
            dtype=np.int64,
            count=len(self._demands) * self._dim,
        ).reshape(len(self._demands), self._dim)

    def is_empty(self) -> bool:
        """Whether the demand map has empty support."""
        return not self._demands

    # ------------------------------------------------------------------ #
    # aggregate statistics used by Algorithm 1
    # ------------------------------------------------------------------ #

    def total(self) -> float:
        """Total demand ``sum_x d(x)``."""
        return sum(self._demands.values())

    def max_demand(self) -> float:
        """The maximal per-point demand ``D`` (0 for empty maps)."""
        return max(self._demands.values(), default=0.0)

    def average_demand_over(self, box: Box) -> float:
        """Average demand ``D_hat`` over a finite window ``box``.

        Algorithm 1 computes ``D_hat = sum d(x) / n^l`` over the ``n x n``
        window, counting zero-demand vertices in the denominator.
        """
        inside = sum(v for p, v in self._demands.items() if p in box)
        return inside / box.size

    def restricted_to(self, box: Box) -> "DemandMap":
        """The demand map restricted to points inside ``box``."""
        return DemandMap(
            {p: v for p, v in self._demands.items() if p in box}, dim=self._dim
        )

    def total_over(self, points: Iterable[Sequence[int]]) -> float:
        """Total demand over an explicit point collection."""
        return sum(self[p] for p in points)

    def bounding_box(self) -> Box:
        """Smallest box containing the support (raises when empty)."""
        if not self._demands:
            raise ValueError("empty demand map has no bounding box")
        # One vectorized min/max pass; DemandMap keys are canonical int
        # tuples of uniform dimension, so this equals lattice.bounding_box.
        support = self.support_array()
        return Box(
            tuple(support.min(axis=0).tolist()), tuple(support.max(axis=0).tolist())
        )

    def scaled(self, factor: float) -> "DemandMap":
        """A copy with every demand multiplied by ``factor >= 0``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return DemandMap(
            {p: v * factor for p, v in self._demands.items()}, dim=self._dim
        )

    def merged_with(self, other: "DemandMap") -> "DemandMap":
        """Pointwise sum of two demand maps of the same dimension."""
        if other.dim != self._dim:
            raise ValueError("dimension mismatch")
        merged = dict(self._demands)
        for point, value in other._demands.items():
            merged[point] = merged.get(point, 0.0) + value
        return DemandMap(merged, dim=self._dim)


@dataclass(frozen=True, order=True)
class Job:
    """A single service request.

    The thesis uses unit-energy requests; ``energy`` is kept as a field so
    that workload generators can also express aggregated requests when a
    position receives many unit jobs back to back.
    """

    time: float
    position: Point
    energy: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "position", tuple(int(c) for c in self.position))
        if self.energy <= 0:
            raise ValueError(f"job energy must be positive, got {self.energy}")
        if not math.isfinite(self.time):
            raise ValueError("job time must be finite")

    @classmethod
    def trusted(cls, time: float, position: Point, energy: float = 1.0) -> "Job":
        """Construct without re-validation.

        ``position`` must already be a tuple of ints and the fields valid
        -- the fast path for callers rebuilding jobs that were valid
        ``Job`` objects before serialization (e.g. sharded workers), where
        the per-job ``__post_init__`` sweep dominates at 10^5 jobs.
        """
        job = object.__new__(cls)
        object.__setattr__(job, "time", time)
        object.__setattr__(job, "position", position)
        object.__setattr__(job, "energy", energy)
        return job


@dataclass
class JobSequence:
    """An ordered sequence of jobs with strictly increasing arrival times."""

    jobs: List[Job] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs)
        for earlier, later in zip(self.jobs, self.jobs[1:]):
            if later.time <= earlier.time:
                raise ValueError(
                    "job arrival times must be strictly increasing "
                    f"({earlier.time} then {later.time})"
                )

    @staticmethod
    def from_positions(positions: Sequence[Sequence[int]]) -> "JobSequence":
        """Unit jobs arriving at integer times 1, 2, 3, ... at the given positions."""
        return JobSequence(
            [Job(time=float(i + 1), position=tuple(p)) for i, p in enumerate(positions)]
        )

    @staticmethod
    def from_sorted(jobs: List[Job]) -> "JobSequence":
        """Wrap an already strictly-increasing job list without re-sorting.

        The monotonicity check in ``__post_init__`` is skipped too -- for
        callers holding a subsequence of an existing (validated) sequence,
        such as sharded workers receiving their per-shard job slice.
        """
        sequence = JobSequence.__new__(JobSequence)
        sequence.jobs = jobs
        return sequence

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> Job:
        return self.jobs[index]

    def is_empty(self) -> bool:
        """Whether the sequence contains no jobs."""
        return not self.jobs

    @property
    def dim(self) -> int:
        """Lattice dimension (raises when empty)."""
        if not self.jobs:
            raise ValueError("empty job sequence has no dimension")
        return len(self.jobs[0].position)

    def demand_map(self, *, dim: int | None = None) -> DemandMap:
        """Collapse the sequence into its offline demand map."""
        if dim is None and self.jobs:
            dim = self.dim
        return DemandMap.from_jobs(self.jobs, dim=dim)

    def positions(self) -> List[Point]:
        """Arrival positions in arrival order (with repetitions)."""
        return [job.position for job in self.jobs]

    def total_energy(self) -> float:
        """Total service energy requested by the sequence."""
        return sum(job.energy for job in self.jobs)

    def prefix(self, count: int) -> "JobSequence":
        """The sequence of the first ``count`` jobs."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return JobSequence(self.jobs[:count])
