"""Audits of service plans and capacity searches.

The thesis's objective is the smallest battery capacity ``W`` such that
*some* behaviour of the fleet serves every job, counting both travel and
service energy.  An audit therefore checks, for a concrete
:class:`~repro.core.plan.ServicePlan`:

* every unit of demand is delivered (no shortfall),
* no two routes start from the same vehicle (a vehicle exists only once),
* every vehicle's travel-plus-service energy fits within the capacity.

:func:`minimal_feasible_capacity` turns any capacity-parameterized planner
into an empirical upper bound on ``W_off`` by bisection; paired with the
``omega*`` lower bound it produces the sandwich reported in benchmark E5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.demand import DemandMap
from repro.core.plan import ServicePlan
from repro.grid.lattice import Point

__all__ = ["PlanAudit", "audit_plan", "minimal_feasible_capacity"]

#: Relative slack applied when comparing energies against the capacity, so
#: that plans constructed from floating-point omegas are not rejected for
#: rounding noise.
ENERGY_TOLERANCE = 1e-9


@dataclass
class PlanAudit:
    """Result of auditing a plan against a demand map and capacity."""

    feasible: bool
    max_vehicle_energy: float
    total_energy: float
    unserved_demand: float
    capacity: Optional[float]
    violations: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable audit summary."""
        status = "FEASIBLE" if self.feasible else "INFEASIBLE"
        capacity = "unbounded" if self.capacity is None else f"{self.capacity:g}"
        return (
            f"{status}: max vehicle energy {self.max_vehicle_energy:g} "
            f"(capacity {capacity}), total energy {self.total_energy:g}, "
            f"unserved {self.unserved_demand:g}, violations {len(self.violations)}"
        )


def audit_plan(
    plan: ServicePlan,
    demand: DemandMap,
    *,
    capacity: Optional[float] = None,
) -> PlanAudit:
    """Check that ``plan`` serves ``demand`` within the given capacity.

    ``capacity=None`` audits only coverage and vehicle uniqueness (useful for
    measuring the plan's own maximum energy requirement).
    """
    violations: List[str] = []

    # Each vehicle may appear at most once.
    starts: Dict[Point, int] = {}
    for route in plan.routes:
        starts[route.start] = starts.get(route.start, 0) + 1
    for start, count in sorted(starts.items()):
        if count > 1:
            violations.append(f"vehicle at {start} is used by {count} routes")

    # Demand coverage.
    served = plan.served_by_position()
    unserved = 0.0
    for point, value in demand.items():
        delivered = served.get(point, 0.0)
        gap = value - delivered
        if gap > ENERGY_TOLERANCE * max(1.0, value):
            unserved += gap
            violations.append(f"demand at {point}: served {delivered:g} of {value:g}")

    # Energy spent where no demand exists is allowed (it is merely wasted),
    # but flag it: the constructions in the thesis never do this.
    for point, delivered in sorted(served.items()):
        if delivered > demand[point] + ENERGY_TOLERANCE * max(1.0, delivered):
            violations.append(
                f"position {point}: delivered {delivered:g} exceeds demand {demand[point]:g}"
            )

    # Capacity.
    max_energy = plan.max_vehicle_energy()
    if capacity is not None:
        for route in plan.routes:
            if route.total_energy > capacity * (1 + ENERGY_TOLERANCE) + ENERGY_TOLERANCE:
                violations.append(
                    f"vehicle at {route.start} needs {route.total_energy:g} > capacity {capacity:g}"
                )

    feasible = unserved <= ENERGY_TOLERANCE and not any(
        v.startswith("vehicle at") or v.startswith("demand at") for v in violations
    )
    if capacity is not None and max_energy > capacity * (1 + ENERGY_TOLERANCE) + ENERGY_TOLERANCE:
        feasible = False
    return PlanAudit(
        feasible=feasible,
        max_vehicle_energy=max_energy,
        total_energy=plan.total_energy(),
        unserved_demand=unserved,
        capacity=capacity,
        violations=violations,
    )


PlanBuilder = Callable[[float], Optional[ServicePlan]]


def minimal_feasible_capacity(
    demand: DemandMap,
    plan_builder: PlanBuilder,
    *,
    lower: float = 0.0,
    upper: Optional[float] = None,
    tolerance: float = 1e-3,
    max_doublings: int = 60,
) -> Tuple[float, ServicePlan]:
    """Smallest capacity at which ``plan_builder`` yields a feasible plan.

    ``plan_builder(W)`` must return a plan attempt for capacity ``W`` (or
    ``None`` if it cannot produce one); feasibility is decided by
    :func:`audit_plan` with that capacity.  The builder is assumed
    *monotone*: if it succeeds at ``W`` it succeeds at every larger
    capacity.  The returned plan is the one found at the final feasible
    capacity probe.
    """
    if demand.is_empty():
        return 0.0, ServicePlan(dim=demand.dim)

    def feasible(capacity: float) -> Optional[ServicePlan]:
        try:
            plan = plan_builder(capacity)
        except (RuntimeError, ValueError):
            return None
        if plan is None:
            return None
        audit = audit_plan(plan, demand, capacity=capacity)
        return plan if audit.feasible else None

    hi = upper if upper is not None else max(demand.max_demand(), 1.0)
    best_plan = feasible(hi)
    doublings = 0
    while best_plan is None:
        doublings += 1
        if doublings > max_doublings:
            raise RuntimeError("no feasible capacity found (builder may not be monotone)")
        hi *= 2.0
        best_plan = feasible(hi)

    lo = lower
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        plan = feasible(mid)
        if plan is not None:
            hi = mid
            best_plan = plan
        else:
            lo = mid
    return hi, best_plan
