"""Flow-based feasibility oracles for the supply/demand transport problems.

The LP (2.1) asks for the smallest common supply ``omega`` such that every
demand can be covered by flows of length at most ``r``.  For a *fixed*
candidate supply the question "can this supply cover the demand?" is a
bipartite transportation feasibility problem, decided exactly by a single
maximum-flow computation on

    source --(cap omega)--> vehicle i --(cap inf)--> demand j --(cap d(j))--> sink

with an arc ``i -> j`` whenever ``||i - j|| <= r``.  Binary search over the
candidate supply then recovers the LP value without building the explicit
LP, which scales to much larger supports.  The same oracle with ``r``
coupled to the supply gives the self-radius program (2.8), i.e. the
``max_T omega_T`` characterization of Lemma 2.2.3, and (with per-vehicle
travel deductions) the feasibility audit used to certify constructive
service plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.arrays import pairwise_manhattan
from repro.core.demand import DemandMap
from repro.grid.lattice import Point
from repro.grid.regions import neighborhood

__all__ = [
    "FlowAssignment",
    "transport_feasible",
    "min_fixed_radius_capacity",
    "min_self_radius_capacity",
]

#: Scale factor used to turn real capacities into integers for max-flow.
#: Integral capacities keep networkx's algorithms exact and fast.
FLOW_SCALE = 10**6


@dataclass(frozen=True)
class FlowAssignment:
    """A feasible transport assignment.

    Attributes
    ----------
    feasible:
        Whether the full demand could be covered.
    flows:
        Positive flows keyed by ``(vehicle position, demand position)``.
    shortfall:
        Total uncovered demand (zero when feasible).
    """

    feasible: bool
    flows: Dict[Tuple[Point, Point], float]
    shortfall: float


def _as_int(value: float) -> int:
    return int(round(value * FLOW_SCALE))


def transport_feasible(
    demand: DemandMap,
    supplies: Mapping[Point, float],
    radius: float | Mapping[Point, float],
    *,
    return_flows: bool = False,
) -> FlowAssignment:
    """Decide whether the given per-vehicle supplies can cover the demand.

    Parameters
    ----------
    demand:
        The demand map to cover.
    supplies:
        Mapping from vehicle positions to the amount of energy each may ship.
        Vehicles with non-positive supply are ignored.
    radius:
        Either a single transport radius applied to every vehicle, or a
        per-vehicle mapping (used by the broken-vehicle analysis of
        Chapter 4, where vehicle ``i`` may only move ``p_i * omega``).
    return_flows:
        When true the positive flow values are extracted from the max-flow
        solution; otherwise only feasibility and shortfall are reported.
    """
    support = demand.support()
    if not support:
        return FlowAssignment(True, {}, 0.0)
    total_demand = demand.total()

    graph = nx.DiGraph()
    source, sink = "source", "sink"
    graph.add_node(source)
    graph.add_node(sink)
    for target in support:
        graph.add_edge(("d", target), sink, capacity=_as_int(demand[target]))

    # Vectorized reachability: one (vehicles x support) L1 distance matrix
    # replaces the per-pair Python loop -- with a vehicle at every point of
    # ``N_r(support)`` this inner product is the oracle's hot path.
    vehicles = []
    vehicle_supplies = []
    reaches = []
    for vehicle, supply in supplies.items():
        if supply <= 0:
            continue
        vehicle = tuple(int(c) for c in vehicle)
        reach = radius[vehicle] if isinstance(radius, Mapping) else radius
        if reach < 0:
            continue
        vehicles.append(vehicle)
        vehicle_supplies.append(supply)
        reaches.append(reach)
    if not vehicles:
        return FlowAssignment(False, {}, total_demand)
    distances = pairwise_manhattan(
        np.array(vehicles, dtype=np.int64), np.array(support, dtype=np.int64)
    )
    reachable = distances <= np.array(reaches, dtype=np.float64)[:, None]

    any_edges = False
    demand_capacity = _as_int(total_demand)
    for row, vehicle in enumerate(vehicles):
        targets = np.flatnonzero(reachable[row])
        if targets.size == 0:
            continue
        graph.add_edge(source, ("v", vehicle), capacity=_as_int(vehicle_supplies[row]))
        for column in targets:
            graph.add_edge(("v", vehicle), ("d", support[column]), capacity=demand_capacity)
            any_edges = True
    if not any_edges:
        return FlowAssignment(False, {}, total_demand)

    flow_value, flow_dict = nx.maximum_flow(graph, source, sink)
    shortfall = max(0.0, total_demand - flow_value / FLOW_SCALE)
    feasible = shortfall <= 1e-6 * max(1.0, total_demand)
    flows: Dict[Tuple[Point, Point], float] = {}
    if return_flows:
        for node, targets in flow_dict.items():
            if not (isinstance(node, tuple) and node and node[0] == "v"):
                continue
            vehicle = node[1]
            for target_node, amount in targets.items():
                if amount <= 0:
                    continue
                flows[(vehicle, target_node[1])] = amount / FLOW_SCALE
    return FlowAssignment(feasible, flows, shortfall)


def _uniform_supplies(demand: DemandMap, capacity: float, radius: float) -> Dict[Point, float]:
    """One vehicle of the given capacity at every point of ``N_radius(support)``.

    The thesis places a vehicle at *every* lattice vertex; vehicles beyond
    distance ``radius`` of the support can never contribute, so this finite
    restriction is exact.
    """
    support = demand.support()
    return {p: capacity for p in neighborhood(support, radius)}


def min_fixed_radius_capacity(
    demand: DemandMap,
    radius: float,
    *,
    tolerance: float = 1e-6,
) -> float:
    """Smallest uniform supply covering the demand with transport radius ``r``.

    This is the value of LP (2.1), computed by binary search over the supply
    with the max-flow oracle deciding each probe.
    """
    if demand.is_empty():
        return 0.0
    supplies_at = lambda capacity: _uniform_supplies(demand, capacity, radius)
    hi = max(demand.max_demand(), 1.0)
    while not transport_feasible(demand, supplies_at(hi), radius).feasible:
        hi *= 2.0
    lo = 0.0
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        if transport_feasible(demand, supplies_at(mid), radius).feasible:
            hi = mid
        else:
            lo = mid
    return hi


def min_self_radius_capacity(
    demand: DemandMap,
    *,
    tolerance: float = 1e-6,
) -> float:
    """Smallest capacity ``W`` feasible when the transport radius equals ``W``.

    This is the value of program (2.8); by Lemma 2.2.3 it equals
    ``max_T omega_T``, which the omega solvers compute combinatorially --
    the two paths cross-validate each other in the test suite.
    """
    if demand.is_empty():
        return 0.0

    def feasible(capacity: float) -> bool:
        supplies = _uniform_supplies(demand, capacity, capacity)
        return transport_feasible(demand, supplies, capacity).feasible

    hi = max(demand.max_demand(), 1.0)
    while not feasible(hi):
        hi *= 2.0
    lo = 0.0
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi
