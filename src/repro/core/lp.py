"""The linear programs of Chapter 2 and their duals.

This module spells out, executably, every program appearing in Section 2.2:

* :func:`supply_radius_lp` -- the primal LP (2.1): minimize the common
  vehicle supply ``omega`` such that flows of length at most ``r`` can cover
  the demand.
* :func:`dual_alpha_lp` -- the dual LP (2.4)/(2.5) over vertex weights
  ``alpha_i`` summing to one.
* :func:`alpha_to_h` / :func:`h_objective` -- the Lemma 2.2.1 equivalence
  between the ``alpha`` formulation (2.2)/(2.5) and the subset-weight
  formulation (2.3)/(2.6), realized as the level-set decomposition sketched
  in Figures 2.4 and 2.5.
* :func:`lp_value_by_subsets` -- the closed form of Lemma 2.2.2,
  ``max_T  sum_{x in T} d(x) / |N_r(T)|``, evaluated exhaustively over
  subsets of the support (small instances only; used to cross-check the LP
  backends).
* :func:`capacity_lp_value` -- the self-radius program (2.8), solved via the
  monotone fixed point ``omega = omega(r = omega)`` exactly as in
  Lemma 2.2.3.

All vehicles relevant to a radius-``r`` program sit within distance ``r`` of
the demand support (vehicles further away cannot route any flow), so the
infinite-lattice programs reduce to finite LPs over ``N_r(support)``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.core.demand import DemandMap
from repro.core.omega import MAX_EXHAUSTIVE_SUPPORT
from repro.grid.lattice import Point, manhattan
from repro.grid.regions import Region, neighborhood

__all__ = [
    "LPSolution",
    "DualSolution",
    "supply_radius_lp",
    "dual_alpha_lp",
    "lp_value_by_subsets",
    "alpha_to_h",
    "h_objective",
    "alpha_objective",
    "capacity_lp_value",
]

#: Guard on the number of flow variables in the explicit LP formulations.
MAX_LP_VARIABLES = 200_000


@dataclass(frozen=True)
class LPSolution:
    """Solution of the primal supply LP (2.1).

    Attributes
    ----------
    value:
        The optimal common supply ``omega``.
    flows:
        Optimal flows ``f_ij`` keyed by ``(vehicle position, demand position)``;
        only strictly positive flows are kept.
    vehicles:
        The finite set of vehicle positions included in the program
        (``N_r(support)``).
    """

    value: float
    flows: Dict[Tuple[Point, Point], float]
    vehicles: Tuple[Point, ...]


@dataclass(frozen=True)
class DualSolution:
    """Solution of the dual LP (2.4)/(2.5)."""

    value: float
    alpha: Dict[Point, float]


def _relevant_vehicles(demand: DemandMap, radius: float) -> List[Point]:
    """Vehicle positions within distance ``radius`` of the demand support."""
    support = demand.support()
    if not support:
        return []
    return sorted(neighborhood(support, radius))


def _flow_pairs(
    vehicles: Sequence[Point], support: Sequence[Point], radius: float
) -> List[Tuple[Point, Point]]:
    """All admissible ``(vehicle, demand)`` pairs at distance at most ``radius``."""
    pairs: List[Tuple[Point, Point]] = []
    for vehicle in vehicles:
        for target in support:
            if manhattan(vehicle, target) <= radius:
                pairs.append((vehicle, target))
    return pairs


def supply_radius_lp(demand: DemandMap, radius: float) -> LPSolution:
    """Solve the primal LP (2.1) for a fixed transport radius ``r``.

    Minimize ``omega`` subject to: every vehicle ships at most ``omega``,
    every demand point receives at least its demand, and flows only travel
    between positions at Manhattan distance at most ``r``.
    """
    support = demand.support()
    if not support:
        return LPSolution(0.0, {}, ())
    vehicles = _relevant_vehicles(demand, radius)
    pairs = _flow_pairs(vehicles, support, radius)
    num_vars = 1 + len(pairs)  # omega plus one flow per admissible pair
    if num_vars > MAX_LP_VARIABLES:
        raise ValueError(
            f"LP would need {num_vars} variables (limit {MAX_LP_VARIABLES}); "
            "use the flow-based oracle for instances of this size"
        )
    pair_index = {pair: 1 + k for k, pair in enumerate(pairs)}
    vehicle_rows = {v: i for i, v in enumerate(vehicles)}
    demand_rows = {d: i for i, d in enumerate(support)}

    # Objective: minimize omega.
    cost = np.zeros(num_vars)
    cost[0] = 1.0

    # Inequalities A_ub x <= b_ub.
    rows: List[Tuple[int, int, float]] = []
    b_ub = np.zeros(len(vehicles) + len(support))
    # (a) outflow of vehicle i minus omega <= 0
    for (vehicle, target), col in pair_index.items():
        rows.append((vehicle_rows[vehicle], col, 1.0))
    for i in range(len(vehicles)):
        rows.append((i, 0, -1.0))
    # (b) -inflow of demand j <= -d(j)
    offset = len(vehicles)
    for (vehicle, target), col in pair_index.items():
        rows.append((offset + demand_rows[target], col, -1.0))
    for target, row in demand_rows.items():
        b_ub[offset + row] = -demand[target]

    a_ub = np.zeros((len(vehicles) + len(support), num_vars))
    for row, col, coeff in rows:
        a_ub[row, col] += coeff

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"supply LP failed: {result.message}")
    flows: Dict[Tuple[Point, Point], float] = {}
    for pair, col in pair_index.items():
        value = float(result.x[col])
        if value > 1e-12:
            flows[pair] = value
    return LPSolution(float(result.x[0]), flows, tuple(vehicles))


def dual_alpha_lp(demand: DemandMap, radius: float) -> DualSolution:
    """Solve the dual LP (2.4)/(2.5) for a fixed transport radius ``r``.

    Maximize ``sum_j d(j) * beta_j`` subject to ``sum_i alpha_i <= 1`` and
    ``beta_j <= alpha_i`` for every ``i`` within distance ``r`` of ``j``.
    By LP duality its value equals :func:`supply_radius_lp`.
    """
    support = demand.support()
    if not support:
        return DualSolution(0.0, {})
    vehicles = _relevant_vehicles(demand, radius)
    pairs = _flow_pairs(vehicles, support, radius)
    alpha_index = {v: i for i, v in enumerate(vehicles)}
    beta_index = {d: len(vehicles) + i for i, d in enumerate(support)}
    num_vars = len(vehicles) + len(support)
    if num_vars + len(pairs) > MAX_LP_VARIABLES:
        raise ValueError("dual LP too large; reduce the instance")

    # linprog minimizes, so negate the objective.
    cost = np.zeros(num_vars)
    for target in support:
        cost[beta_index[target]] = -demand[target]

    num_rows = 1 + len(pairs)
    a_ub = np.zeros((num_rows, num_vars))
    b_ub = np.zeros(num_rows)
    # sum_i alpha_i <= 1
    for vehicle in vehicles:
        a_ub[0, alpha_index[vehicle]] = 1.0
    b_ub[0] = 1.0
    # beta_j - alpha_i <= 0 for admissible pairs
    for row, (vehicle, target) in enumerate(pairs, start=1):
        a_ub[row, beta_index[target]] = 1.0
        a_ub[row, alpha_index[vehicle]] = -1.0

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"dual LP failed: {result.message}")
    alpha = {
        vehicle: float(result.x[alpha_index[vehicle]])
        for vehicle in vehicles
        if result.x[alpha_index[vehicle]] > 1e-12
    }
    return DualSolution(-float(result.fun), alpha)


def lp_value_by_subsets(demand: DemandMap, radius: float) -> Tuple[float, Optional[Region]]:
    """Evaluate Lemma 2.2.2's closed form ``max_T sum_T d / |N_r(T)|``.

    The maximum over all subsets of the lattice is attained on a subset of
    the support (zero-demand points only enlarge the neighborhood), so the
    search enumerates subsets of the support.  Exponential -- guarded to
    small supports, used to cross-check the LP backends.
    """
    support = demand.support()
    if not support:
        return 0.0, None
    if len(support) > MAX_EXHAUSTIVE_SUPPORT:
        raise ValueError(
            f"support of size {len(support)} too large for exhaustive subsets"
        )
    best = 0.0
    best_region: Optional[Region] = None
    for size in range(1, len(support) + 1):
        for subset in itertools.combinations(support, size):
            region = Region.from_points(subset)
            ratio = demand.total_over(subset) / region.neighborhood_size(radius)
            if ratio > best:
                best = ratio
                best_region = region
    return best, best_region


# --------------------------------------------------------------------------- #
# Lemma 2.2.1: the alpha <-> h equivalence (Figures 2.4 / 2.5)
# --------------------------------------------------------------------------- #


def alpha_objective(demand: DemandMap, radius: float, alpha: Mapping[Point, float]) -> float:
    """Objective of LP (2.2)/(2.5): ``sum_j d(j) * min_{i in N_r(j)} alpha_i``.

    Positions absent from ``alpha`` carry weight zero.
    """
    total = 0.0
    for target, value in demand.items():
        ball = neighborhood([target], radius)
        total += value * min(alpha.get(p, 0.0) for p in ball)
    return total


def alpha_to_h(alpha: Mapping[Point, float]) -> Dict[FrozenSet[Point], float]:
    """Decompose vertex weights ``alpha`` into nested subset weights ``h``.

    This is the constructive step of Lemma 2.2.1 (illustrated in Figures 2.4
    and 2.5): peel the weight profile into its super-level sets.  Every
    distinct positive level ``t`` contributes, for each lattice-connected
    component ``T`` of ``{i : alpha_i >= t}``, the weight ``t - t'`` where
    ``t'`` is the next lower level (or zero).  The resulting family is
    laminar, satisfies ``sum_T h(T) |T| = sum_i alpha_i`` and, for every
    ``j``, ``sum_{T contains N_r(j)} h(T) = min_{i in N_r(j)} alpha_i``
    whenever the ball around ``j`` is contained in the support of ``alpha``.
    """
    positive = {tuple(p): float(v) for p, v in alpha.items() if v > 0}
    if not positive:
        return {}
    levels = sorted(set(positive.values()))
    h: Dict[FrozenSet[Point], float] = {}
    previous = 0.0
    for level in levels:
        members = [p for p, v in positive.items() if v >= level]
        weight = level - previous
        for component in _lattice_components(members):
            key = frozenset(component)
            h[key] = h.get(key, 0.0) + weight
        previous = level
    return h


def h_objective(
    demand: DemandMap, radius: float, h: Mapping[FrozenSet[Point], float]
) -> float:
    """Objective of LP (2.3)/(2.6): ``sum_j d(j) * sum_{T : N_r(j) subset T} h(T)``."""
    total = 0.0
    for target, value in demand.items():
        ball = neighborhood([target], radius)
        contribution = sum(
            weight for subset, weight in h.items() if ball.issubset(subset)
        )
        total += value * contribution
    return total


def h_mass(h: Mapping[FrozenSet[Point], float]) -> float:
    """The constraint quantity ``sum_T h(T) |T|`` of LP (2.3)/(2.6)."""
    return sum(weight * len(subset) for subset, weight in h.items())


def _lattice_components(points: Sequence[Point]) -> List[List[Point]]:
    """Connected components of a finite point set under lattice adjacency."""
    remaining = set(points)
    components: List[List[Point]] = []
    while remaining:
        seed = remaining.pop()
        stack = [seed]
        component = [seed]
        while stack:
            current = stack.pop()
            for axis in range(len(current)):
                for delta in (-1, 1):
                    candidate = (
                        current[:axis] + (current[axis] + delta,) + current[axis + 1 :]
                    )
                    if candidate in remaining:
                        remaining.remove(candidate)
                        stack.append(candidate)
                        component.append(candidate)
        components.append(sorted(component))
    return components


# --------------------------------------------------------------------------- #
# The self-radius program (2.8)
# --------------------------------------------------------------------------- #


def capacity_lp_value(
    demand: DemandMap,
    *,
    tolerance: float = 1e-6,
    max_iterations: int = 200,
) -> float:
    """Value of the self-radius program (2.8): the fixed point ``omega = omega(r=omega)``.

    Lemma 2.2.3 shows the program's value is the unique solution of
    ``omega = max_T sum_T d / |N_omega(T)|``.  Because ``omega(r)`` (the
    fixed-radius LP value) is non-increasing in ``r``, the fixed point is
    found by bisection on ``omega``: the sign of ``omega - omega(r=omega)``
    is monotone.  Each probe solves one finite LP, so this routine is meant
    for modest instances; :func:`repro.core.flows.min_self_radius_capacity`
    provides a max-flow alternative.
    """
    if demand.is_empty():
        return 0.0
    total = demand.total()
    lo, hi = 0.0, float(total)  # omega(r) <= total demand always
    # Make sure hi is above the fixed point: omega(r=hi) <= total = hi.
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        value_at_mid = supply_radius_lp(demand, mid).value
        if value_at_mid > mid:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance * max(1.0, hi):
            break
    return (lo + hi) / 2.0
