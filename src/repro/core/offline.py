"""Algorithm 1 and the offline characterization of ``W_off``.

The thesis characterizes the optimal offline capacity as

    omega*  <=  W_off  <=  (2 * 3^l + l) * omega*          (Theorem 1.4.1)

with ``omega* = max_T omega_T``, and gives a linear-time
``2 (2 * 3^l + l)``-approximation (Algorithm 1, Section 2.3) that works on
an ``n x ... x n`` window with ``n`` a power of two by doubling the cube
side of a dyadic partition until no cube is "too dense".

This module implements Algorithm 1 verbatim (generalized to any dimension
``l``, as the thesis notes is straightforward) and a convenience
:func:`offline_bounds` that assembles every quantity of the offline
characterization for reporting: the ``omega*`` lower bound, the
``(2 * 3^l + l) * omega*`` upper bound, the cube fixed point ``omega_c``
and its sandwich (Corollary 2.2.7), the Algorithm 1 estimate, and the
energy actually required by the constructive plan of Lemma 2.2.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.demand import DemandMap
from repro.core.feasibility import audit_plan
from repro.core.omega import omega_c, omega_star_cubes
from repro.core.plan import build_cube_plan
from repro.grid.cubes import CoarseningPyramid
from repro.grid.lattice import Box

__all__ = [
    "Algorithm1Result",
    "OfflineBounds",
    "algorithm1",
    "offline_bounds",
    "upper_bound_factor",
    "online_upper_bound_factor",
]


def upper_bound_factor(dim: int) -> int:
    """The offline constant ``2 * 3^l + l`` of Lemma 2.2.5."""
    if dim < 1:
        raise ValueError("dimension must be at least 1")
    return 2 * 3**dim + dim


def online_upper_bound_factor(dim: int) -> int:
    """The online constant ``4 * 3^l + l`` of Lemma 3.3.1."""
    if dim < 1:
        raise ValueError("dimension must be at least 1")
    return 4 * 3**dim + dim


@dataclass(frozen=True)
class Algorithm1Result:
    """Outcome of running Algorithm 1.

    Attributes
    ----------
    estimate:
        The returned estimate of ``W_off`` (an upper bound within a factor
        ``2 (2 * 3^l + l)`` of the optimum).
    terminal_cube_side:
        The cube side ``w`` at which the doubling loop stopped, or ``None``
        when the algorithm exited through one of its early returns.
    early_exit:
        Which early return fired (``"dense"`` for step 2, ``"sparse"`` for
        step 4, ``"full_window"`` for step 7) or ``None`` for the normal
        exit at step 14.
    levels_visited:
        Number of pyramid levels inspected (a proxy for the linear-time
        claim; the work per level shrinks geometrically).
    """

    estimate: float
    terminal_cube_side: Optional[int]
    early_exit: Optional[str]
    levels_visited: int


def algorithm1(demand: DemandMap, window: Box) -> Algorithm1Result:
    """Run Algorithm 1 on the demand restricted to a power-of-two window.

    Parameters
    ----------
    demand:
        The demand map; every demand point must lie inside ``window``.
    window:
        An ``n x ... x n`` box with ``n`` a power of two (the thesis's
        standing assumption for the algorithm).
    """
    dim = window.dim
    sides = set(window.side_lengths)
    if len(sides) != 1:
        raise ValueError("Algorithm 1 requires a cubic window")
    n = sides.pop()
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError(f"window side must be a power of two, got {n}")
    restricted = demand.restricted_to(window)
    if len(restricted) != len(demand):
        raise ValueError("demand has points outside the window")

    factor = upper_bound_factor(dim)
    max_demand = restricted.max_demand()
    avg_demand = restricted.average_demand_over(window)

    # Step 1-2: the window is so dense that vehicles may roam the whole grid.
    if n <= avg_demand:
        estimate = min(max_demand, 2 * avg_demand + dim * n)
        return Algorithm1Result(estimate, None, "dense", 0)
    # Step 3-4: so sparse that vehicles cannot even afford to move.
    if max_demand <= 1:
        return Algorithm1Result(max_demand, None, "sparse", 0)

    pyramid = CoarseningPyramid(window, restricted.as_dict())
    w = 2
    levels = 0
    while True:
        # Step 6-7: the cube side reached the full window.
        if w == n:
            estimate = min(max_demand, 2 * avg_demand + dim * n)
            return Algorithm1Result(estimate, w, "full_window", levels)
        # Steps 8-9: aggregate demand for side-w cubes of the dyadic partition.
        level = pyramid.level_for_side(w)
        levels += 1
        threshold = w * (3 * w) ** dim
        # Steps 10-12: some cube is too dense -> double the side and retry.
        if any(value > threshold for value in level.values()):
            w *= 2
            continue
        # Steps 13-14: every cube fits -> report the upper-bound constant.
        return Algorithm1Result(float(factor * w), w, None, levels)


@dataclass(frozen=True)
class OfflineBounds:
    """Every quantity of the offline characterization, for one demand map."""

    dim: int
    #: ``max_T omega_T`` over cubes (Corollary 2.2.6 lower bound on W_off).
    omega_star: float
    #: ``(2 * 3^l + l) * omega_star`` (Lemma 2.2.5 upper bound on W_off).
    upper_bound: float
    #: The cube fixed point of Corollary 2.2.7 (also a lower bound on W_off).
    omega_c: float
    #: Maximum per-vehicle energy of the Lemma 2.2.5 constructive plan; an
    #: explicit, audited upper bound on W_off (usually far below
    #: ``upper_bound``).
    constructive_capacity: float
    #: The Algorithm 1 estimate, when a power-of-two window was supplied.
    algorithm1_estimate: Optional[float]

    @property
    def sandwich_ratio(self) -> float:
        """``constructive_capacity / omega_star`` -- the realized gap between
        the audited upper bound and the lower bound (1.0 means tight)."""
        if self.omega_star == 0:
            return 1.0
        return self.constructive_capacity / self.omega_star


def offline_bounds(
    demand: DemandMap,
    *,
    window: Optional[Box] = None,
) -> OfflineBounds:
    """Assemble the full offline characterization for a demand map.

    ``window`` (a power-of-two cube containing the support) is only needed
    when the Algorithm 1 estimate is desired.
    """
    dim = demand.dim
    if demand.is_empty():
        return OfflineBounds(dim, 0.0, 0.0, 0.0, 0.0, None)
    star = omega_star_cubes(demand).omega
    upper = upper_bound_factor(dim) * star
    cube_fixed_point = omega_c(demand)
    plan = build_cube_plan(demand, omega=star)
    audit = audit_plan(plan, demand, capacity=None)
    if not audit.feasible:
        raise RuntimeError(
            "the Lemma 2.2.5 constructive plan failed its audit: "
            + "; ".join(audit.violations[:5])
        )
    alg1 = algorithm1(demand, window).estimate if window is not None else None
    return OfflineBounds(
        dim=dim,
        omega_star=star,
        upper_bound=upper,
        omega_c=cube_fixed_point,
        constructive_capacity=audit.max_vehicle_energy,
        algorithm1_estimate=alg1,
    )
