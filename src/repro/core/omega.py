"""Solvers for the ``omega_T`` equation and its cube restrictions.

Equation (1.1) of the thesis defines, for a non-empty region ``T``, the
quantity ``omega_T`` as the solution of

    omega_T * |N_{omega_T}(T)| = sum_{x in T} d(x).

On the integer lattice ``|N_omega(T)|`` only changes at integer values of
``omega``, so the left-hand side is piecewise linear and jumps *up* at
integers; an exact equality may therefore fall inside a jump.  Following
the standard reading of such threshold equations (and because the thesis's
bounds only use ``omega_T`` up to constants) we define

    omega_T = inf { omega >= 0 : omega * |N_omega(T)| >= sum_{x in T} d(x) },

which coincides with the equation's solution whenever one exists and is
well defined otherwise.  All solvers in this module use this definition.

The module provides:

* :func:`omega_for_region` -- ``omega_T`` for an arbitrary finite region.
* :func:`omega_star_exhaustive` -- ``max_T omega_T`` over *all* subsets of
  the demand support (Theorem 1.4.1; exponential, for small instances and
  cross-checks only).
* :func:`omega_star_cubes` -- ``max_T omega_T`` over all axis-aligned cubes
  (Corollary 2.2.6; the quantity the algorithms actually use).
* :func:`omega_c` -- the fixed-point quantity of Corollary 2.2.7 that
  Algorithm 1 approximates.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.arrays import max_cube_sums
from repro.core.demand import DemandMap
from repro.grid.lattice import Box, Point, box_neighborhood_size
from repro.grid.regions import Region

__all__ = [
    "OmegaResult",
    "solve_threshold",
    "omega_for_region",
    "omega_for_box",
    "omega_star_exhaustive",
    "omega_star_cubes",
    "omega_c",
    "demand_cube_maxima",
    "example_square_bound",
    "example_line_bound",
    "example_point_bound",
]

#: Do not attempt the exhaustive subset maximization beyond this support size.
MAX_EXHAUSTIVE_SUPPORT = 18


@dataclass(frozen=True)
class OmegaResult:
    """The outcome of a cube/subset maximization.

    Attributes
    ----------
    omega:
        The maximizing ``omega_T`` value.
    region:
        A region attaining the maximum (``None`` when the demand is empty).
    """

    omega: float
    region: Optional[Region]


def solve_threshold(total_demand: float, neighborhood_size: Callable[[int], int]) -> float:
    """Solve ``inf { w >= 0 : w * f(floor(w)) >= total_demand }``.

    ``neighborhood_size(k)`` must return ``|N_k(T)|`` for integer ``k >= 0``
    and must be non-decreasing in ``k`` (true for neighborhoods).  The
    search doubles the integer radius until the threshold is reachable and
    then bisects, so the cost is logarithmic in the answer.
    """
    if total_demand < 0:
        raise ValueError("total demand must be non-negative")
    if total_demand == 0:
        return 0.0

    def reachable(k: int) -> bool:
        # The supremum of w * f(floor(w)) over w in [k, k+1] is (k+1) * f(k).
        return (k + 1) * neighborhood_size(k) >= total_demand

    hi = 1
    while not reachable(hi):
        hi *= 2
    lo = 0
    # Find the smallest k with reachable(k); reachable is monotone because
    # (k+1) * f(k) is non-decreasing in k.
    while lo < hi:
        mid = (lo + hi) // 2
        if reachable(mid):
            hi = mid
        else:
            lo = mid + 1
    k = lo
    f_k = neighborhood_size(k)
    candidate = total_demand / f_k
    # Within the bracket [k, k+1] the constraint is w >= total / f(k); the
    # bracket's lower end k already suffices when k * f(k) >= total.
    return max(float(k), candidate)


def omega_for_region(demand: DemandMap, region: Region | Iterable[Sequence[int]]) -> float:
    """Return ``omega_T`` for an arbitrary finite region ``T``."""
    if not isinstance(region, Region):
        region = Region.from_points(region)
    if region.is_empty():
        raise ValueError("omega_T is defined for non-empty regions only")
    total = demand.total_over(region)
    return solve_threshold(total, region.neighborhood_size)


def omega_for_box(demand: DemandMap, box: Box) -> float:
    """Return ``omega_T`` when ``T`` is the full point set of a box.

    Uses the exact closed-form neighborhood cardinality for boxes, so it is
    cheap even for large cubes.
    """
    total = demand.total_over(box.points())
    return solve_threshold(total, lambda k: box_neighborhood_size(box, k))


def _box_omega_from_total(box: Box, total: float) -> float:
    """``omega_T`` for a box whose contained demand total is already known."""
    return solve_threshold(total, lambda k: box_neighborhood_size(box, k))


def omega_star_exhaustive(demand: DemandMap) -> OmegaResult:
    """``max_T omega_T`` over all subsets ``T`` of the demand support.

    Adding a zero-demand point to ``T`` can only enlarge ``N_omega(T)`` and
    therefore only lowers ``omega_T``, so the maximum over all subsets of
    ``Z^l`` is attained by a subset of the support.  The search is still
    exponential in the support size and is guarded accordingly; it exists to
    validate the cube-restricted computation on small instances
    (benchmark E4/E5 cross-checks and the property-based tests).
    """
    support = demand.support()
    if not support:
        return OmegaResult(0.0, None)
    if len(support) > MAX_EXHAUSTIVE_SUPPORT:
        raise ValueError(
            f"support of size {len(support)} too large for exhaustive subset "
            f"maximization (limit {MAX_EXHAUSTIVE_SUPPORT})"
        )
    best = 0.0
    best_region: Optional[Region] = None
    for size in range(1, len(support) + 1):
        for subset in itertools.combinations(support, size):
            region = Region.from_points(subset)
            omega = omega_for_region(demand, region)
            if omega > best:
                best = omega
                best_region = region
    return OmegaResult(best, best_region)


def _candidate_sides(demand: DemandMap, max_side: Optional[int]) -> List[int]:
    """Cube sides worth considering: 1 up to the support bounding-box extent."""
    if demand.is_empty():
        return []
    bbox = demand.bounding_box()
    extent = max(bbox.side_lengths)
    if max_side is not None:
        extent = min(extent, max_side)
    return list(range(1, max(extent, 1) + 1))


def demand_cube_maxima(demand: DemandMap) -> Dict[int, float]:
    """Sliding-window cube-demand maxima for every side up to the extent.

    ``maxima[side]`` is the largest total demand inside any axis-aligned
    ``side``-cube.  This is the one expensive pass both
    :func:`omega_star_cubes` and :func:`omega_c` are built on; callers that
    need both quantities (``run_online`` resolves them back to back on
    every provisioning) compute it once and pass it to each via their
    ``maxima`` parameter instead of paying the sweep twice.
    """
    if demand.is_empty():
        return {}
    return max_cube_sums(demand.as_dict(), _candidate_sides(demand, None))


def omega_star_cubes(
    demand: DemandMap,
    *,
    max_side: Optional[int] = None,
    return_region: bool = False,
    maxima: Optional[Dict[int, float]] = None,
) -> OmegaResult:
    """``max_T omega_T`` over all axis-aligned cubes ``T`` (Corollary 2.2.6).

    Only cubes intersecting the demand support can attain the maximum, and
    for a fixed demand content smaller enclosing cubes give larger
    ``omega_T``; the search therefore enumerates every cube position whose
    window overlaps the support, for every side from 1 up to the support's
    bounding-box extent, using sliding-window sums for the per-cube demand.

    Parameters
    ----------
    demand:
        The demand map.
    max_side:
        Optional cap on the cube side considered (useful when the caller
        knows the answer is small).
    return_region:
        When true, also locate and return a maximizing cube (a second pass
        over positions for the winning side).
    maxima:
        Precomputed :func:`demand_cube_maxima` of this demand (must cover
        every candidate side); omitted, the sweep runs here.
    """
    if demand.is_empty():
        return OmegaResult(0.0, None)
    sides = _candidate_sides(demand, max_side)
    demand_dict = demand.as_dict()
    best = 0.0
    best_side = None
    # For each side, the cube with the largest contained demand maximizes
    # omega among cubes of that side (the neighborhood size only depends on
    # the side), so the sliding-window maximum per side suffices.
    if maxima is None:
        maxima = max_cube_sums(demand_dict, sides)
    for side in sides:
        total = maxima[side]
        if total <= 0:
            continue
        cube = Box.cube((0,) * demand.dim, side)
        omega = _box_omega_from_total(cube, total)
        if omega > best:
            best = omega
            best_side = side
    if best_side is None:
        return OmegaResult(0.0, None)
    if not return_region:
        return OmegaResult(best, None)
    region = _locate_best_cube(demand, best_side, maxima[best_side])
    return OmegaResult(best, region)


def _locate_best_cube(demand: DemandMap, side: int, target_total: float) -> Region:
    """Find a cube of the given side whose contained demand equals ``target_total``."""
    bbox = demand.bounding_box()
    lo = tuple(c - side + 1 for c in bbox.lo)
    hi = bbox.hi
    ranges = [range(a, b + 1) for a, b in zip(lo, hi)]
    for corner in itertools.product(*ranges):
        cube = Box.cube(corner, side)
        total = demand.total_over(cube.points())
        if math.isclose(total, target_total, rel_tol=1e-9, abs_tol=1e-9):
            return Region.from_box(cube)
    raise RuntimeError("failed to locate the maximizing cube (numerical drift?)")


def omega_c(
    demand: DemandMap,
    *,
    max_side: Optional[int] = None,
    maxima: Optional[Dict[int, float]] = None,
) -> float:
    """The cube fixed-point quantity of Corollary 2.2.7.

    The corollary defines ``omega_c`` as the smallest ``omega`` with
    ``omega * (3 * ceil(omega))^l`` equal to the largest demand inside any
    ``ceil(omega)``-cube.  As with ``omega_T`` we use the threshold form:
    the infimum of ``omega`` such that ``omega * (3 * ceil(omega))^l`` is at
    least the largest ``ceil(omega)``-cube demand.  The search scans integer
    brackets ``(s - 1, s]`` and takes the smallest feasible value.

    ``omega_c <= max_T omega_T`` always holds (see the corollary's proof);
    both sandwich ``W_off`` up to the same constants.  ``maxima`` takes a
    precomputed :func:`demand_cube_maxima` of this demand to skip the
    sliding-window sweep (it only needs sides up to the support extent;
    larger cubes contain the full demand).
    """
    if demand.is_empty():
        return 0.0
    dim = demand.dim
    bbox = demand.bounding_box()
    extent = max(bbox.side_lengths)
    total = demand.total()
    # For sides at least the support extent every cube covering the support
    # contains the full demand, so sliding-window maxima are only needed up
    # to the extent; beyond it the per-cube maximum is simply the total.
    # The scan itself must continue until the bracket becomes feasible,
    # i.e. until total <= s * (3 s)^l.
    feasible_side = 1
    while total > feasible_side * (3 * feasible_side) ** dim:
        feasible_side *= 2
    limit = max(extent, feasible_side)
    if max_side is not None:
        limit = min(limit, max_side)
    if maxima is None:
        maxima = max_cube_sums(demand.as_dict(), range(1, min(extent, limit) + 1))
    best: Optional[float] = None
    for side in range(1, limit + 1):
        cube_max = maxima[side] if side <= extent else total
        needed = cube_max / ((3 * side) ** dim)
        if needed > side:
            continue  # not feasible within the bracket (side - 1, side]
        bracket_min = max(needed, float(side - 1))
        if best is None or bracket_min < best:
            best = bracket_min
    if best is None:
        # Only possible when max_side truncated the scan before feasibility;
        # report the last bracket's requirement, which upper-bounds omega_c.
        cube_max = maxima[min(extent, limit)] if limit <= extent else total
        best = cube_max / ((3 * limit) ** dim)
    return best


# --------------------------------------------------------------------------- #
# Closed-form bounds of the three worked examples (Section 2.1)
# --------------------------------------------------------------------------- #


def example_square_bound(a: int, d: float) -> float:
    """``W1``: the positive root of ``W (2W + a)^2 = d a^2`` (Example 2.1.1)."""
    if a < 1:
        raise ValueError("square side must be at least 1")
    if d < 0:
        raise ValueError("demand must be non-negative")
    return _solve_monotone_cubic(lambda w: w * (2 * w + a) ** 2, d * a * a)


def example_line_bound(d: float) -> float:
    """``W2``: the positive root of ``W (2W + 1) = d`` (Example 2.1.2)."""
    if d < 0:
        raise ValueError("demand must be non-negative")
    # Quadratic 2W^2 + W - d = 0.
    return (-1 + math.sqrt(1 + 8 * d)) / 4


def example_point_bound(d: float) -> float:
    """``W3``: the positive root of ``W (2W + 1)^2 = d`` (Example 2.1.3)."""
    if d < 0:
        raise ValueError("demand must be non-negative")
    return _solve_monotone_cubic(lambda w: w * (2 * w + 1) ** 2, d)


def _solve_monotone_cubic(func: Callable[[float], float], target: float) -> float:
    """Solve ``func(w) = target`` for a continuous increasing ``func`` with
    ``func(0) = 0`` by bracketing and bisection."""
    if target <= 0:
        return 0.0
    hi = 1.0
    while func(hi) < target:
        hi *= 2.0
    lo = 0.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if func(mid) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return (lo + hi) / 2.0
