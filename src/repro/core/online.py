"""The online simulation harness (Chapter 3 / Theorem 1.4.2).

:func:`run_online` plays a timed job sequence against the decentralized
strategy of Section 3.2: jobs are revealed one at a time, each is served by
the active vehicle of its black/white pair, exhausted vehicles are replaced
through Phase I/II diffusing computations, and (optionally) the monitoring
loop of Section 3.2.5 recovers from initiation failures and dead vehicles.

Both drivers now run on the same event clock:

* ``engine="events"`` (the default): arrivals, heartbeat ticks, churn and
  partition windows are all scheduled on the fleet's discrete-event
  simulator at the jobs' arrival times; protocol messages interleave in
  timestamp order.  This is the asynchronous system the paper actually
  analyzes, and the only driver under which timed failures and non-trivial
  transports (latency, loss, corruption) have a meaningful clock position.
* ``engine="rounds"``: a thin adapter over the same clock that schedules
  each job as a *round barrier* event and settles the network to quiescence
  inside the barrier -- the historical lockstep "deliver, settle,
  heartbeat" semantics, byte-identical to the pre-adapter rounds driver on
  failure-free runs (the conformance tests assert both the adapter/event
  equivalence and the physical fingerprint).

Message delivery itself is owned by a pluggable
:class:`~repro.distsim.transport.Transport`; pass ``transport=`` (an
instance, a :class:`~repro.distsim.transport.TransportSpec`, or a bare kind
name) to run the protocol over latency jitter, seeded loss, or Byzantine
corruption.

Failure timing (``FailurePlan`` partitions, churn schedules) is expressed
on the *job clock*: job ``k`` of a sequence built by
``JobSequence.from_positions`` arrives at time ``k + 1``.

The harness reports everything Theorem 1.4.2 talks about: whether every job
was served, the largest per-vehicle energy actually drawn (the empirical
``W_on``), the provisioned capacity, and the offline lower bound it should
be compared against.
"""

from __future__ import annotations

import dataclasses
import heapq
import logging
import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.demand import DemandMap, JobSequence
from repro.core.offline import online_upper_bound_factor
from repro.core.omega import demand_cube_maxima, omega_c, omega_star_cubes
from repro.core.plan import plan_window
from repro.distsim.failures import ChurnSpec, FailurePlan, apply_churn
from repro.distsim.parallel_lockstep import (
    merge_parallel_lockstep_results,
    parallel_lockstep_eligibility,
    run_parallel_lockstep,
)
from repro.distsim.sharding import (
    ShardMailbox,
    ShardMonitor,
    ShardPlan,
    cross_shard_edge_latencies,
    lockstep_window,
    merge_shard_results,
    run_lockstep,
    run_parallel,
)
from repro.distsim.transport import Transport, TransportSpec, build_transport
from repro.grid.cubes import CubeGrid, CubeHierarchy
from repro.grid.lattice import Point
from repro.vehicles.fleet import Fleet, FleetConfig

__all__ = ["OnlineResult", "run_online", "provision_fleet", "ONLINE_ENGINES"]

#: Sharded-run mode selection is logged here (satellite: bench numbers must
#: be attributable to the mode that actually ran).
_LOG = logging.getLogger("repro.distsim.sharding")

CapacitySpec = Union[None, float, Literal["theorem"]]

#: The two harness drivers (see the module docstring); the first is the default.
ONLINE_ENGINES = ("events", "rounds")

#: Identity-keyed memo of the omega quantities per job sequence, each
#: computed lazily (a run with an explicit ``omega=`` never needs
#: ``omega_c`` at all).  Sequences are immutable by convention and
#: sweeps/benchmarks replay the same one many times, so each cube
#: maximization is paid at most once per workload instead of once per run.
#: The stored length guards the common violation of that convention
#: (extending ``jobs.jobs`` in place triggers a fresh computation); a
#: same-length in-place element swap is NOT detected -- sequences are
#: immutable by contract, the guard is a cheap backstop, not a content
#: hash.  Entries are evicted when the sequence is garbage-collected
#: (``weakref.finalize``), so the memo cannot leak.
_OMEGA_MEMO: Dict[int, Dict[str, float]] = {}


def _omega_memo_entry(jobs: JobSequence) -> Dict[str, float]:
    key = id(jobs)
    entry = _OMEGA_MEMO.get(key)
    if entry is None or entry["len"] != len(jobs):
        if entry is None:
            weakref.finalize(jobs, _OMEGA_MEMO.pop, key, None)
        entry = {"len": len(jobs)}
        _OMEGA_MEMO[key] = entry
    return entry


@dataclass
class OnlineResult:
    """Everything measured during one online run."""

    #: Number of jobs in the input sequence.
    jobs_total: int
    #: Jobs actually served (equal to ``jobs_total`` iff the run is feasible).
    jobs_served: int
    #: Whether every job was served by an adjacent active vehicle.
    feasible: bool
    #: Largest per-vehicle energy drawn -- the empirical online requirement.
    max_vehicle_energy: float
    #: Total travel energy across the fleet.
    total_travel: float
    #: Total service energy across the fleet.
    total_service: float
    #: The omega value the strategy partitioned the lattice with.
    omega: float
    #: The offline lower bound ``max_T omega_T`` (over cubes) for this demand.
    omega_star: float
    #: Capacity provisioned per vehicle (``None`` = unbounded measurement).
    capacity: Optional[float]
    #: The Lemma 3.3.1 capacity ``(4 * 3^l + l) * omega``.
    theorem_capacity: float
    #: Protocol counters.
    replacements: int
    searches: int
    failed_replacements: int
    messages: int
    heartbeat_rounds: int
    #: Per-vehicle energies at the end of the run (home vertex -> energy).
    vehicle_energies: Dict[Point, float] = field(default_factory=dict)
    #: Which harness driver produced the result.
    engine: str = "events"
    #: Simulator events executed during the run (messages, arrivals, ticks).
    events_processed: int = 0
    #: Final simulation-clock time.
    sim_time: float = 0.0
    #: Registry name of the message transport the run used.
    transport: str = "reliable"
    #: Messages lost to failures or the transport.
    messages_dropped: int = 0
    #: Messages the transport mutated in flight (Byzantine corruption).
    messages_corrupted: int = 0
    #: Whether cross-cube escalation was enabled for the run.
    escalation: bool = False
    #: Phase I searches that escalated past their own cube.
    escalations: int = 0
    #: Replacements found by an escalated (cross-cube) round.
    escalated_replacements: int = 0
    #: Far pairs adopted by active vehicles with spare battery.
    adoptions: int = 0
    #: Shards the run was partitioned into (1 = single-process).
    shards: int = 1
    #: Logical sends that crossed a shard boundary (always 0 unsharded, and
    #: 0 in the parallel isolated mode, which requires zero boundary traffic).
    cross_shard_messages: int = 0
    #: Lockstep window barriers the coordinator advanced through.
    window_barriers: int = 0
    #: Wall-clock seconds per worker shard (multi-process modes only).
    shard_timings: Dict[int, float] = field(default_factory=dict)
    #: Which sharded execution mode ran: ``""`` (unsharded), ``"parallel"``
    #: (PR 8 isolated workers), ``"parallel-lockstep"`` (multi-process
    #: failure-mode engine), or ``"lockstep"`` (single-process windows).
    shard_mode: str = ""
    #: The first disqualifying feature that forced the lockstep fallback
    #: (empty when a multi-process mode ran, or when unsharded).
    shard_mode_reason: str = ""
    #: Failure-detection mode the run used: ``""`` (monitoring off),
    #: ``"ring"`` (Section 3.2.5 single-watcher loop) or ``"gossip"``
    #: (epidemic detector with quorum-attested replacement).
    monitoring_mode: str = ""
    #: Gossip mode: quorum collections opened (SuspectMessage broadcasts).
    suspicions: int = 0
    #: Gossip mode: co-signatures granted by attesters.
    attestations: int = 0
    #: Gossip mode: attestation requests declined (withheld signatures).
    refused_attestations: int = 0
    #: Gossip mode: suspicions raised against pairs that were in fact alive.
    false_suspicions: int = 0
    #: Crashed pairs whose detection latency was measured (crash tick to
    #: first attested replacement initiation, in heartbeat rounds).
    detections: int = 0
    #: Median detection latency in heartbeat rounds (0.0 when none).
    detection_p50: float = 0.0
    #: 99th-percentile detection latency in heartbeat rounds (0.0 when none).
    detection_p99: float = 0.0

    @property
    def online_to_offline_ratio(self) -> float:
        """``max_vehicle_energy / omega_star`` -- the constant Theorem 1.4.2 bounds.

        A degenerate scenario with ``omega_star == 0`` but positive energy
        spent violates *any* multiplicative bound, so it reports ``inf``
        rather than masquerading as meeting the Theorem 1.4.2 constant;
        only a run that spent nothing against a zero bound is a clean 1.0.
        """
        if self.omega_star == 0:
            return math.inf if self.max_vehicle_energy > 0 else 1.0
        return self.max_vehicle_energy / self.omega_star


def _empty_online_result(engine: str, transport: str = "reliable") -> OnlineResult:
    return OnlineResult(
        jobs_total=0,
        jobs_served=0,
        feasible=True,
        max_vehicle_energy=0.0,
        total_travel=0.0,
        total_service=0.0,
        omega=0.0,
        omega_star=0.0,
        capacity=None,
        theorem_capacity=0.0,
        replacements=0,
        searches=0,
        failed_replacements=0,
        messages=0,
        heartbeat_rounds=0,
        engine=engine,
        transport=transport,
    )


def _serve_with_recovery(
    fleet: Fleet,
    config: FleetConfig,
    job,
    recovery_rounds: int,
) -> bool:
    """Round-mode service: deliver, recover via heartbeat rounds, then tick."""
    served = fleet.deliver_job(job.position, job.energy)
    if not served and recovery_rounds > 0 and config.monitoring:
        for _ in range(recovery_rounds):
            fleet.run_heartbeat_round()
        served = fleet.retry_job(job.position, job.energy)
    if config.monitoring:
        fleet.run_heartbeat_round()
    return served


def _churn_hooks(fleet: Fleet):
    """The leave/join callbacks both drivers feed to :func:`apply_churn`.

    Vertices that host no vehicle in this run are ignored, mirroring the
    ``dead_vehicles`` contract.
    """

    def leave(vertex: Point) -> None:
        if vertex in fleet.vehicles:
            fleet.crash_vehicle(vertex)

    def join(vertex: Point) -> None:
        if vertex in fleet.vehicles:
            fleet.revive_vehicle(vertex)

    return leave, join


def provision_fleet(
    demand: DemandMap,
    *,
    omega: float,
    capacity: CapacitySpec = "theorem",
    config: Optional[FleetConfig] = None,
    rng: Optional[np.random.Generator] = None,
    failure_plan: Optional[FailurePlan] = None,
    dead_vehicles: Optional[Iterable[Sequence[int]]] = None,
    transport: Optional[Transport] = None,
    escalation: Optional[bool] = None,
    window=None,
) -> Tuple[Fleet, FleetConfig, Optional[float], float]:
    """Build the fleet a driver runs against, exactly as :func:`run_online` does.

    ``omega`` must already be resolved (``run_online`` memoizes ``omega_c``
    per sequence; a streaming caller computes it from the demand map once).
    Returns ``(fleet, fleet_config, provisioned, theorem_capacity)`` --
    construction order and the dead-vehicle crash sweep are shared with the
    batch path so a service run provisions a byte-identical fleet.

    ``window`` overrides the planned lattice window: a sharded worker
    building a sub-fleet over a restricted demand passes the global run's
    window so cube geometry matches the single-process run.
    """
    theorem_capacity = online_upper_bound_factor(demand.dim) * omega

    if capacity == "theorem":
        provisioned: Optional[float] = theorem_capacity
    else:
        provisioned = capacity  # a float or None

    base = config if config is not None else FleetConfig()
    overrides: Dict[str, object] = {"capacity": provisioned}
    if escalation is not None:
        overrides["escalation"] = bool(escalation)
    fleet_config = dataclasses.replace(base, **overrides)
    fleet = Fleet(
        demand,
        omega,
        fleet_config,
        rng=rng,
        failure_plan=failure_plan,
        transport=transport,
        window=window,
    )
    if dead_vehicles is not None:
        # Scenario 3: these vehicles are dead from the start -- they cannot
        # move, serve, or heartbeat, but their radios still relay protocol
        # messages (communication is free in the thesis's model), so the
        # monitoring loop can replace them.  Points that host no vehicle in
        # this run are ignored.
        for identity in sorted({tuple(int(c) for c in p) for p in dead_vehicles}):
            if identity in fleet.vehicles:
                fleet.crash_vehicle(identity)
    return fleet, fleet_config, provisioned, theorem_capacity


def _schedule_churn(
    fleet: Fleet,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
    churn_applied: Set[ChurnSpec],
) -> None:
    """Schedule every not-yet-applied churn event on the fleet's clock.

    Specs already in ``churn_applied`` are skipped (a resumed run re-schedules
    only its remaining churn); the rest are pushed in the canonical
    ``(time, vertex, action)`` order so same-time events keep their relative
    sequence across batch, streaming, and resumed runs.
    """
    simulator = fleet.simulator
    leave, join = _churn_hooks(fleet)
    for spec in sorted(churn, key=lambda e: (e.time, e.vertex, e.action)):
        if spec in churn_applied:
            continue

        def _churn_event(spec: ChurnSpec = spec) -> None:
            plan.set_time(simulator.now)
            apply_churn([spec], simulator.now, churn_applied, leave=leave, join=join)

        simulator.schedule_at(spec.time, _churn_event, kind="churn")


def _arrival_logic(
    fleet: Fleet,
    fleet_config: FleetConfig,
    plan: FailurePlan,
    recovery_rounds: int,
    record,
):
    """The event-mode per-job service logic, shared by batch and streaming.

    Returns ``make_handler(index, job)`` producing the zero-argument arrival
    action the calendar queue executes.  ``record(index, job, latency)`` is
    called once per *successfully served* job -- immediately on delivery
    (latency 0) or from the recovery retry (latency = retry delay); a job
    whose retry also fails is never recorded.
    """
    simulator = fleet.simulator

    def _heartbeat() -> None:
        fleet.run_heartbeat_round(settle=False)

    def _arrival(index: int, job, pair_key) -> None:
        plan.set_time(simulator.now)
        if fleet.deliver_job(job.position, job.energy, settle=False, pair_key=pair_key):
            record(index, job, simulator.now - job.time)
            if fleet_config.monitoring:
                _heartbeat()
            return
        if recovery_rounds > 0 and fleet_config.monitoring:
            # Recovery must happen *on the clock*: each heartbeat round is a
            # scheduled event so its protocol messages (watch initiations,
            # Phase I/II replacements) are delivered before the retry fires
            # -- all strictly before the next arrival at +1.  The whole
            # recovery window goes to the calendar queue as one batch.
            spacing = 0.5 / recovery_rounds
            now = simulator.now
            simulator.schedule_batch(
                (
                    (now + spacing * round_index, _heartbeat)
                    for round_index in range(1, recovery_rounds + 1)
                ),
                kind="heartbeat",
            )

            def _retry(index: int = index, job=job) -> None:
                if fleet.retry_job(job.position, job.energy, settle=False):
                    record(index, job, simulator.now - job.time)

            simulator.schedule(0.7, _retry, kind="retry")
            simulator.schedule(0.8, _heartbeat, kind="heartbeat")
        elif fleet_config.monitoring:
            _heartbeat()

    def make_handler(index: int, job, pair_key=None):
        def _handler() -> None:
            _arrival(index, job, pair_key)

        return _handler

    return make_handler


def _run_rounds(
    fleet: Fleet,
    fleet_config: FleetConfig,
    jobs: JobSequence,
    recovery_rounds: int,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
) -> int:
    """The lockstep driver as a thin adapter over the event clock.

    Each job becomes one *round barrier* event scheduled at the job's
    arrival time; the barrier delivers the job, runs the recovery heartbeat
    rounds, and settles the network to quiescence before the next barrier
    is scheduled -- exactly the historical "deliver, settle, heartbeat"
    sequence, so the physical outcome (energies, messages, counters) is
    byte-identical to the pre-adapter rounds driver on failure-free runs.
    The only difference is that the barriers now *live on the clock*: the
    simulation time of a round-mode run advances through the jobs' arrival
    times instead of idling near zero.
    """
    simulator = fleet.simulator
    served_count = 0
    churn_applied: Set[ChurnSpec] = set()
    leave, join = _churn_hooks(fleet)

    for job in jobs:
        served = False

        def _barrier(job=job) -> None:
            nonlocal served
            plan.set_time(job.time)
            apply_churn(churn, job.time, churn_applied, leave=leave, join=join)
            served = _serve_with_recovery(fleet, fleet_config, job, recovery_rounds)

        # A message storm may already have pushed the clock past this job's
        # arrival time; the barrier then fires immediately (the failure
        # clock still uses job.time, as the lockstep driver always did).
        simulator.schedule_at(max(job.time, simulator.now), _barrier, kind="round-barrier")
        simulator.run_until_quiescent()
        if served:
            served_count += 1
    return served_count


def _run_events(
    fleet: Fleet,
    fleet_config: FleetConfig,
    jobs: JobSequence,
    recovery_rounds: int,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
    *,
    run=None,
    foreign_times: Sequence[float] = (),
) -> int:
    """The event driver: arrivals and failure windows on the simulator clock.

    ``run`` overrides the final drain: the sharded lockstep coordinator
    passes a callable executing the same events through window barriers
    (``run(simulator)`` instead of ``run_until_quiescent``).

    ``foreign_times`` are arrival times of jobs owned by *other* shards in
    a parallel lockstep run: each becomes a *tick* event replaying the
    reference arrival's fleet-wide bookkeeping prefix -- advance the
    failure clock, and (when monitoring) run the global heartbeat round
    over this fleet's vehicles -- so the worker's clocks and round numbers
    match the single-process run event for event.  Ticks join the arrival
    batch in one merged time-sorted schedule, putting them first in their
    time bucket exactly as the arrivals they mirror are in the reference.

    Each job becomes an arrival event at its ``job.time``; churn events are
    scheduled at their own times; the failure clock tracks the simulation
    clock, so partition windows activate exactly when the clock enters
    them.  Protocol messages drain between arrivals in timestamp order
    (message delays are assumed small against the inter-arrival gap, which
    is the thesis's standing assumption).
    """
    simulator = fleet.simulator
    served: List[bool] = [False] * len(jobs)
    churn_applied: Set[ChurnSpec] = set()
    _schedule_churn(fleet, churn, plan, churn_applied)

    def record(index: int, job, latency: float) -> None:
        served[index] = True

    make_handler = _arrival_logic(fleet, fleet_config, plan, recovery_rounds, record)

    # The whole arrival sequence goes to the calendar queue in one call,
    # pre-routed with a single vectorized position->pair lookup.
    routed = fleet.route_positions([job.position for job in jobs])
    arrival_entries = (
        (job.time, make_handler(index, job, routed[index]))
        for index, job in enumerate(jobs)
    )
    if foreign_times:

        def _tick() -> None:
            # The bookkeeping prefix/suffix of a foreign shard's arrival
            # (mirrors ``_arrival_logic``): failure clock, then the global
            # heartbeat round -- recovery_rounds == 0 is an eligibility
            # precondition, so the round runs unconditionally.
            plan.set_time(simulator.now)
            if fleet_config.monitoring:
                fleet.run_heartbeat_round(settle=False)

        entries = heapq.merge(
            arrival_entries,
            ((time, _tick) for time in foreign_times),
            key=lambda entry: entry[0],
        )
    else:
        entries = arrival_entries
    simulator.schedule_batch(entries, kind="arrival")

    if run is None:
        simulator.run_until_quiescent()
    else:
        run(simulator)
    return sum(served)


def _parallel_shardable(
    transport: Union[Transport, TransportSpec, str, None],
    transport_instance: Optional[Transport],
    config: Optional[FleetConfig],
    rng: Optional[np.random.Generator],
    failure_plan: Optional[FailurePlan],
    dead_vehicles: Optional[Iterable[Sequence[int]]],
    recovery_rounds: int,
    churn_events: Sequence[ChurnSpec],
    escalation: Optional[bool],
) -> bool:
    """Whether a sharded run may use the multi-process isolated mode.

    The isolated mode requires every shard to be a closed sub-simulation:
    no shared RNG stream (jitter delays and loss draws are consumed in
    global send order), no cross-cube protocol traffic (monitoring watch
    rings and escalation cross cube -- and hence potentially shard --
    boundaries), no failure injection whose clock couples shards, and a
    transport that is both stateless per edge (``Transport.shardable``) and
    rebuildable inside a worker process (``None``, a kind name, or a
    :class:`TransportSpec` -- not a caller-owned instance).  Everything
    else falls back to the lockstep mode, which is exact for every
    configuration.
    """
    if rng is not None or failure_plan is not None or dead_vehicles is not None:
        return False
    if recovery_rounds != 0 or churn_events:
        return False
    monitoring = config.monitoring if config is not None else False
    if escalation is not None:
        escalated = bool(escalation)
    else:
        escalated = config.escalation if config is not None else False
    if monitoring or escalated:
        return False
    if transport is None:
        # The legacy default channel with rng=None: a fixed-delay reliable
        # transport, rebuilt identically by each worker's Network.
        return True
    if not isinstance(transport, (str, TransportSpec)):
        return False
    return transport_instance is not None and transport_instance.shardable


class _ShardPartition:
    """The shared geometry split of the multi-process modes.

    Replicates the single-process geometry (cube side, planned window,
    hierarchy) *without* building the global fleet, then splits demand
    entries and jobs by owning shard.  Cube membership and shard routing
    are vectorized: a scalar ``grid.cube_index`` per point costs more than
    the worker runs at the 10^5 scale, so points and job positions reduce
    to cube multi-indices in one array op each, and a dense cube-lattice
    lookup table turns cube -> shard into a single fancy-index.
    """

    def __init__(
        self, jobs: JobSequence, demand: DemandMap, omega: float, shards: int
    ) -> None:
        self.shards = shards
        self.cube_side = max(1, int(math.ceil(omega)))
        self.window = plan_window(demand, self.cube_side)
        grid = CubeGrid(self.window, self.cube_side)
        hierarchy = CubeHierarchy(grid)

        entries = demand.as_dict()
        self._lo = np.asarray(self.window.lo, dtype=np.int64)
        points = np.asarray(list(entries), dtype=np.int64)
        point_cubes = (points - self._lo) // self.cube_side
        occupied = {tuple(row) for row in np.unique(point_cubes, axis=0).tolist()}
        self.plan = ShardPlan(hierarchy, shards, cubes=occupied)

        lut_shape = tuple(
            (hi - low) // self.cube_side + 1
            for low, hi in zip(self.window.lo, self.window.hi)
        )
        self.shard_lut = np.zeros(lut_shape, dtype=np.int64)
        for shard in range(shards):
            for index in self.plan.cubes_of(shard):
                self.shard_lut[index] = shard

        point_shards = self.shard_lut[tuple(point_cubes.T)].tolist()
        self.entries_by_shard: List[List[Tuple[Point, float]]] = [
            [] for _ in range(shards)
        ]
        for (point, value), shard in zip(entries.items(), point_shards):
            self.entries_by_shard[shard].append((point, value))

        job_positions = np.asarray([job.position for job in jobs], dtype=np.int64)
        job_cubes = (job_positions - self._lo) // self.cube_side
        self.job_shards: List[int] = self.shard_lut[tuple(job_cubes.T)].tolist()
        self.jobs_by_shard: List[List[Tuple[float, Point, float]]] = [
            [] for _ in range(shards)
        ]
        for job, shard in zip(jobs, self.job_shards):
            self.jobs_by_shard[shard].append((job.time, job.position, job.energy))

    def shard_of_vertex(self, vertex: Sequence[int], default: int) -> int:
        """The shard owning a lattice vertex's cube (``default`` off-grid)."""
        try:
            cube = tuple(
                (int(c) - int(low)) // self.cube_side
                for c, low in zip(vertex, self.window.lo)
            )
            if any(c < 0 for c in cube):
                return default
            return int(self.shard_lut[cube])
        except (IndexError, TypeError, ValueError):
            return default


def _run_online_parallel(
    jobs: JobSequence,
    demand: DemandMap,
    omega: float,
    omega_star: float,
    capacity: CapacitySpec,
    config: Optional[FleetConfig],
    transport: Union[TransportSpec, str, None],
    transport_instance: Optional[Transport],
    shards: int,
    workers: Optional[int] = None,
) -> OnlineResult:
    """The multi-process isolated mode: one worker sub-fleet per shard.

    The coordinator splits demand and jobs by owning shard
    (:class:`_ShardPartition`) and fans the shard payloads out to worker
    processes; :func:`merge_shard_results` reassembles the per-cube state
    segments in global creation order so the merged result is
    byte-identical to the unsharded run.
    """
    base = config if config is not None else FleetConfig()
    # The run-level escalation override is resolved *before* pickling: a
    # worker provisions straight from this config, so it must already
    # carry the setting the reference fleet would run with.
    base = dataclasses.replace(base, escalation=False)
    split = _ShardPartition(jobs, demand, omega, shards)

    theorem_capacity = online_upper_bound_factor(demand.dim) * omega
    provisioned: Optional[float] = (
        theorem_capacity if capacity == "theorem" else capacity
    )

    transport_payload: Union[Dict[str, object], str, None]
    if isinstance(transport, TransportSpec):
        transport_payload = transport.to_json()
    else:
        transport_payload = transport

    payloads = [
        {
            "shard": shard,
            "entries": split.entries_by_shard[shard],
            "dim": demand.dim,
            "window_lo": split.window.lo,
            "window_hi": split.window.hi,
            "omega": float(omega),
            "capacity": provisioned,
            "config": base,
            "transport": transport_payload,
            "jobs": split.jobs_by_shard[shard],
        }
        for shard in range(shards)
        if split.entries_by_shard[shard]
    ]
    merged = merge_shard_results(run_parallel(payloads, workers=workers))

    return OnlineResult(
        jobs_total=len(jobs),
        jobs_served=merged["served"],
        feasible=merged["served"] == len(jobs),
        max_vehicle_energy=merged["max_energy"],
        total_travel=merged["total_travel"],
        total_service=merged["total_service"],
        omega=float(omega),
        omega_star=omega_star,
        capacity=provisioned,
        theorem_capacity=theorem_capacity,
        replacements=merged["replacements"],
        searches=merged["searches"],
        failed_replacements=merged["failed_replacements"],
        messages=merged["messages"],
        heartbeat_rounds=merged["heartbeat_rounds"],
        vehicle_energies=merged["vehicle_energies"],
        engine="events",
        events_processed=merged["events"],
        sim_time=merged["sim_time"],
        transport=(
            transport_instance.kind if transport_instance is not None else "reliable"
        ),
        messages_dropped=merged["messages_dropped"],
        messages_corrupted=merged["messages_corrupted"],
        escalation=False,
        shards=shards,
        window_barriers=0,
        cross_shard_messages=0,
        shard_timings=merged["timings"],
        shard_mode="parallel",
    )


def _run_online_parallel_lockstep(
    jobs: JobSequence,
    demand: DemandMap,
    omega: float,
    omega_star: float,
    capacity: CapacitySpec,
    config: Optional[FleetConfig],
    transport: Union[TransportSpec, str, None],
    transport_instance: Optional[Transport],
    shards: int,
    *,
    failure_plan: Optional[FailurePlan],
    dead_vehicles: Optional[Iterable[Sequence[int]]],
    churn_events: Sequence[ChurnSpec],
    escalation: Optional[bool],
    workers: Optional[int] = None,
) -> OnlineResult:
    """The multi-process failure-mode engine: parallel lockstep workers.

    Extends the isolated mode to monitoring, crashes, suppression,
    partitions, and churn (see :mod:`repro.distsim.parallel_lockstep` for
    the structural argument).  Beyond the demand/job split, each payload
    carries the pickled failure plan, the full dead-vehicle and churn
    lists (foreign entries no-op), and -- when the run needs fleet-wide
    clock/round replication (monitoring or timed partitions) -- the
    arrival times of every *other* shard's jobs, replayed as tick events.
    Workers free-run through one conservative window (infinite Chandy-Misra
    lookahead: the eligible class has zero outbound boundary edges) and the
    merge corrects the replicated bookkeeping, so the result is
    byte-identical to the single-process run at any worker count.
    """
    base = config if config is not None else FleetConfig()
    if escalation is not None:
        base = dataclasses.replace(base, escalation=bool(escalation))
    split = _ShardPartition(jobs, demand, omega, shards)

    theorem_capacity = online_upper_bound_factor(demand.dim) * omega
    provisioned: Optional[float] = (
        theorem_capacity if capacity == "theorem" else capacity
    )

    transport_payload: Union[Dict[str, object], str, None]
    if isinstance(transport, TransportSpec):
        transport_payload = transport.to_json()
    else:
        transport_payload = transport

    spawned = [
        shard for shard in range(shards) if split.entries_by_shard[shard]
    ]
    first_spawned = spawned[0] if spawned else 0
    partitions = failure_plan.partitions if failure_plan is not None else []
    # Clock/round replication is needed exactly when some fleet-wide state
    # advances inside arrival events: the heartbeat round counter
    # (monitoring) or the failure clock consulted by partition windows.
    replicate = bool(base.monitoring) or bool(partitions)

    churn_sorted = tuple(
        sorted(churn_events, key=lambda e: (e.time, e.vertex, e.action))
    )
    churn_owner = [
        split.shard_of_vertex(spec.vertex, first_spawned) for spec in churn_sorted
    ]
    dead = (
        sorted({tuple(int(c) for c in p) for p in dead_vehicles})
        if dead_vehicles is not None
        else None
    )

    job_times = [job.time for job in jobs]
    payloads = []
    for shard in spawned:
        if replicate:
            foreign_times = [
                time
                for time, owner in zip(job_times, split.job_shards)
                if owner != shard
            ]
        else:
            foreign_times = []
        payloads.append(
            {
                "shard": shard,
                "entries": split.entries_by_shard[shard],
                "dim": demand.dim,
                "window_lo": split.window.lo,
                "window_hi": split.window.hi,
                "omega": float(omega),
                "capacity": provisioned,
                "config": base,
                "transport": transport_payload,
                "jobs": split.jobs_by_shard[shard],
                "foreign_times": foreign_times,
                "failure_plan": failure_plan,
                "dead": dead,
                "churn": churn_sorted,
                "churn_owned": sum(
                    1 for owner in churn_owner if owner == shard
                ),
                "shard_lut": split.shard_lut,
                "cube_side": split.cube_side,
            }
        )
    merged = merge_parallel_lockstep_results(
        run_parallel_lockstep(payloads, workers=workers)
    )

    return OnlineResult(
        jobs_total=len(jobs),
        jobs_served=merged["served"],
        feasible=merged["served"] == len(jobs),
        max_vehicle_energy=merged["max_energy"],
        total_travel=merged["total_travel"],
        total_service=merged["total_service"],
        omega=float(omega),
        omega_star=omega_star,
        capacity=provisioned,
        theorem_capacity=theorem_capacity,
        replacements=merged["replacements"],
        searches=merged["searches"],
        failed_replacements=merged["failed_replacements"],
        messages=merged["messages"],
        heartbeat_rounds=merged["heartbeat_rounds"],
        vehicle_energies=merged["vehicle_energies"],
        engine="events",
        events_processed=merged["events"],
        sim_time=merged["sim_time"],
        transport=(
            transport_instance.kind if transport_instance is not None else "reliable"
        ),
        messages_dropped=merged["messages_dropped"],
        messages_corrupted=merged["messages_corrupted"],
        escalation=False,
        shards=shards,
        window_barriers=merged["window_barriers"],
        cross_shard_messages=0,
        shard_timings=merged["timings"],
        shard_mode="parallel-lockstep",
        # Gossip never qualifies for this mode (fleet-wide digest fanout
        # crosses shards), so monitoring here is always off or ring.
        # Detection-latency digests are a single-fleet measurement; the
        # multi-process modes report zero detections by design.
        monitoring_mode="ring" if base.monitoring else "",
    )


def run_online(
    jobs: JobSequence,
    *,
    omega: Optional[float] = None,
    capacity: CapacitySpec = "theorem",
    config: Optional[FleetConfig] = None,
    rng: Optional[np.random.Generator] = None,
    failure_plan: Optional[FailurePlan] = None,
    dead_vehicles: Optional[Iterable[Sequence[int]]] = None,
    recovery_rounds: int = 0,
    churn: Optional[Iterable[ChurnSpec]] = None,
    engine: str = "events",
    transport: Union[Transport, TransportSpec, str, None] = None,
    escalation: Optional[bool] = None,
    shards: int = 1,
    shard_workers: Optional[int] = None,
) -> OnlineResult:
    """Run the online strategy on a job sequence.

    Parameters
    ----------
    jobs:
        The timed job sequence (revealed to the fleet one job at a time).
    omega:
        The cube-partition parameter.  Defaults to ``omega_c`` of the
        sequence's demand map, as the thesis's provisioning does.
    capacity:
        ``"theorem"`` provisions every vehicle with the Lemma 3.3.1 budget
        ``(4 * 3^l + l) * omega``; a float provisions that amount; ``None``
        runs with unbounded batteries and merely measures the energy drawn.
    config:
        Fleet configuration; its ``capacity`` field is overridden by the
        ``capacity`` argument.
    failure_plan:
        Crash / suppression / partition injection for the failure-scenario
        experiments.  Partition windows are expressed on the job clock.
    dead_vehicles:
        Home vertices of vehicles that are broken from the start (scenario
        3); dead vehicles cannot act but their radios still relay.
    recovery_rounds:
        When a job cannot be served immediately (its pair's vehicle is dead
        or out of energy), run this many heartbeat rounds -- letting the
        monitoring loop install a replacement -- and retry once.  Requires
        ``config.monitoring``.
    churn:
        Timed :class:`~repro.distsim.failures.ChurnSpec` events (vehicles
        leaving and rejoining), expressed on the job clock.  Vertices that
        host no vehicle in this run are ignored.
    engine:
        ``"events"`` (the event-driven driver, the default) or ``"rounds"``
        (the lockstep compatibility adapter; see the module docstring).
    transport:
        The message delivery model: a
        :class:`~repro.distsim.transport.Transport` instance (single-use),
        a :class:`~repro.distsim.transport.TransportSpec`, or a bare kind
        name such as ``"lossy"``.  Defaults to the historical channel
        (fixed ``config.message_delay``, randomized when ``rng`` is given).
    escalation:
        Whether an exhausted Phase I search may escalate through the cube
        hierarchy (cross-cube replacement; see
        :class:`~repro.vehicles.fleet.FleetConfig`).  ``None`` keeps the
        ``config``'s setting.
    shards:
        Partition the run into this many cube-aligned shards (see
        :mod:`repro.distsim.sharding`).  The result is byte-identical to
        the ``shards=1`` run: shard-safe configurations fan out to one
        worker process per shard (``"parallel"``), shard-*local* failure
        configurations -- monitoring without escalation, crashes,
        partitions, churn, edge-stream transports -- fan out through the
        parallel lockstep engine (``"parallel-lockstep"``, see
        :mod:`repro.distsim.parallel_lockstep`), and everything else runs
        the single global fleet through lockstep window barriers, counting
        cross-shard traffic.  The mode that ran (and, for the fallback,
        the first disqualifying feature) is recorded on the result as
        ``shard_mode`` / ``shard_mode_reason`` and logged under
        ``repro.distsim.sharding``.  Requires ``engine="events"``.
    shard_workers:
        Concurrency cap for the multi-process modes (default: one process
        per non-empty shard, up to the CPU count).  Results are identical
        at any worker count.
    """
    if engine not in ONLINE_ENGINES:
        raise ValueError(f"engine must be one of {ONLINE_ENGINES}, got {engine!r}")
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ValueError(f"shards must be a positive integer, got {shards!r}")
    if shards > 1 and engine != "events":
        raise ValueError("sharded runs require engine='events'")
    transport_instance = build_transport(transport)
    if len(jobs) == 0:
        kind = transport_instance.kind if transport_instance is not None else "reliable"
        return _empty_online_result(engine, kind)

    memo = _omega_memo_entry(jobs)
    if "demand" not in memo:
        memo["demand"] = jobs.demand_map()
    demand = memo["demand"]
    # omega_c and omega_star share one sliding-window sweep (the dominant
    # provisioning cost at the 10^5-vehicle scale), memoized per sequence.
    if (omega is None and "omega_c" not in memo) or "omega_star" not in memo:
        if "cube_maxima" not in memo:
            memo["cube_maxima"] = demand_cube_maxima(demand)
    if omega is None:
        if "omega_c" not in memo:
            memo["omega_c"] = omega_c(demand, maxima=memo["cube_maxima"])
        omega = memo["omega_c"]
    if omega <= 0:
        raise ValueError("omega must be positive for a non-empty job sequence")
    if "omega_star" not in memo:
        memo["omega_star"] = omega_star_cubes(
            demand, maxima=memo["cube_maxima"]
        ).omega
    omega_star = memo["omega_star"]

    churn_events = tuple(churn) if churn is not None else ()
    shard_mode = ""
    shard_mode_reason = ""
    if shards > 1:
        if _parallel_shardable(
            transport,
            transport_instance,
            config,
            rng,
            failure_plan,
            dead_vehicles,
            recovery_rounds,
            churn_events,
            escalation,
        ):
            shard_mode = "parallel"
        else:
            eligible, reason = parallel_lockstep_eligibility(
                transport,
                transport_instance,
                config,
                rng,
                failure_plan,
                recovery_rounds,
                escalation,
            )
            if eligible:
                shard_mode = "parallel-lockstep"
            else:
                shard_mode, shard_mode_reason = "lockstep", reason
        _LOG.info(
            "run_online shards=%d mode=%s%s",
            shards,
            shard_mode,
            f" ({shard_mode_reason})" if shard_mode_reason else "",
        )
    if shard_mode == "parallel":
        return _run_online_parallel(
            jobs,
            demand,
            omega,
            omega_star,
            capacity,
            config,
            transport,
            transport_instance,
            shards,
            workers=shard_workers,
        )
    if shard_mode == "parallel-lockstep":
        return _run_online_parallel_lockstep(
            jobs,
            demand,
            omega,
            omega_star,
            capacity,
            config,
            transport,
            transport_instance,
            shards,
            failure_plan=failure_plan,
            dead_vehicles=dead_vehicles,
            churn_events=churn_events,
            escalation=escalation,
            workers=shard_workers,
        )

    fleet, fleet_config, provisioned, theorem_capacity = provision_fleet(
        demand,
        omega=omega,
        capacity=capacity,
        config=config,
        rng=rng,
        failure_plan=failure_plan,
        dead_vehicles=dead_vehicles,
        transport=transport_instance,
        escalation=escalation,
    )

    monitor: Optional[ShardMonitor] = None
    barrier_count = 0
    if shards > 1:
        # Lockstep mode: one global fleet, advanced through conservative
        # time windows; cross-shard sends are ledgered and exchanged at
        # each barrier.  The executed event order is untouched, so every
        # physical result byte matches the unsharded run.
        shard_plan = ShardPlan(
            fleet.hierarchy, shards, cubes=list(fleet.flat.cube_id_of)
        )
        mailbox = ShardMailbox()
        monitor = ShardMonitor(
            shard_plan, fleet.cube_grid.cube_index, fleet.simulator, mailbox
        )
        fleet.network.shard_monitor = monitor
        # The window floor comes from actual cross-shard edge latencies
        # when the transport is a pure edge function (probing a
        # stream-coupled transport would consume shared draws); otherwise
        # from the transport's global min_latency / message-delay fallback.
        # Lockstep windows are observational -- execution order never
        # depends on them -- so the sampled floor is always safe here.
        bound_transport = fleet.network.transport
        probes = None
        if bound_transport is not None and bound_transport.shardable:
            probes = cross_shard_edge_latencies(
                bound_transport, shard_plan, fleet._cube_members.get
            )
        window_length = lockstep_window(
            bound_transport, fleet_config.message_delay, edge_latencies=probes
        )

        def _lockstep_run(simulator) -> None:
            nonlocal barrier_count
            # Adaptive conservative windows: each barrier sits one full
            # lookahead past the pending frontier instead of on the fixed
            # W-grid, so quiet stretches cross one barrier, not one per
            # grid cell.
            _executed, barrier_count = run_lockstep(
                simulator, window_length, mailbox=mailbox, horizon=window_length
            )

        served_count = _run_events(
            fleet,
            fleet_config,
            jobs,
            recovery_rounds,
            churn_events,
            fleet.failure_plan,
            run=_lockstep_run,
        )
    else:
        driver = _run_events if engine == "events" else _run_rounds
        served_count = driver(
            fleet, fleet_config, jobs, recovery_rounds, churn_events, fleet.failure_plan
        )

    return OnlineResult(
        jobs_total=len(jobs),
        jobs_served=served_count,
        feasible=served_count == len(jobs),
        max_vehicle_energy=fleet.max_energy_used(),
        total_travel=fleet.total_travel(),
        total_service=fleet.total_service(),
        omega=float(omega),
        omega_star=omega_star,
        capacity=provisioned,
        theorem_capacity=theorem_capacity,
        replacements=fleet.stats.replacements,
        searches=fleet.stats.searches_started,
        failed_replacements=fleet.stats.failed_replacements,
        messages=fleet.messages_sent(),
        heartbeat_rounds=fleet.stats.heartbeat_rounds,
        vehicle_energies=fleet.vehicle_energies(),
        engine=engine,
        events_processed=fleet.simulator.events_processed,
        sim_time=fleet.simulator.now,
        transport=fleet.transport_kind,
        messages_dropped=fleet.messages_dropped(),
        messages_corrupted=fleet.messages_corrupted(),
        escalation=fleet_config.escalation,
        escalations=fleet.stats.escalations_started,
        escalated_replacements=fleet.stats.escalated_replacements,
        adoptions=fleet.stats.adoptions,
        shards=shards,
        cross_shard_messages=monitor.cross_shard if monitor is not None else 0,
        window_barriers=barrier_count,
        shard_mode=shard_mode,
        shard_mode_reason=shard_mode_reason,
        monitoring_mode=(
            "gossip"
            if fleet_config.monitoring == "gossip"
            else ("ring" if fleet_config.monitoring else "")
        ),
        suspicions=fleet.stats.suspicions,
        attestations=fleet.stats.attestations,
        refused_attestations=fleet.stats.refused_attestations,
        false_suspicions=fleet.stats.false_suspicions,
        detections=int(fleet.detection_digest.count),
        detection_p50=(
            fleet.detection_digest.quantile(0.5) if fleet.detection_digest.count else 0.0
        ),
        detection_p99=(
            fleet.detection_digest.quantile(0.99)
            if fleet.detection_digest.count
            else 0.0
        ),
    )
