"""The online simulation harness (Chapter 3 / Theorem 1.4.2).

:func:`run_online` plays a timed job sequence against the decentralized
strategy of Section 3.2: jobs are revealed one at a time, each is served by
the active vehicle of its black/white pair, exhausted vehicles are replaced
through Phase I/II diffusing computations, and (optionally) the monitoring
loop of Section 3.2.5 recovers from initiation failures and dead vehicles.

Both drivers now run on the same event clock:

* ``engine="events"`` (the default): arrivals, heartbeat ticks, churn and
  partition windows are all scheduled on the fleet's discrete-event
  simulator at the jobs' arrival times; protocol messages interleave in
  timestamp order.  This is the asynchronous system the paper actually
  analyzes, and the only driver under which timed failures and non-trivial
  transports (latency, loss, corruption) have a meaningful clock position.
* ``engine="rounds"``: a thin adapter over the same clock that schedules
  each job as a *round barrier* event and settles the network to quiescence
  inside the barrier -- the historical lockstep "deliver, settle,
  heartbeat" semantics, byte-identical to the pre-adapter rounds driver on
  failure-free runs (the conformance tests assert both the adapter/event
  equivalence and the physical fingerprint).

Message delivery itself is owned by a pluggable
:class:`~repro.distsim.transport.Transport`; pass ``transport=`` (an
instance, a :class:`~repro.distsim.transport.TransportSpec`, or a bare kind
name) to run the protocol over latency jitter, seeded loss, or Byzantine
corruption.

Failure timing (``FailurePlan`` partitions, churn schedules) is expressed
on the *job clock*: job ``k`` of a sequence built by
``JobSequence.from_positions`` arrives at time ``k + 1``.

The harness reports everything Theorem 1.4.2 talks about: whether every job
was served, the largest per-vehicle energy actually drawn (the empirical
``W_on``), the provisioned capacity, and the offline lower bound it should
be compared against.
"""

from __future__ import annotations

import dataclasses
import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.demand import DemandMap, JobSequence
from repro.core.offline import online_upper_bound_factor
from repro.core.omega import omega_c, omega_star_cubes
from repro.distsim.failures import ChurnSpec, FailurePlan, apply_churn
from repro.distsim.transport import Transport, TransportSpec, build_transport
from repro.grid.lattice import Point
from repro.vehicles.fleet import Fleet, FleetConfig

__all__ = ["OnlineResult", "run_online", "provision_fleet", "ONLINE_ENGINES"]

CapacitySpec = Union[None, float, Literal["theorem"]]

#: The two harness drivers (see the module docstring); the first is the default.
ONLINE_ENGINES = ("events", "rounds")

#: Identity-keyed memo of the omega quantities per job sequence, each
#: computed lazily (a run with an explicit ``omega=`` never needs
#: ``omega_c`` at all).  Sequences are immutable by convention and
#: sweeps/benchmarks replay the same one many times, so each cube
#: maximization is paid at most once per workload instead of once per run.
#: The stored length guards the common violation of that convention
#: (extending ``jobs.jobs`` in place triggers a fresh computation); a
#: same-length in-place element swap is NOT detected -- sequences are
#: immutable by contract, the guard is a cheap backstop, not a content
#: hash.  Entries are evicted when the sequence is garbage-collected
#: (``weakref.finalize``), so the memo cannot leak.
_OMEGA_MEMO: Dict[int, Dict[str, float]] = {}


def _omega_memo_entry(jobs: JobSequence) -> Dict[str, float]:
    key = id(jobs)
    entry = _OMEGA_MEMO.get(key)
    if entry is None or entry["len"] != len(jobs):
        if entry is None:
            weakref.finalize(jobs, _OMEGA_MEMO.pop, key, None)
        entry = {"len": len(jobs)}
        _OMEGA_MEMO[key] = entry
    return entry


@dataclass
class OnlineResult:
    """Everything measured during one online run."""

    #: Number of jobs in the input sequence.
    jobs_total: int
    #: Jobs actually served (equal to ``jobs_total`` iff the run is feasible).
    jobs_served: int
    #: Whether every job was served by an adjacent active vehicle.
    feasible: bool
    #: Largest per-vehicle energy drawn -- the empirical online requirement.
    max_vehicle_energy: float
    #: Total travel energy across the fleet.
    total_travel: float
    #: Total service energy across the fleet.
    total_service: float
    #: The omega value the strategy partitioned the lattice with.
    omega: float
    #: The offline lower bound ``max_T omega_T`` (over cubes) for this demand.
    omega_star: float
    #: Capacity provisioned per vehicle (``None`` = unbounded measurement).
    capacity: Optional[float]
    #: The Lemma 3.3.1 capacity ``(4 * 3^l + l) * omega``.
    theorem_capacity: float
    #: Protocol counters.
    replacements: int
    searches: int
    failed_replacements: int
    messages: int
    heartbeat_rounds: int
    #: Per-vehicle energies at the end of the run (home vertex -> energy).
    vehicle_energies: Dict[Point, float] = field(default_factory=dict)
    #: Which harness driver produced the result.
    engine: str = "events"
    #: Simulator events executed during the run (messages, arrivals, ticks).
    events_processed: int = 0
    #: Final simulation-clock time.
    sim_time: float = 0.0
    #: Registry name of the message transport the run used.
    transport: str = "reliable"
    #: Messages lost to failures or the transport.
    messages_dropped: int = 0
    #: Messages the transport mutated in flight (Byzantine corruption).
    messages_corrupted: int = 0
    #: Whether cross-cube escalation was enabled for the run.
    escalation: bool = False
    #: Phase I searches that escalated past their own cube.
    escalations: int = 0
    #: Replacements found by an escalated (cross-cube) round.
    escalated_replacements: int = 0
    #: Far pairs adopted by active vehicles with spare battery.
    adoptions: int = 0

    @property
    def online_to_offline_ratio(self) -> float:
        """``max_vehicle_energy / omega_star`` -- the constant Theorem 1.4.2 bounds.

        A degenerate scenario with ``omega_star == 0`` but positive energy
        spent violates *any* multiplicative bound, so it reports ``inf``
        rather than masquerading as meeting the Theorem 1.4.2 constant;
        only a run that spent nothing against a zero bound is a clean 1.0.
        """
        if self.omega_star == 0:
            return math.inf if self.max_vehicle_energy > 0 else 1.0
        return self.max_vehicle_energy / self.omega_star


def _empty_online_result(engine: str, transport: str = "reliable") -> OnlineResult:
    return OnlineResult(
        jobs_total=0,
        jobs_served=0,
        feasible=True,
        max_vehicle_energy=0.0,
        total_travel=0.0,
        total_service=0.0,
        omega=0.0,
        omega_star=0.0,
        capacity=None,
        theorem_capacity=0.0,
        replacements=0,
        searches=0,
        failed_replacements=0,
        messages=0,
        heartbeat_rounds=0,
        engine=engine,
        transport=transport,
    )


def _serve_with_recovery(
    fleet: Fleet,
    config: FleetConfig,
    job,
    recovery_rounds: int,
) -> bool:
    """Round-mode service: deliver, recover via heartbeat rounds, then tick."""
    served = fleet.deliver_job(job.position, job.energy)
    if not served and recovery_rounds > 0 and config.monitoring:
        for _ in range(recovery_rounds):
            fleet.run_heartbeat_round()
        served = fleet.retry_job(job.position, job.energy)
    if config.monitoring:
        fleet.run_heartbeat_round()
    return served


def _churn_hooks(fleet: Fleet):
    """The leave/join callbacks both drivers feed to :func:`apply_churn`.

    Vertices that host no vehicle in this run are ignored, mirroring the
    ``dead_vehicles`` contract.
    """

    def leave(vertex: Point) -> None:
        if vertex in fleet.vehicles:
            fleet.crash_vehicle(vertex)

    def join(vertex: Point) -> None:
        if vertex in fleet.vehicles:
            fleet.revive_vehicle(vertex)

    return leave, join


def provision_fleet(
    demand: DemandMap,
    *,
    omega: float,
    capacity: CapacitySpec = "theorem",
    config: Optional[FleetConfig] = None,
    rng: Optional[np.random.Generator] = None,
    failure_plan: Optional[FailurePlan] = None,
    dead_vehicles: Optional[Iterable[Sequence[int]]] = None,
    transport: Optional[Transport] = None,
    escalation: Optional[bool] = None,
) -> Tuple[Fleet, FleetConfig, Optional[float], float]:
    """Build the fleet a driver runs against, exactly as :func:`run_online` does.

    ``omega`` must already be resolved (``run_online`` memoizes ``omega_c``
    per sequence; a streaming caller computes it from the demand map once).
    Returns ``(fleet, fleet_config, provisioned, theorem_capacity)`` --
    construction order and the dead-vehicle crash sweep are shared with the
    batch path so a service run provisions a byte-identical fleet.
    """
    theorem_capacity = online_upper_bound_factor(demand.dim) * omega

    if capacity == "theorem":
        provisioned: Optional[float] = theorem_capacity
    else:
        provisioned = capacity  # a float or None

    base = config if config is not None else FleetConfig()
    overrides: Dict[str, object] = {"capacity": provisioned}
    if escalation is not None:
        overrides["escalation"] = bool(escalation)
    fleet_config = dataclasses.replace(base, **overrides)
    fleet = Fleet(
        demand,
        omega,
        fleet_config,
        rng=rng,
        failure_plan=failure_plan,
        transport=transport,
    )
    if dead_vehicles is not None:
        # Scenario 3: these vehicles are dead from the start -- they cannot
        # move, serve, or heartbeat, but their radios still relay protocol
        # messages (communication is free in the thesis's model), so the
        # monitoring loop can replace them.  Points that host no vehicle in
        # this run are ignored.
        for identity in sorted({tuple(int(c) for c in p) for p in dead_vehicles}):
            if identity in fleet.vehicles:
                fleet.crash_vehicle(identity)
    return fleet, fleet_config, provisioned, theorem_capacity


def _schedule_churn(
    fleet: Fleet,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
    churn_applied: Set[ChurnSpec],
) -> None:
    """Schedule every not-yet-applied churn event on the fleet's clock.

    Specs already in ``churn_applied`` are skipped (a resumed run re-schedules
    only its remaining churn); the rest are pushed in the canonical
    ``(time, vertex, action)`` order so same-time events keep their relative
    sequence across batch, streaming, and resumed runs.
    """
    simulator = fleet.simulator
    leave, join = _churn_hooks(fleet)
    for spec in sorted(churn, key=lambda e: (e.time, e.vertex, e.action)):
        if spec in churn_applied:
            continue

        def _churn_event(spec: ChurnSpec = spec) -> None:
            plan.set_time(simulator.now)
            apply_churn([spec], simulator.now, churn_applied, leave=leave, join=join)

        simulator.schedule_at(spec.time, _churn_event, kind="churn")


def _arrival_logic(
    fleet: Fleet,
    fleet_config: FleetConfig,
    plan: FailurePlan,
    recovery_rounds: int,
    record,
):
    """The event-mode per-job service logic, shared by batch and streaming.

    Returns ``make_handler(index, job)`` producing the zero-argument arrival
    action the calendar queue executes.  ``record(index, job, latency)`` is
    called once per *successfully served* job -- immediately on delivery
    (latency 0) or from the recovery retry (latency = retry delay); a job
    whose retry also fails is never recorded.
    """
    simulator = fleet.simulator

    def _heartbeat() -> None:
        fleet.run_heartbeat_round(settle=False)

    def _arrival(index: int, job, pair_key) -> None:
        plan.set_time(simulator.now)
        if fleet.deliver_job(job.position, job.energy, settle=False, pair_key=pair_key):
            record(index, job, simulator.now - job.time)
            if fleet_config.monitoring:
                _heartbeat()
            return
        if recovery_rounds > 0 and fleet_config.monitoring:
            # Recovery must happen *on the clock*: each heartbeat round is a
            # scheduled event so its protocol messages (watch initiations,
            # Phase I/II replacements) are delivered before the retry fires
            # -- all strictly before the next arrival at +1.  The whole
            # recovery window goes to the calendar queue as one batch.
            spacing = 0.5 / recovery_rounds
            now = simulator.now
            simulator.schedule_batch(
                (
                    (now + spacing * round_index, _heartbeat)
                    for round_index in range(1, recovery_rounds + 1)
                ),
                kind="heartbeat",
            )

            def _retry(index: int = index, job=job) -> None:
                if fleet.retry_job(job.position, job.energy, settle=False):
                    record(index, job, simulator.now - job.time)

            simulator.schedule(0.7, _retry, kind="retry")
            simulator.schedule(0.8, _heartbeat, kind="heartbeat")
        elif fleet_config.monitoring:
            _heartbeat()

    def make_handler(index: int, job, pair_key=None):
        def _handler() -> None:
            _arrival(index, job, pair_key)

        return _handler

    return make_handler


def _run_rounds(
    fleet: Fleet,
    fleet_config: FleetConfig,
    jobs: JobSequence,
    recovery_rounds: int,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
) -> int:
    """The lockstep driver as a thin adapter over the event clock.

    Each job becomes one *round barrier* event scheduled at the job's
    arrival time; the barrier delivers the job, runs the recovery heartbeat
    rounds, and settles the network to quiescence before the next barrier
    is scheduled -- exactly the historical "deliver, settle, heartbeat"
    sequence, so the physical outcome (energies, messages, counters) is
    byte-identical to the pre-adapter rounds driver on failure-free runs.
    The only difference is that the barriers now *live on the clock*: the
    simulation time of a round-mode run advances through the jobs' arrival
    times instead of idling near zero.
    """
    simulator = fleet.simulator
    served_count = 0
    churn_applied: Set[ChurnSpec] = set()
    leave, join = _churn_hooks(fleet)

    for job in jobs:
        served = False

        def _barrier(job=job) -> None:
            nonlocal served
            plan.set_time(job.time)
            apply_churn(churn, job.time, churn_applied, leave=leave, join=join)
            served = _serve_with_recovery(fleet, fleet_config, job, recovery_rounds)

        # A message storm may already have pushed the clock past this job's
        # arrival time; the barrier then fires immediately (the failure
        # clock still uses job.time, as the lockstep driver always did).
        simulator.schedule_at(max(job.time, simulator.now), _barrier, kind="round-barrier")
        simulator.run_until_quiescent()
        if served:
            served_count += 1
    return served_count


def _run_events(
    fleet: Fleet,
    fleet_config: FleetConfig,
    jobs: JobSequence,
    recovery_rounds: int,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
) -> int:
    """The event driver: arrivals and failure windows on the simulator clock.

    Each job becomes an arrival event at its ``job.time``; churn events are
    scheduled at their own times; the failure clock tracks the simulation
    clock, so partition windows activate exactly when the clock enters
    them.  Protocol messages drain between arrivals in timestamp order
    (message delays are assumed small against the inter-arrival gap, which
    is the thesis's standing assumption).
    """
    simulator = fleet.simulator
    served: List[bool] = [False] * len(jobs)
    churn_applied: Set[ChurnSpec] = set()
    _schedule_churn(fleet, churn, plan, churn_applied)

    def record(index: int, job, latency: float) -> None:
        served[index] = True

    make_handler = _arrival_logic(fleet, fleet_config, plan, recovery_rounds, record)

    # The whole arrival sequence goes to the calendar queue in one call,
    # pre-routed with a single vectorized position->pair lookup.
    routed = fleet.route_positions([job.position for job in jobs])
    simulator.schedule_batch(
        (
            (job.time, make_handler(index, job, routed[index]))
            for index, job in enumerate(jobs)
        ),
        kind="arrival",
    )

    simulator.run_until_quiescent()
    return sum(served)


def run_online(
    jobs: JobSequence,
    *,
    omega: Optional[float] = None,
    capacity: CapacitySpec = "theorem",
    config: Optional[FleetConfig] = None,
    rng: Optional[np.random.Generator] = None,
    failure_plan: Optional[FailurePlan] = None,
    dead_vehicles: Optional[Iterable[Sequence[int]]] = None,
    recovery_rounds: int = 0,
    churn: Optional[Iterable[ChurnSpec]] = None,
    engine: str = "events",
    transport: Union[Transport, TransportSpec, str, None] = None,
    escalation: Optional[bool] = None,
) -> OnlineResult:
    """Run the online strategy on a job sequence.

    Parameters
    ----------
    jobs:
        The timed job sequence (revealed to the fleet one job at a time).
    omega:
        The cube-partition parameter.  Defaults to ``omega_c`` of the
        sequence's demand map, as the thesis's provisioning does.
    capacity:
        ``"theorem"`` provisions every vehicle with the Lemma 3.3.1 budget
        ``(4 * 3^l + l) * omega``; a float provisions that amount; ``None``
        runs with unbounded batteries and merely measures the energy drawn.
    config:
        Fleet configuration; its ``capacity`` field is overridden by the
        ``capacity`` argument.
    failure_plan:
        Crash / suppression / partition injection for the failure-scenario
        experiments.  Partition windows are expressed on the job clock.
    dead_vehicles:
        Home vertices of vehicles that are broken from the start (scenario
        3); dead vehicles cannot act but their radios still relay.
    recovery_rounds:
        When a job cannot be served immediately (its pair's vehicle is dead
        or out of energy), run this many heartbeat rounds -- letting the
        monitoring loop install a replacement -- and retry once.  Requires
        ``config.monitoring``.
    churn:
        Timed :class:`~repro.distsim.failures.ChurnSpec` events (vehicles
        leaving and rejoining), expressed on the job clock.  Vertices that
        host no vehicle in this run are ignored.
    engine:
        ``"events"`` (the event-driven driver, the default) or ``"rounds"``
        (the lockstep compatibility adapter; see the module docstring).
    transport:
        The message delivery model: a
        :class:`~repro.distsim.transport.Transport` instance (single-use),
        a :class:`~repro.distsim.transport.TransportSpec`, or a bare kind
        name such as ``"lossy"``.  Defaults to the historical channel
        (fixed ``config.message_delay``, randomized when ``rng`` is given).
    escalation:
        Whether an exhausted Phase I search may escalate through the cube
        hierarchy (cross-cube replacement; see
        :class:`~repro.vehicles.fleet.FleetConfig`).  ``None`` keeps the
        ``config``'s setting.
    """
    if engine not in ONLINE_ENGINES:
        raise ValueError(f"engine must be one of {ONLINE_ENGINES}, got {engine!r}")
    transport_instance = build_transport(transport)
    if len(jobs) == 0:
        kind = transport_instance.kind if transport_instance is not None else "reliable"
        return _empty_online_result(engine, kind)

    memo = _omega_memo_entry(jobs)
    if "demand" not in memo:
        memo["demand"] = jobs.demand_map()
    demand = memo["demand"]
    if omega is None:
        if "omega_c" not in memo:
            memo["omega_c"] = omega_c(demand)
        omega = memo["omega_c"]
    if omega <= 0:
        raise ValueError("omega must be positive for a non-empty job sequence")
    if "omega_star" not in memo:
        memo["omega_star"] = omega_star_cubes(demand).omega
    omega_star = memo["omega_star"]

    fleet, fleet_config, provisioned, theorem_capacity = provision_fleet(
        demand,
        omega=omega,
        capacity=capacity,
        config=config,
        rng=rng,
        failure_plan=failure_plan,
        dead_vehicles=dead_vehicles,
        transport=transport_instance,
        escalation=escalation,
    )

    churn_events = tuple(churn) if churn is not None else ()
    driver = _run_events if engine == "events" else _run_rounds
    served_count = driver(
        fleet, fleet_config, jobs, recovery_rounds, churn_events, fleet.failure_plan
    )

    return OnlineResult(
        jobs_total=len(jobs),
        jobs_served=served_count,
        feasible=served_count == len(jobs),
        max_vehicle_energy=fleet.max_energy_used(),
        total_travel=fleet.total_travel(),
        total_service=fleet.total_service(),
        omega=float(omega),
        omega_star=omega_star,
        capacity=provisioned,
        theorem_capacity=theorem_capacity,
        replacements=fleet.stats.replacements,
        searches=fleet.stats.searches_started,
        failed_replacements=fleet.stats.failed_replacements,
        messages=fleet.messages_sent(),
        heartbeat_rounds=fleet.stats.heartbeat_rounds,
        vehicle_energies=fleet.vehicle_energies(),
        engine=engine,
        events_processed=fleet.simulator.events_processed,
        sim_time=fleet.simulator.now,
        transport=fleet.transport_kind,
        messages_dropped=fleet.messages_dropped(),
        messages_corrupted=fleet.messages_corrupted(),
        escalation=fleet_config.escalation,
        escalations=fleet.stats.escalations_started,
        escalated_replacements=fleet.stats.escalated_replacements,
        adoptions=fleet.stats.adoptions,
    )
