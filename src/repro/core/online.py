"""The online simulation harness (Chapter 3 / Theorem 1.4.2).

:func:`run_online` plays a timed job sequence against the decentralized
strategy of Section 3.2: jobs are revealed one at a time, each is served by
the active vehicle of its black/white pair, exhausted vehicles are replaced
through Phase I/II diffusing computations, and (optionally) the monitoring
loop of Section 3.2.5 recovers from initiation failures and dead vehicles.

Two drivers are available:

* ``engine="rounds"`` (the historical default): the harness loop delivers a
  job, drains the network to quiescence, and runs lockstep heartbeat
  rounds.  Simple, and the semantics every existing experiment was written
  against.
* ``engine="events"``: arrivals, heartbeat ticks, churn and partition
  windows are all scheduled on the fleet's discrete-event simulator at the
  jobs' arrival times; protocol messages interleave in timestamp order.
  On failure-free runs the two drivers produce identical results (the
  conformance tests assert it); under timed failures only the event driver
  gives failures a meaningful position on the clock.

Failure timing (``FailurePlan`` partitions, churn schedules) is expressed
on the *job clock*: job ``k`` of a sequence built by
``JobSequence.from_positions`` arrives at time ``k + 1``.

The harness reports everything Theorem 1.4.2 talks about: whether every job
was served, the largest per-vehicle energy actually drawn (the empirical
``W_on``), the provisioned capacity, and the offline lower bound it should
be compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Set, Union

import numpy as np

from repro.core.demand import DemandMap, JobSequence
from repro.core.offline import online_upper_bound_factor
from repro.core.omega import omega_c, omega_star_cubes
from repro.distsim.failures import ChurnSpec, FailurePlan, apply_churn
from repro.grid.lattice import Point
from repro.vehicles.fleet import Fleet, FleetConfig

__all__ = ["OnlineResult", "run_online", "ONLINE_ENGINES"]

CapacitySpec = Union[None, float, Literal["theorem"]]

#: The two harness drivers (see the module docstring).
ONLINE_ENGINES = ("rounds", "events")


@dataclass
class OnlineResult:
    """Everything measured during one online run."""

    #: Number of jobs in the input sequence.
    jobs_total: int
    #: Jobs actually served (equal to ``jobs_total`` iff the run is feasible).
    jobs_served: int
    #: Whether every job was served by an adjacent active vehicle.
    feasible: bool
    #: Largest per-vehicle energy drawn -- the empirical online requirement.
    max_vehicle_energy: float
    #: Total travel energy across the fleet.
    total_travel: float
    #: Total service energy across the fleet.
    total_service: float
    #: The omega value the strategy partitioned the lattice with.
    omega: float
    #: The offline lower bound ``max_T omega_T`` (over cubes) for this demand.
    omega_star: float
    #: Capacity provisioned per vehicle (``None`` = unbounded measurement).
    capacity: Optional[float]
    #: The Lemma 3.3.1 capacity ``(4 * 3^l + l) * omega``.
    theorem_capacity: float
    #: Protocol counters.
    replacements: int
    searches: int
    failed_replacements: int
    messages: int
    heartbeat_rounds: int
    #: Per-vehicle energies at the end of the run (home vertex -> energy).
    vehicle_energies: Dict[Point, float] = field(default_factory=dict)
    #: Which harness driver produced the result.
    engine: str = "rounds"
    #: Simulator events executed during the run (messages, arrivals, ticks).
    events_processed: int = 0
    #: Final simulation-clock time.
    sim_time: float = 0.0

    @property
    def online_to_offline_ratio(self) -> float:
        """``max_vehicle_energy / omega_star`` -- the constant Theorem 1.4.2 bounds."""
        if self.omega_star == 0:
            return 1.0
        return self.max_vehicle_energy / self.omega_star


def _empty_online_result(engine: str) -> OnlineResult:
    return OnlineResult(
        jobs_total=0,
        jobs_served=0,
        feasible=True,
        max_vehicle_energy=0.0,
        total_travel=0.0,
        total_service=0.0,
        omega=0.0,
        omega_star=0.0,
        capacity=None,
        theorem_capacity=0.0,
        replacements=0,
        searches=0,
        failed_replacements=0,
        messages=0,
        heartbeat_rounds=0,
        engine=engine,
    )


def _serve_with_recovery(
    fleet: Fleet,
    config: FleetConfig,
    job,
    recovery_rounds: int,
) -> bool:
    """Round-mode service: deliver, recover via heartbeat rounds, then tick."""
    served = fleet.deliver_job(job.position, job.energy)
    if not served and recovery_rounds > 0 and config.monitoring:
        for _ in range(recovery_rounds):
            fleet.run_heartbeat_round()
        served = fleet.retry_job(job.position, job.energy)
    if config.monitoring:
        fleet.run_heartbeat_round()
    return served


def _churn_hooks(fleet: Fleet):
    """The leave/join callbacks both drivers feed to :func:`apply_churn`.

    Vertices that host no vehicle in this run are ignored, mirroring the
    ``dead_vehicles`` contract.
    """

    def leave(vertex: Point) -> None:
        if vertex in fleet.vehicles:
            fleet.crash_vehicle(vertex)

    def join(vertex: Point) -> None:
        if vertex in fleet.vehicles:
            fleet.revive_vehicle(vertex)

    return leave, join


def _run_rounds(
    fleet: Fleet,
    fleet_config: FleetConfig,
    jobs: JobSequence,
    recovery_rounds: int,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
) -> int:
    """The lockstep driver: deliver, settle, heartbeat -- one job at a time."""
    served_count = 0
    churn_applied: Set[ChurnSpec] = set()
    leave, join = _churn_hooks(fleet)

    for job in jobs:
        plan.set_time(job.time)
        apply_churn(churn, job.time, churn_applied, leave=leave, join=join)
        if _serve_with_recovery(fleet, fleet_config, job, recovery_rounds):
            served_count += 1
    return served_count


def _run_events(
    fleet: Fleet,
    fleet_config: FleetConfig,
    jobs: JobSequence,
    recovery_rounds: int,
    churn: Sequence[ChurnSpec],
    plan: FailurePlan,
) -> int:
    """The event driver: arrivals and failure windows on the simulator clock.

    Each job becomes an arrival event at its ``job.time``; churn events are
    scheduled at their own times; the failure clock tracks the simulation
    clock, so partition windows activate exactly when the clock enters
    them.  Protocol messages drain between arrivals in timestamp order
    (message delays are assumed small against the inter-arrival gap, which
    is the thesis's standing assumption).
    """
    simulator = fleet.simulator
    served: List[bool] = [False] * len(jobs)
    churn_applied: Set[ChurnSpec] = set()
    leave, join = _churn_hooks(fleet)

    for spec in sorted(churn, key=lambda e: (e.time, e.vertex, e.action)):
        def _churn_event(spec: ChurnSpec = spec) -> None:
            plan.set_time(simulator.now)
            apply_churn([spec], simulator.now, churn_applied, leave=leave, join=join)

        simulator.schedule_at(spec.time, _churn_event, kind="churn")

    def _heartbeat() -> None:
        fleet.run_heartbeat_round(settle=False)

    def _arrival(index: int, job) -> None:
        plan.set_time(simulator.now)
        if fleet.deliver_job(job.position, job.energy, settle=False):
            served[index] = True
            if fleet_config.monitoring:
                _heartbeat()
            return
        if recovery_rounds > 0 and fleet_config.monitoring:
            # Recovery must happen *on the clock*: each heartbeat round is a
            # scheduled event so its protocol messages (watch initiations,
            # Phase I/II replacements) are delivered before the retry fires
            # -- all strictly before the next arrival at +1.
            spacing = 0.5 / recovery_rounds
            for round_index in range(1, recovery_rounds + 1):
                simulator.schedule(spacing * round_index, _heartbeat, kind="heartbeat")

            def _retry(index: int = index, job=job) -> None:
                if fleet.retry_job(job.position, job.energy, settle=False):
                    served[index] = True

            simulator.schedule(0.7, _retry, kind="retry")
            simulator.schedule(0.8, _heartbeat, kind="heartbeat")
        elif fleet_config.monitoring:
            _heartbeat()

    for index, job in enumerate(jobs):
        def _handler(index: int = index, job=job) -> None:
            _arrival(index, job)

        simulator.schedule_at(job.time, _handler, kind="arrival")

    simulator.run_until_quiescent()
    return sum(served)


def run_online(
    jobs: JobSequence,
    *,
    omega: Optional[float] = None,
    capacity: CapacitySpec = "theorem",
    config: Optional[FleetConfig] = None,
    rng: Optional[np.random.Generator] = None,
    failure_plan: Optional[FailurePlan] = None,
    dead_vehicles: Optional[Iterable[Sequence[int]]] = None,
    recovery_rounds: int = 0,
    churn: Optional[Iterable[ChurnSpec]] = None,
    engine: str = "rounds",
) -> OnlineResult:
    """Run the online strategy on a job sequence.

    Parameters
    ----------
    jobs:
        The timed job sequence (revealed to the fleet one job at a time).
    omega:
        The cube-partition parameter.  Defaults to ``omega_c`` of the
        sequence's demand map, as the thesis's provisioning does.
    capacity:
        ``"theorem"`` provisions every vehicle with the Lemma 3.3.1 budget
        ``(4 * 3^l + l) * omega``; a float provisions that amount; ``None``
        runs with unbounded batteries and merely measures the energy drawn.
    config:
        Fleet configuration; its ``capacity`` field is overridden by the
        ``capacity`` argument.
    failure_plan:
        Crash / suppression / partition injection for the failure-scenario
        experiments.  Partition windows are expressed on the job clock.
    dead_vehicles:
        Home vertices of vehicles that are broken from the start (scenario
        3); dead vehicles cannot act but their radios still relay.
    recovery_rounds:
        When a job cannot be served immediately (its pair's vehicle is dead
        or out of energy), run this many heartbeat rounds -- letting the
        monitoring loop install a replacement -- and retry once.  Requires
        ``config.monitoring``.
    churn:
        Timed :class:`~repro.distsim.failures.ChurnSpec` events (vehicles
        leaving and rejoining), expressed on the job clock.  Vertices that
        host no vehicle in this run are ignored.
    engine:
        ``"rounds"`` (lockstep compatibility driver) or ``"events"`` (the
        event-driven driver; see the module docstring).
    """
    if engine not in ONLINE_ENGINES:
        raise ValueError(f"engine must be one of {ONLINE_ENGINES}, got {engine!r}")
    if len(jobs) == 0:
        return _empty_online_result(engine)

    demand = jobs.demand_map()
    dim = demand.dim
    if omega is None:
        omega = omega_c(demand)
    if omega <= 0:
        raise ValueError("omega must be positive for a non-empty job sequence")
    omega_star = omega_star_cubes(demand).omega
    theorem_capacity = online_upper_bound_factor(dim) * omega

    if capacity == "theorem":
        provisioned: Optional[float] = theorem_capacity
    else:
        provisioned = capacity  # a float or None

    base = config if config is not None else FleetConfig()
    fleet_config = FleetConfig(
        capacity=provisioned,
        neighbor_radius=base.neighbor_radius,
        message_delay=base.message_delay,
        done_threshold=base.done_threshold,
        monitoring=base.monitoring,
        heartbeat_miss_threshold=base.heartbeat_miss_threshold,
    )
    fleet = Fleet(demand, omega, fleet_config, rng=rng, failure_plan=failure_plan)
    if dead_vehicles is not None:
        # Scenario 3: these vehicles are dead from the start -- they cannot
        # move, serve, or heartbeat, but their radios still relay protocol
        # messages (communication is free in the thesis's model), so the
        # monitoring loop can replace them.  Points that host no vehicle in
        # this run are ignored.
        for identity in sorted({tuple(int(c) for c in p) for p in dead_vehicles}):
            if identity in fleet.vehicles:
                fleet.crash_vehicle(identity)

    churn_events = tuple(churn) if churn is not None else ()
    driver = _run_events if engine == "events" else _run_rounds
    served_count = driver(
        fleet, fleet_config, jobs, recovery_rounds, churn_events, fleet.failure_plan
    )

    return OnlineResult(
        jobs_total=len(jobs),
        jobs_served=served_count,
        feasible=served_count == len(jobs),
        max_vehicle_energy=fleet.max_energy_used(),
        total_travel=fleet.total_travel(),
        total_service=fleet.total_service(),
        omega=float(omega),
        omega_star=omega_star,
        capacity=provisioned,
        theorem_capacity=theorem_capacity,
        replacements=fleet.stats.replacements,
        searches=fleet.stats.searches_started,
        failed_replacements=fleet.stats.failed_replacements,
        messages=fleet.messages_sent(),
        heartbeat_rounds=fleet.stats.heartbeat_rounds,
        vehicle_energies=fleet.vehicle_energies(),
        engine=engine,
        events_processed=fleet.simulator.events_processed,
        sim_time=fleet.simulator.now,
    )
