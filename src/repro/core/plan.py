"""Service plans and the constructive plan of Lemma 2.2.5.

A *service plan* assigns to some vehicles a route: starting at the
vehicle's home vertex, the vehicle visits a sequence of positions and
serves a stated amount of demand at each.  Travel costs one unit of energy
per unit of Manhattan distance; serving costs the served amount.  The plan
abstraction is shared by the offline constructions (this module), the
greedy baseline (:mod:`repro.baselines.greedy`) and the audits
(:mod:`repro.core.feasibility`).

:func:`build_cube_plan` realizes the upper-bound construction of
Lemma 2.2.5 / Corollary 2.2.6: partition the lattice into
``ceil(omega*)``-cubes, let every vehicle first serve demand at its home
vertex up to ``3^l * omega*``, then (if needed) move to one position inside
its own cube and serve up to ``3^l * omega*`` there.  The lemma's counting
argument guarantees the cube has enough vehicles; the construction below
realizes it greedily and the audit verifies the outcome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.demand import DemandMap
from repro.core.omega import omega_star_cubes
from repro.grid.cubes import CubeGrid
from repro.grid.lattice import Box, Point, manhattan

__all__ = ["VehicleRoute", "ServicePlan", "build_cube_plan", "plan_window"]


@dataclass(frozen=True)
class VehicleRoute:
    """One vehicle's itinerary: start at home, then visit stops in order.

    Attributes
    ----------
    start:
        The vehicle's home vertex (where it is initially parked).
    stops:
        Ordered ``(position, energy served there)`` pairs.  The first leg is
        from ``start`` to the first stop.  Serving at the home vertex is
        expressed as a stop at ``start`` (zero-length leg).
    """

    start: Point
    stops: Tuple[Tuple[Point, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", tuple(int(c) for c in self.start))
        cleaned = []
        for position, energy in self.stops:
            energy = float(energy)
            if energy < 0:
                raise ValueError(f"negative service amount {energy} at {position}")
            cleaned.append((tuple(int(c) for c in position), energy))
        object.__setattr__(self, "stops", tuple(cleaned))

    @property
    def travel_cost(self) -> float:
        """Total Manhattan distance walked along the route."""
        cost = 0.0
        current = self.start
        for position, _ in self.stops:
            cost += manhattan(current, position)
            current = position
        return cost

    @property
    def service_energy(self) -> float:
        """Total energy spent serving demand."""
        return sum(energy for _, energy in self.stops)

    @property
    def total_energy(self) -> float:
        """Travel plus service energy -- what the vehicle's battery must hold."""
        return self.travel_cost + self.service_energy

    def served_at(self) -> Dict[Point, float]:
        """Aggregate service amounts per position."""
        served: Dict[Point, float] = {}
        for position, energy in self.stops:
            if energy > 0:
                served[position] = served.get(position, 0.0) + energy
        return served


@dataclass
class ServicePlan:
    """A collection of vehicle routes meant to cover a demand map."""

    dim: int
    routes: List[VehicleRoute] = field(default_factory=list)
    #: Optional metadata recorded by the planner (cube side, omega, ...).
    metadata: Dict[str, float] = field(default_factory=dict)

    def __iter__(self) -> Iterator[VehicleRoute]:
        return iter(self.routes)

    def __len__(self) -> int:
        return len(self.routes)

    def add(self, route: VehicleRoute) -> None:
        """Append a route (ignored if it neither travels nor serves)."""
        if route.stops:
            self.routes.append(route)

    def served_by_position(self) -> Dict[Point, float]:
        """Total energy delivered per position across all routes."""
        served: Dict[Point, float] = {}
        for route in self.routes:
            for position, energy in route.served_at().items():
                served[position] = served.get(position, 0.0) + energy
        return served

    def max_vehicle_energy(self) -> float:
        """The largest single-vehicle energy requirement of the plan.

        This is the quantity compared against the capacity ``W``: a plan is
        realizable with capacity ``W`` exactly when this does not exceed
        ``W`` (assuming distinct vehicles, which the audit checks).
        """
        return max((route.total_energy for route in self.routes), default=0.0)

    def total_energy(self) -> float:
        """Total energy spent across the fleet (travel plus service)."""
        return sum(route.total_energy for route in self.routes)

    def total_travel(self) -> float:
        """Total travel distance across the fleet."""
        return sum(route.travel_cost for route in self.routes)

    def vehicles_used(self) -> List[Point]:
        """Home vertices of the vehicles with non-empty routes."""
        return [route.start for route in self.routes]


def plan_window(demand: DemandMap, side: int) -> Box:
    """A window box containing the demand support, aligned for ``side``-cubes.

    The window starts at the support's bounding-box corner and extends so
    each axis length is a multiple of ``side``; the cube partition of this
    window therefore consists of full cubes.
    """
    bbox = demand.bounding_box()
    lengths = [
        max(side, int(math.ceil(length / side)) * side) for length in bbox.side_lengths
    ]
    return Box(bbox.lo, tuple(l + length - 1 for l, length in zip(bbox.lo, lengths)))


def build_cube_plan(
    demand: DemandMap,
    *,
    omega: Optional[float] = None,
    service_cap: Optional[float] = None,
) -> ServicePlan:
    """Build the Lemma 2.2.5 constructive plan.

    Parameters
    ----------
    demand:
        The demand map to cover.
    omega:
        The ``omega*`` value to base the construction on.  Defaults to the
        cube-restricted maximum :func:`repro.core.omega.omega_star_cubes`,
        which Corollary 2.2.6 shows suffices.
    service_cap:
        Per-vehicle cap on the energy served at a single position (both at
        home and at the one away position).  Defaults to ``3^l * omega``.

    Returns
    -------
    ServicePlan
        A plan in which every vehicle stays inside its own
        ``ceil(omega)``-cube and spends at most
        ``2 * service_cap + l * ceil(omega)`` energy -- the Lemma 2.2.5
        budget when the defaults are used.

    Raises
    ------
    RuntimeError
        If a cube runs out of vehicles, which the lemma proves cannot happen
        when ``omega >= omega*`` and the default cap is used.
    """
    dim = demand.dim
    plan = ServicePlan(dim=dim)
    if demand.is_empty():
        return plan
    if omega is None:
        omega = omega_star_cubes(demand).omega
    if omega <= 0:
        raise ValueError("omega must be positive for a non-empty demand")
    if service_cap is None:
        service_cap = (3**dim) * omega
    if service_cap <= 0:
        raise ValueError("service_cap must be positive")

    side = max(1, int(math.ceil(omega)))
    window = plan_window(demand, side)
    cube_grid = CubeGrid(window, side)
    plan.metadata.update(
        {"omega": float(omega), "cube_side": float(side), "service_cap": float(service_cap)}
    )

    per_cube: Dict[Tuple[int, ...], List[Tuple[Point, float]]] = {}
    for point, value in demand.items():
        per_cube.setdefault(cube_grid.cube_index(point), []).append((point, value))

    for index, cube_demands in sorted(per_cube.items()):
        cube = cube_grid.cube_box(index)
        _plan_one_cube(plan, cube, dict(cube_demands), service_cap)
    return plan


def _plan_one_cube(
    plan: ServicePlan,
    cube: Box,
    demands: Dict[Point, float],
    service_cap: float,
) -> None:
    """Plan one cube: home service first, then one away visit per vehicle."""
    vehicles = list(cube.points())
    remaining = {p: v for p, v in demands.items() if v > 0}

    # Pass 1: every vehicle with demand at its home vertex serves it, up to
    # the cap.  Record the partial routes so an away visit can be appended.
    partial_routes: Dict[Point, List[Tuple[Point, float]]] = {}
    for vehicle in vehicles:
        if vehicle in remaining:
            served = min(remaining[vehicle], service_cap)
            if served > 0:
                partial_routes[vehicle] = [(vehicle, served)]
                remaining[vehicle] -= served
                if remaining[vehicle] <= 1e-12:
                    del remaining[vehicle]

    # Pass 2: positions with leftover demand receive visits.  Each visiting
    # vehicle serves up to the cap at exactly one away position; vehicles
    # that already served at home may also take one away visit (their
    # budget covers both under the Lemma 2.2.5 accounting).  Idle vehicles
    # (no demand at home) are preferred so the per-vehicle load stays low.
    idle_vehicles = [v for v in vehicles if v not in partial_routes]
    available: List[Tuple[Point, List[Tuple[Point, float]]]] = [
        (v, []) for v in sorted(idle_vehicles)
    ] + [(v, partial_routes[v]) for v in sorted(partial_routes)]
    used: List[Tuple[Point, List[Tuple[Point, float]]]] = []

    # Serve leftover positions in decreasing residual demand so the largest
    # requirements are met first (deterministic order for reproducibility).
    leftovers = sorted(remaining.items(), key=lambda item: (-item[1], item[0]))
    for position, residual in leftovers:
        while residual > 1e-12:
            # Prefer a vehicle homed elsewhere; the counting argument of
            # Lemma 2.2.5 only guarantees availability when the position's
            # own vehicle is kept as a fallback, in which case its "away"
            # visit is a second serving at home (zero travel) -- still
            # within the 2 * service_cap + travel budget.
            choice = next(
                (entry for entry in available if entry[0] != position), None
            )
            if choice is None:
                choice = next(
                    (entry for entry in available if entry[0] == position), None
                )
            if choice is None:
                raise RuntimeError(
                    f"cube {cube} ran out of vehicles; omega underestimates the "
                    "demand density (this should be impossible for omega >= omega*)"
                )
            available.remove(choice)
            used.append(choice)
            vehicle, stops = choice
            served = min(residual, service_cap)
            stops.append((position, served))
            residual -= served

    for vehicle, stops in used + available:
        if stops:
            plan.add(VehicleRoute(start=vehicle, stops=tuple(stops)))
