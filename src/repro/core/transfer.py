"""Chapter 5: inter-vehicle energy transfers.

Vehicles may hand energy to a co-located vehicle, under one of two
accounting methods: a *fixed* cost of ``a1`` units per transfer, or a
*variable* cost of ``a2`` units per unit transferred.  Chapter 5 proves two
things, both reproduced here:

* **Theorem 5.1.1** -- transfers do not change the order of the required
  capacity: ``W_trans-off = Theta(W_off)``.  The proof bounds the energy
  that can be moved into an ``s x s`` square when every battery holds at
  most ``W``: a geometric attrition series caps the contribution of a
  vehicle at distance ``r`` by ``W (1 - 1/W)^r``.  The resulting
  requirement, maximized over squares, is the transfer-aware lower bound
  :func:`transfer_lower_bound`.
* **Section 5.2.1** -- with *large tanks* (capacity ``C`` much larger than
  the initial charge ``W``) transfers do help: on a line of ``N`` vehicles
  a single collector can gather everyone's energy, so
  ``W_trans-off = Theta(avg_x d(x))``.  :func:`line_tank_requirement` gives
  the thesis's closed forms for both accounting methods and
  :func:`simulate_line_collection` executes the schedule step by step to
  validate them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.arrays import max_cube_sums
from repro.core.demand import DemandMap

__all__ = [
    "TransferAccounting",
    "square_import_capacity",
    "transfer_lower_bound",
    "line_tank_requirement",
    "simulate_line_collection",
    "LineCollectionResult",
]


class TransferAccounting(str, Enum):
    """How a transfer is charged."""

    FIXED = "fixed"  # a1 units per transfer, independent of the amount
    VARIABLE = "variable"  # a2 units per unit of energy transferred


def square_import_capacity(capacity: float, side: int) -> float:
    """Upper bound on the energy that can end up inside an ``side x side`` square.

    From the proof of Theorem 5.1.1 (two dimensions): vehicles inside the
    square contribute ``W * side^2``; a vehicle at distance ``r`` can push at
    most ``W (1 - 1/W)^r`` of its energy into the square, and there are
    ``4 side + 4 (r - 1)`` vehicles at distance exactly ``r``.  Summing the
    series gives the closed form

        W * (side^2 + 4 W^2 + 4 side W - 8 W - 4 side + 4).
    """
    if capacity < 0 or side < 1:
        raise ValueError("capacity must be non-negative and side at least 1")
    if capacity == 0:
        return 0.0
    w = float(capacity)
    s = float(side)
    return w * (s * s + 4 * w * w + 4 * s * w - 8 * w - 4 * s + 4)


def transfer_lower_bound(demand: DemandMap, *, max_side: Optional[int] = None) -> float:
    """The Theorem 5.1.1 lower bound on ``W_trans-off`` (two dimensions).

    For every square ``T`` the capacity must satisfy
    ``square_import_capacity(W, side) >= sum_{x in T} d(x)``; the bound is
    the largest such requirement over all squares (any position, any side),
    located with the same sliding-window machinery as the cube omegas.
    """
    if demand.is_empty():
        return 0.0
    if demand.dim != 2:
        raise ValueError("the transfer bound is derived for the plane (l = 2)")
    bbox = demand.bounding_box()
    extent = max(bbox.side_lengths)
    limit = min(extent, max_side) if max_side is not None else extent
    maxima = max_cube_sums(demand.as_dict(), range(1, limit + 1))
    best = 0.0
    for side in range(1, limit + 1):
        total = maxima[side]
        if total <= 0:
            continue
        requirement = _solve_increasing(lambda w: square_import_capacity(w, side), total)
        if requirement > best:
            best = requirement
    return best


def _solve_increasing(func, target: float) -> float:
    """Solve ``func(w) = target`` for continuous increasing ``func`` with ``func(0)=0``."""
    if target <= 0:
        return 0.0
    hi = 1.0
    while func(hi) < target:
        hi *= 2.0
    lo = 0.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if func(mid) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return (lo + hi) / 2.0


# --------------------------------------------------------------------------- #
# Section 5.2.1: high-capacity tanks on a line
# --------------------------------------------------------------------------- #


def line_tank_requirement(
    demands: Sequence[float],
    *,
    accounting: TransferAccounting,
    a1: float = 0.0,
    a2: float = 0.0,
) -> float:
    """The thesis's closed forms for ``W_trans-off`` on a line with huge tanks.

    ``demands[x]`` is the demand at vertex ``x + 1`` of a line of
    ``N = len(demands)`` vertices.  Vehicle 1 walks to vertex ``N``
    collecting energy (``N - 2`` pickups on the way plus an exchange at
    ``N``), then walks back distributing it (``N - 2`` drop-offs), for
    ``2 N - 3`` transfers and ``2 N - 2`` distance.

    * fixed cost ``a1`` per transfer::

        W = (a1 (2N - 3) + (2N - 2) + sum d) / N

    * variable cost ``a2`` per unit transferred::

        W = (2N - 2 + sum d) / (N - 2 a2 N + 3 a2)
    """
    n = len(demands)
    if n < 2:
        raise ValueError("the line schedule needs at least two vertices")
    if any(d < 0 for d in demands):
        raise ValueError("demands must be non-negative")
    total = float(sum(demands))
    if accounting == TransferAccounting.FIXED:
        if a1 < 0:
            raise ValueError("a1 must be non-negative")
        return (a1 * (2 * n - 3) + (2 * n - 2) + total) / n
    if accounting == TransferAccounting.VARIABLE:
        if not 0 <= a2 < 0.5:
            raise ValueError("the closed form needs 0 <= a2 < 1/2 (thesis: a2 << 1)")
        denominator = n - 2 * a2 * n + 3 * a2
        return (2 * n - 2 + total) / denominator
    raise ValueError(f"unknown accounting method {accounting!r}")


@dataclass
class LineCollectionResult:
    """Outcome of executing the Section 5.2.1 schedule."""

    #: Initial per-vehicle charge used by the run.
    initial_charge: float
    #: Whether every demand was served without any battery going negative.
    feasible: bool
    #: Number of inter-vehicle transfers performed.
    transfers: int
    #: Total distance walked by the collector (vehicle 1).
    distance: float
    #: Total energy spent on transfer overhead.
    transfer_overhead: float
    #: Final energy positions (diagnostic).
    final_energies: List[float]


def simulate_line_collection(
    demands: Sequence[float],
    initial_charge: float,
    *,
    accounting: TransferAccounting,
    a1: float = 0.0,
    a2: float = 0.0,
) -> LineCollectionResult:
    """Execute the Section 5.2.1 collection schedule step by step.

    Vehicle 1 starts at vertex 1 with ``initial_charge`` (as does everyone);
    it walks right, and at each intermediate vertex the local vehicle hands
    over its entire remaining charge (one transfer).  At vertex ``N`` the
    collector exchanges energy so vehicle ``N`` retains exactly its local
    demand.  Walking back, the collector drops exactly the local demand at
    every vertex and finally serves vertex 1's demand itself.  Transfer
    costs follow the selected accounting method and are paid by the
    *sending* vehicle.  Tanks are unbounded (``C = infinity``).

    The run is feasible iff no battery ever goes negative and every demand
    is covered; the smallest feasible ``initial_charge`` reproduces the
    closed form of :func:`line_tank_requirement` up to the integrality of
    the schedule.
    """
    n = len(demands)
    if n < 2:
        raise ValueError("the line schedule needs at least two vertices")
    demands = [float(d) for d in demands]
    energies = [float(initial_charge)] * n
    collector = 0  # index of vehicle 1 (vertex 1)
    feasible = True
    transfers = 0
    distance = 0.0
    overhead = 0.0

    def transfer(src: int, dst: int, amount: float) -> float:
        """Move ``amount`` from ``src`` to ``dst``; returns the amount received."""
        nonlocal transfers, overhead, feasible
        if amount <= 0:
            return 0.0
        transfers += 1
        if accounting == TransferAccounting.FIXED:
            cost = a1
        else:
            cost = a2 * amount
        overhead += cost
        energies[src] -= amount + cost
        energies[dst] += amount
        if energies[src] < -1e-9:
            feasible = False
        return amount

    def max_sendable(energy: float) -> float:
        """Largest amount a vehicle with ``energy`` can send without going negative."""
        if energy <= 0:
            return 0.0
        if accounting == TransferAccounting.FIXED:
            return max(0.0, energy - a1)
        return energy / (1.0 + a2)

    # Outbound leg: collect everything from vertices 2 .. N-1.
    for vertex in range(1, n - 1):
        energies[collector] -= 1.0  # walk one edge
        distance += 1.0
        if energies[collector] < -1e-9:
            feasible = False
        transfer(vertex, collector, max_sendable(energies[vertex]))
    # Final edge to vertex N.
    energies[collector] -= 1.0
    distance += 1.0
    if energies[collector] < -1e-9:
        feasible = False
    # Exchange at vertex N: top vehicle N up (or skim it down) to its demand.
    need_n = demands[n - 1]
    if energies[n - 1] > need_n:
        # Vehicle N hands its surplus over, keeping enough to pay the
        # transfer cost itself and still cover its demand.
        surplus = energies[n - 1] - need_n
        if accounting == TransferAccounting.FIXED:
            surplus = max(0.0, surplus - a1)
        else:
            surplus = surplus / (1.0 + a2)
        transfer(n - 1, collector, surplus)
    elif energies[n - 1] < need_n:
        transfer(collector, n - 1, need_n - energies[n - 1])
    # Vehicle N serves its own demand on the spot.
    energies[n - 1] -= need_n
    if energies[n - 1] < -1e-9:
        feasible = False

    # Return leg: drop exactly the local demand at each intermediate vertex.
    for vertex in range(n - 2, 0, -1):
        energies[collector] -= 1.0
        distance += 1.0
        if energies[collector] < -1e-9:
            feasible = False
        transfer(collector, vertex, demands[vertex])
        energies[vertex] -= demands[vertex]
        if energies[vertex] < -1e-9:
            feasible = False
    # Final edge back to vertex 1 and serve its demand directly.
    energies[collector] -= 1.0
    distance += 1.0
    energies[collector] -= demands[0]
    if energies[collector] < -1e-9:
        feasible = False

    return LineCollectionResult(
        initial_charge=float(initial_charge),
        feasible=feasible,
        transfers=transfers,
        distance=distance,
        transfer_overhead=overhead,
        final_energies=list(energies),
    )
