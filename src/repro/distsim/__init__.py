"""Distributed-system substrate: event-driven message-passing simulation.

The online strategy of Chapter 3 is a decentralized protocol: vehicles
exchange query/reply/move messages over an asynchronous, reliable, FIFO
network and coordinate replacements with a Dijkstra--Scholten diffusing
computation.  This subpackage provides the substrate that protocol runs on:

* :mod:`repro.distsim.engine` -- a deterministic discrete-event simulator.
* :mod:`repro.distsim.network` -- message delivery between registered
  processes: registration, failure injection hooks, and routing through a
  transport.
* :mod:`repro.distsim.transport` -- the pluggable delivery models (reliable,
  per-edge latency jitter, seeded loss, Byzantine corruption) plus the
  frozen :class:`~repro.distsim.transport.TransportSpec` the run configs
  and the CLI use to select one.
* :mod:`repro.distsim.process` -- the process abstraction (local state,
  message handlers, unbounded input buffer).
* :mod:`repro.distsim.diffusing` -- a standalone, reusable implementation of
  the Dijkstra--Scholten termination-detection scheme reviewed in
  Section 3.1, used both directly (tests, examples) and as the template for
  the vehicles' Phase I computation.
* :mod:`repro.distsim.events` -- the event core: a monotonic simulation
  clock, the deterministic event queue, and the counters the scenario
  benchmarks report events/sec from.
* :mod:`repro.distsim.failures` -- crash and omission failure injection used
  by the Chapter 3 "scenario 2/3" experiments, plus timed partition windows
  and vehicle churn schedules for the adversarial scenario families.
"""

from repro.distsim.engine import Event, Simulator
from repro.distsim.events import EventQueue, EventStats, ScheduledEvent, SimClock
from repro.distsim.network import Network
from repro.distsim.process import Process
from repro.distsim.diffusing import (
    DiffusingComputation,
    DiffusingNode,
    HierarchicalSearch,
)
from repro.distsim.failures import ChurnSpec, FailurePlan, PartitionSpec
from repro.distsim.transport import (
    CorruptingTransport,
    DistanceLatencyTransport,
    LatencyTransport,
    LossyTransport,
    RandomJitterTransport,
    ReliableTransport,
    RetransmitTransport,
    Transport,
    TransportSpec,
    available_transports,
    build_transport,
)

__all__ = [
    "Event",
    "Simulator",
    "EventQueue",
    "EventStats",
    "ScheduledEvent",
    "SimClock",
    "Network",
    "Process",
    "DiffusingNode",
    "DiffusingComputation",
    "HierarchicalSearch",
    "ChurnSpec",
    "FailurePlan",
    "PartitionSpec",
    "Transport",
    "TransportSpec",
    "ReliableTransport",
    "LatencyTransport",
    "LossyTransport",
    "CorruptingTransport",
    "DistanceLatencyTransport",
    "RetransmitTransport",
    "RandomJitterTransport",
    "available_transports",
    "build_transport",
]
