"""A reusable Dijkstra--Scholten diffusing computation (Section 3.1).

Dijkstra and Scholten's scheme lets a single *initiator* flood a query
through an arbitrary connected network, have every awakened node perform
some local test, and detect -- at the initiator -- when the whole
computation has terminated.  The thesis uses the scheme to locate an idle
vehicle inside a cube and to record a path of ``child`` pointers from the
initiator to the located vehicle (Phase I of the online strategy); Phase II
then relays a move order along that path.

This module provides the scheme in a protocol-agnostic form:

* every :class:`DiffusingNode` knows its neighbors and a local *target
  predicate*;
* the initiator floods ``query`` messages; each first-time receiver records
  its parent, answers ``True`` immediately if it satisfies the predicate,
  and otherwise forwards the query to its own neighbors;
* replies are aggregated with deficit counters exactly as in the
  Dijkstra--Scholten algorithm; the first positive reply a node sees fixes
  its ``child`` pointer;
* when the initiator's deficit reaches zero the computation has terminated
  and the child-pointer chain (if any) is the discovered path.

The vehicle protocol of Chapter 3 embeds the same logic with extra
vehicle-state bookkeeping; this standalone version is exercised directly in
tests and examples, and serves as the reference implementation the vehicle
version is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.distsim.engine import Simulator
from repro.distsim.network import Network
from repro.distsim.process import Process

__all__ = [
    "QueryMessage",
    "ReplyMessage",
    "DiffusingNode",
    "DiffusingComputation",
    "HierarchicalSearch",
    "HierarchicalSearchResult",
]


@dataclass(frozen=True)
class QueryMessage:
    """The ``query`` message of Phase I: ``(init, sender)`` plus a round tag."""

    init: Hashable
    sender: Hashable
    round_id: int


@dataclass(frozen=True)
class ReplyMessage:
    """The ``reply`` message of Phase I: ``(flag, sender)`` plus the round tag."""

    flag: bool
    sender: Hashable
    init: Hashable
    round_id: int


class DiffusingNode(Process):
    """One participant of a diffusing computation.

    Parameters
    ----------
    identity:
        Unique node identity.
    neighbors:
        Identities of the node's neighbors (the underlying graph must be
        connected for the search to be exhaustive).
    is_target:
        Zero-argument callable evaluated when a query first reaches the
        node; returning ``True`` makes the node answer positively without
        forwarding the query further (an "idle vehicle" in the thesis).
    """

    def __init__(
        self,
        identity: Hashable,
        neighbors: Sequence[Hashable],
        is_target: Callable[[], bool],
    ) -> None:
        super().__init__(identity)
        self.neighbors: List[Hashable] = list(neighbors)
        self.is_target = is_target
        # Dijkstra--Scholten bookkeeping, reset per computation round.
        self.current_init: Optional[Hashable] = None
        self.current_round: Optional[int] = None
        self.parent: Optional[Hashable] = None
        self.child: Optional[Hashable] = None
        self.deficit = 0
        self.searching = False
        # Filled on the initiator when its computation terminates.
        self.finished = False
        self.found = False
        self.queries_seen = 0

    # ------------------------------------------------------------------ #
    # initiation
    # ------------------------------------------------------------------ #

    def initiate(self, round_id: int) -> None:
        """Start a new diffusing computation rooted at this node."""
        self.current_init = self.identity
        self.current_round = round_id
        self.parent = None
        self.child = None
        self.finished = False
        self.found = False
        self.searching = True
        self.deficit = len(self.neighbors)
        if not self.neighbors:
            # Degenerate single-node network: terminate immediately.
            self._terminate()
            return
        for neighbor in self.neighbors:
            self.send(neighbor, QueryMessage(self.identity, self.identity, round_id))

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #

    def on_message(self, sender: Hashable, message: Any) -> None:
        if isinstance(message, QueryMessage):
            self._on_query(sender, message)
        elif isinstance(message, ReplyMessage):
            self._on_reply(sender, message)
        else:
            raise TypeError(f"unexpected message {message!r}")

    def _on_query(self, sender: Hashable, message: QueryMessage) -> None:
        self.queries_seen += 1
        new_computation = (
            not self.searching
            and (message.init, message.round_id)
            != (self.current_init, self.current_round)
        )
        if not new_computation:
            # Already engaged (or already finished this round): immediate no.
            self.send(
                sender,
                ReplyMessage(False, self.identity, message.init, message.round_id),
            )
            return
        self.current_init = message.init
        self.current_round = message.round_id
        self.parent = sender
        self.child = None
        if self.is_target():
            self.send(
                sender,
                ReplyMessage(True, self.identity, message.init, message.round_id),
            )
            return
        self.searching = True
        self.deficit = len(self.neighbors)
        if self.deficit == 0:
            self.searching = False
            self.send(
                sender,
                ReplyMessage(False, self.identity, message.init, message.round_id),
            )
            return
        for neighbor in self.neighbors:
            self.send(neighbor, QueryMessage(message.init, self.identity, message.round_id))

    def _on_reply(self, sender: Hashable, message: ReplyMessage) -> None:
        if (message.init, message.round_id) != (self.current_init, self.current_round):
            # A stale reply from a previous round; ignore.
            return
        if not self.searching:
            return
        self.deficit -= 1
        first_positive = message.flag and self.child is None
        if first_positive:
            self.child = message.sender
            if self.parent is not None:
                self.send(
                    self.parent,
                    ReplyMessage(True, self.identity, message.init, message.round_id),
                )
        if self.deficit == 0:
            self.searching = False
            if self.parent is None:
                self._terminate()
            elif self.child is None:
                self.send(
                    self.parent,
                    ReplyMessage(False, self.identity, message.init, message.round_id),
                )

    def _terminate(self) -> None:
        self.finished = True
        self.found = self.child is not None or self.is_target()


class DiffusingComputation:
    """Convenience harness: build a network of diffusing nodes and run searches."""

    def __init__(
        self,
        topology: Mapping[Hashable, Iterable[Hashable]],
        targets: Callable[[Hashable], bool],
        *,
        delay: float = 1.0,
        rng=None,
    ) -> None:
        self.simulator = Simulator()
        self.network = Network(self.simulator, delay=delay, rng=rng)
        self.nodes: Dict[Hashable, DiffusingNode] = {}
        self._round = 0
        for identity, neighbors in topology.items():
            node = DiffusingNode(
                identity,
                list(neighbors),
                is_target=(lambda ident=identity: targets(ident)),
            )
            self.nodes[identity] = node
            self.network.register(node)
        # Sanity: the topology must be symmetric for the thesis's model
        # ("communication links are bidirectional").
        for identity, node in self.nodes.items():
            for neighbor in node.neighbors:
                if identity not in self.nodes[neighbor].neighbors:
                    raise ValueError(
                        f"asymmetric link {identity!r} -> {neighbor!r}; "
                        "links must be bidirectional"
                    )

    def search(self, root: Hashable) -> "SearchResult":
        """Run one diffusing computation rooted at ``root`` until termination."""
        self._round += 1
        sent_before = self.network.messages_sent
        node = self.nodes[root]
        node.initiate(self._round)
        self.network.run_until_quiescent()
        if not node.finished:
            raise RuntimeError("diffusing computation did not terminate")
        path = self.trace_path(root)
        return SearchResult(
            found=node.found,
            path=path,
            target=path[-1] if node.found and path else None,
            messages=self.network.messages_sent - sent_before,
        )

    def trace_path(self, root: Hashable) -> List[Hashable]:
        """Follow child pointers from the root to the discovered target."""
        path = [root]
        current = self.nodes[root]
        visited = {root}
        while current.child is not None:
            nxt = current.child
            if nxt in visited:
                raise RuntimeError("child pointers form a cycle")
            path.append(nxt)
            visited.add(nxt)
            current = self.nodes[nxt]
        return path


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one diffusing search."""

    found: bool
    path: List[Hashable]
    target: Optional[Hashable]
    messages: int


@dataclass(frozen=True)
class HierarchicalSearchResult:
    """Outcome of a group-local search plus its escalation ladder."""

    found: bool
    target: Optional[Hashable]
    #: 0 = found inside the root's own group; k = found in the k-th
    #: escalation ring; ``None`` = exhausted every ring without a hit.
    level: Optional[int]
    messages: int


class HierarchicalSearch:
    """The protocol-agnostic reference for cross-group escalation.

    The vehicle protocol's cross-cube replacement search composes two
    mechanisms: a Dijkstra--Scholten flood *inside* a group, and a
    star-shaped widening *across* groups along a deterministic escalation
    order.  This class provides exactly that composition over arbitrary
    node groups, serving the same role for escalation that
    :class:`DiffusingComputation` serves for Phase I: a small, directly
    testable model the vehicle implementation is checked against.

    Parameters
    ----------
    groups:
        Mapping of group id -> ``{node: neighbors}`` intra-group topology
        (each group must satisfy :class:`DiffusingComputation`'s
        symmetric-link requirement).
    targets:
        Predicate evaluated per node when a query reaches it.
    escalation_order:
        Mapping of group id -> the sequence of *rings*, each ring a list
        of group ids queried together at that escalation level (the
        analogue of :meth:`repro.grid.cubes.CubeHierarchy.escalation_order`).
    """

    def __init__(
        self,
        groups: Mapping[Hashable, Mapping[Hashable, Iterable[Hashable]]],
        targets: Callable[[Hashable], bool],
        escalation_order: Mapping[Hashable, Sequence[Sequence[Hashable]]],
    ) -> None:
        self.targets = targets
        self.computations: Dict[Hashable, DiffusingComputation] = {
            group: DiffusingComputation(topology, targets)
            for group, topology in groups.items()
        }
        self.escalation_order = {
            group: [list(ring) for ring in rings]
            for group, rings in escalation_order.items()
        }
        self._group_of: Dict[Hashable, Hashable] = {}
        for group, computation in self.computations.items():
            for identity in computation.nodes:
                if identity in self._group_of:
                    raise ValueError(f"node {identity!r} appears in two groups")
                self._group_of[identity] = group

    def _ring_hit(self, ring: Sequence[Hashable]) -> Optional[Hashable]:
        """First satisfied node of a ring, in deterministic enumeration
        order (groups as given, nodes in registration order) -- the
        analogue of the initiator choosing among its boundary replies."""
        for group in ring:
            for identity in self.computations[group].nodes:
                if self.targets(identity):
                    return identity
        return None

    def search(self, root: Hashable) -> HierarchicalSearchResult:
        """Search the root's group, then escalate ring by ring."""
        group = self._group_of[root]
        local = self.computations[group].search(root)
        if local.found:
            return HierarchicalSearchResult(
                found=True, target=local.target, level=0, messages=local.messages
            )
        messages = local.messages
        for level, ring in enumerate(self.escalation_order.get(group, []), start=1):
            # One boundary query + one reply per ring node: the star-shaped
            # escalated round of the vehicle protocol.
            messages += 2 * sum(len(self.computations[g].nodes) for g in ring)
            hit = self._ring_hit(ring)
            if hit is not None:
                return HierarchicalSearchResult(
                    found=True, target=hit, level=level, messages=messages
                )
        return HierarchicalSearchResult(
            found=False, target=None, level=None, messages=messages
        )
