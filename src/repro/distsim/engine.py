"""The deterministic discrete-event simulation engine.

The engine composes the primitives of :mod:`repro.distsim.events` -- a
monotonic :class:`~repro.distsim.events.SimClock` and a heap-based
:class:`~repro.distsim.events.EventQueue` with ``(time, sequence)``
ordering -- into the :class:`Simulator` every protocol run is driven by.
Ties are broken by insertion order, so a run is fully determined by the
sequence of ``schedule`` calls: no wall-clock or hash-order nondeterminism
leaks into protocol executions, which keeps the online experiments
reproducible and the property-based tests meaningful.

Two execution styles are supported:

* **event mode** (``run`` / ``run_until_quiescent``): events execute
  strictly in timestamp order, the clock jumping from event to event.
  This is the primary mode; timed arrivals, heartbeat ticks, partition
  windows and churn all ride on the same queue.
* **round compatibility mode** (``run_round`` / ``run_rounds``): time is
  consumed in fixed-length windows, each window draining every event that
  falls inside it before the clock advances to the next boundary.  This
  reproduces the historical lockstep "settle everything, then tick"
  behavior; on failure-free runs the two modes execute the same events in
  the same order (asserted by the conformance tests).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from repro.distsim.events import EventQueue, EventStats, ScheduledEvent, SimClock

__all__ = ["Event", "Simulator"]

#: Backwards-compatible alias: the scheduled-event type used to live here.
Event = ScheduledEvent


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run()
    """

    def __init__(self) -> None:
        self.clock = SimClock()
        self.queue = EventQueue()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self.queue.stats.executed

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self.queue)

    @property
    def stats(self) -> EventStats:
        """Scheduled/executed/cancelled counters (for the benchmarks)."""
        return self.queue.stats

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self, delay: float, action: Callable[[], None], *, kind: str = "event"
    ) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.queue.push(self.now + delay, action, kind=kind)

    def schedule_at(
        self, time: float, action: Callable[[], None], *, kind: str = "event"
    ) -> ScheduledEvent:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (time={time} < now={self.now})")
        return self.queue.push(time, action, kind=kind)

    def schedule_batch(
        self,
        entries: Iterable[Tuple[float, Callable[[], None]]],
        *,
        kind: str = "event",
    ) -> list:
        """Schedule many ``(absolute time, action)`` pairs in one call.

        Byte-identical to calling :meth:`schedule_at` per entry; the batch
        form lets harnesses hand a whole arrival sequence or a round of
        heartbeat ticks to the calendar queue at once (see
        :meth:`~repro.distsim.events.EventQueue.push_many`).
        """
        now = self.now

        def _validated():
            for time, action in entries:
                if time < now:
                    raise ValueError(
                        f"cannot schedule into the past (time={time} < now={now})"
                    )
                yield time, action

        return self.queue.push_many(_validated(), kind=kind)

    def schedule_batch_at(
        self,
        time: float,
        actions: Iterable[Callable[[], None]],
        *,
        kind: str = "event",
    ) -> list:
        """Schedule many actions at one absolute time in a single call.

        Byte-identical to calling :meth:`schedule_at` per action (same
        sequence numbers, same execution order); the shared timestamp is
        validated once and the whole batch lands in one calendar-queue
        bucket (see :meth:`~repro.distsim.events.EventQueue.push_many_at`).
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past (time={time} < now={self.now})"
            )
        return self.queue.push_many_at(time, actions, kind=kind)

    # ------------------------------------------------------------------ #
    # event-mode execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        event = self.queue.pop()  # pop counts the execution in queue.stats
        if event is None:
            return False
        self.clock.advance(event.time)
        event.action()
        return True

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or a time/event limit is hit).

        Returns the number of events executed by this call.  With ``until``
        set, events strictly later than ``until`` stay queued and the clock
        is left at ``until`` when the queue drained early.

        Execution is *batched*: all events sharing a timestamp are drained
        from the calendar queue in one extraction, the clock advances once,
        and the actions run in sequence order -- the same order (and hence
        byte-identical histories) as popping them one at a time, minus the
        per-event peek/advance overhead.
        """
        executed = 0
        queue = self.queue
        stats = queue.stats
        while True:
            limit = None if max_events is None else max_events - executed
            batch = queue.pop_batch(until=until, limit=limit)
            if not batch:
                break
            self.clock.advance(batch[0].time)
            for event in batch:
                # An earlier event of this very batch may have cancelled a
                # later one; honor it exactly as lazy heap deletion did.
                if event.cancelled:
                    stats.cancelled_skipped += 1
                    continue
                stats.executed += 1
                executed += 1
                event.action()
        if until is not None and self.now < until and not self.queue:
            self.clock.advance(until)
        return executed

    def run_window(self, until: float, *, max_events: Optional[int] = None) -> int:
        """Run every event with ``time <= until`` without padding the clock.

        Identical to ``run(until=until)`` except that when the queue drains
        before the bound, the clock stays at the *last executed event*
        instead of jumping to ``until``.  This is the primitive the sharded
        lockstep coordinator advances windows with: a barrier must not
        disturb ``sim_time`` (the final clock reading is part of the
        byte-identity contract), so empty tail time inside a window is
        never consumed.
        """
        executed = 0
        queue = self.queue
        stats = queue.stats
        while True:
            limit = None if max_events is None else max_events - executed
            batch = queue.pop_batch(until=until, limit=limit)
            if not batch:
                break
            self.clock.advance(batch[0].time)
            for event in batch:
                if event.cancelled:
                    stats.cancelled_skipped += 1
                    continue
                stats.executed += 1
                executed += 1
                event.action()
        return executed

    def run_until_quiescent(self, *, max_events: int = 10_000_000) -> int:
        """Run until no events remain; guards against runaway protocols."""
        executed = self.run(max_events=max_events)
        if self.pending:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"({self.pending} still pending)"
            )
        return executed

    # ------------------------------------------------------------------ #
    # round compatibility mode
    # ------------------------------------------------------------------ #

    def run_round(self, *, round_length: float = 1.0, max_events: int = 10_000_000) -> int:
        """Drain one fixed-length round: every event up to ``now + round_length``.

        Events scheduled *during* the round that still fall inside the
        window are executed too (the round "settles"); afterwards the clock
        sits exactly on the round boundary.  Returns the number of events
        executed.  When ``max_events`` truncates the round, the clock stays
        at the last executed event (events inside the window are still
        pending, so jumping to the boundary would strand them in the past);
        the round is then incomplete and can be resumed by calling again.
        """
        if round_length <= 0:
            raise ValueError(f"round_length must be positive, got {round_length}")
        boundary = self.now + round_length
        executed = self.run(until=boundary, max_events=max_events)
        next_time = self.queue.next_time()
        if self.now < boundary and (next_time is None or next_time > boundary):
            self.clock.advance(boundary)
        return executed

    def run_rounds(
        self, rounds: int, *, round_length: float = 1.0, max_events: int = 10_000_000
    ) -> int:
        """Execute ``rounds`` consecutive fixed-length rounds (compatibility mode)."""
        if rounds < 0:
            raise ValueError(f"rounds must be non-negative, got {rounds}")
        executed = 0
        for _ in range(rounds):
            executed += self.run_round(round_length=round_length, max_events=max_events)
        return executed
