"""A small deterministic discrete-event simulation engine.

The engine keeps a priority queue of timestamped events.  Ties are broken
by insertion order, so a run is fully determined by the sequence of
``schedule`` calls -- no wall-clock or hash-order nondeterminism leaks into
protocol executions, which keeps the online experiments reproducible and
the property-based tests meaningful.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, sequence number)``."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so that it is skipped when its time comes."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._counter), action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past (time={time} < now={self._now})")
        event = Event(time, next(self._counter), action)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            return True
        return False

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or a time/event limit is hit).

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return executed

    def run_until_quiescent(self, *, max_events: int = 10_000_000) -> int:
        """Run until no events remain; guards against runaway protocols."""
        executed = self.run(max_events=max_events)
        if self.pending:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"({self.pending} still pending)"
            )
        return executed
