"""The event core of the distributed simulation: clock, queue, stats.

Historically the simulator owned a private heap and a bare ``_now`` float;
the event-driven experiments (timed job arrivals, heartbeat ticks,
partition windows, churn) need those pieces as first-class objects:

* :class:`SimClock` -- a monotonic simulation clock.  Advancing it
  backwards is a hard error, which turns subtle scheduling bugs into
  immediate failures instead of silently reordered histories.
* :class:`ScheduledEvent` -- a timestamped callback with a deterministic
  ``(time, sequence)`` order and an optional ``kind`` tag for tracing.
* :class:`EventQueue` -- the heap itself, with lazy deletion of cancelled
  events and counters for the benchmark harness.
* :class:`EventStats` -- scheduled/executed/cancelled counters; the
  scenario benchmarks divide ``executed`` by wall time to report
  events/sec.

:class:`~repro.distsim.engine.Simulator` composes these; protocols and
harnesses may also use the queue directly for non-message events (timers,
arrivals, failure windows).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

__all__ = ["SimClock", "ScheduledEvent", "EventQueue", "EventStats"]

Action = Callable[[], None]


class SimClock:
    """A monotonic simulation clock.

    The clock only moves forward; :meth:`advance` raises on any attempt to
    rewind it.  Event-driven runs rely on this invariant -- the conformance
    tests assert it directly.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance(self, to: float) -> None:
        """Move the clock forward to ``to`` (no-op when already there)."""
        if to < self._now:
            raise ValueError(
                f"simulation clock cannot run backwards ({to} < {self._now})"
            )
        self._now = float(to)


@dataclass(order=True)
class ScheduledEvent:
    """A scheduled callback, ordered by ``(time, sequence number)``.

    The sequence number is assigned by the queue at push time, so ties are
    broken by scheduling order and a run is fully determined by the
    sequence of ``push`` calls.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    #: Free-form tag ("message", "arrival", "heartbeat", ...) for traces.
    kind: str = field(default="event", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so that it is skipped when its time comes."""
        self.cancelled = True


@dataclass
class EventStats:
    """Counters accumulated over the lifetime of a queue/simulator."""

    scheduled: int = 0
    executed: int = 0
    cancelled_skipped: int = 0


class EventQueue:
    """A deterministic priority queue of :class:`ScheduledEvent` objects.

    Cancelled events stay in the heap and are discarded lazily when they
    reach the front (heap deletion is O(n); lazy skipping keeps pops at
    O(log n) amortized).
    """

    __slots__ = ("_heap", "_counter", "stats")

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._counter = itertools.count()
        self.stats = EventStats()

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def __iter__(self) -> Iterator[ScheduledEvent]:
        """Live queued events in arbitrary (heap) order."""
        return (event for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Action, *, kind: str = "event") -> ScheduledEvent:
        """Queue ``action`` at absolute time ``time``."""
        event = ScheduledEvent(float(time), next(self._counter), action, kind=kind)
        heapq.heappush(self._heap, event)
        self.stats.scheduled += 1
        return event

    def peek(self) -> Optional[ScheduledEvent]:
        """The next live event without removing it (skips cancelled ones)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self.stats.cancelled_skipped += 1
        return self._heap[0] if self._heap else None

    def next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        event = self.peek()
        return event.time if event is not None else None

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the next live event (``None`` when empty).

        Popping counts as execution in :attr:`stats` -- the queue hands the
        event to exactly one consumer, so the counter stays correct for
        direct users as well as for the :class:`~repro.distsim.engine.Simulator`.
        """
        event = self.peek()
        if event is None:
            return None
        heapq.heappop(self._heap)
        self.stats.executed += 1
        return event
