"""The event core of the distributed simulation: clock, queue, stats.

Historically the simulator owned a private heap and a bare ``_now`` float;
the event-driven experiments (timed job arrivals, heartbeat ticks,
partition windows, churn) need those pieces as first-class objects:

* :class:`SimClock` -- a monotonic simulation clock.  Advancing it
  backwards is a hard error, which turns subtle scheduling bugs into
  immediate failures instead of silently reordered histories.
* :class:`ScheduledEvent` -- a timestamped callback with a deterministic
  ``(time, sequence)`` order and an optional ``kind`` tag for tracing.
* :class:`EventQueue` -- a bucketed *calendar queue* with lazy deletion of
  cancelled events and counters for the benchmark harness.
* :class:`EventStats` -- scheduled/executed/cancelled counters; the
  scenario benchmarks divide ``executed`` by wall time to report
  events/sec.

The queue used to be a binary heap of events; profiling the scale-up
scenarios showed the per-event ``heappush``/``heappop`` comparisons
dominating the hot path, because protocol traffic is intensely *clustered
in time*: a zero-delay message storm lands hundreds of events on one
timestamp, and the heap pays ``O(log n)`` comparisons for every one of
them.  The calendar-queue layout exploits exactly that clustering: events
live in per-timestamp FIFO buckets (a dict keyed by the exact float time),
and only the *distinct* timestamps go through a small heap.  Pushing into
an existing bucket is O(1); within a bucket, FIFO order *is* sequence
order, so the pop order -- ``(time, sequence)`` -- is bit-for-bit the
order the old heap produced and every run replays byte-identically.

:meth:`EventQueue.pop_batch` additionally drains one whole timestamp
bucket in a single call, which is what lets the
:class:`~repro.distsim.engine.Simulator` dispatch a same-time batch with
one clock advance instead of one peek/advance cycle per event.

:class:`~repro.distsim.engine.Simulator` composes these; protocols and
harnesses may also use the queue directly for non-message events (timers,
arrivals, failure windows).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["SimClock", "ScheduledEvent", "EventQueue", "EventStats"]

Action = Callable[[], None]


class SimClock:
    """A monotonic simulation clock.

    The clock only moves forward; :meth:`advance` raises on any attempt to
    rewind it.  Event-driven runs rely on this invariant -- the conformance
    tests assert it directly.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance(self, to: float) -> None:
        """Move the clock forward to ``to`` (no-op when already there)."""
        if to < self._now:
            raise ValueError(
                f"simulation clock cannot run backwards ({to} < {self._now})"
            )
        self._now = float(to)


@dataclass(order=True)
class ScheduledEvent:
    """A scheduled callback, ordered by ``(time, sequence number)``.

    The sequence number is assigned by the queue at push time, so ties are
    broken by scheduling order and a run is fully determined by the
    sequence of ``push`` calls.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    #: Free-form tag ("message", "arrival", "heartbeat", ...) for traces.
    kind: str = field(default="event", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so that it is skipped when its time comes."""
        self.cancelled = True


@dataclass
class EventStats:
    """Counters accumulated over the lifetime of a queue/simulator."""

    scheduled: int = 0
    executed: int = 0
    cancelled_skipped: int = 0


class EventQueue:
    """A deterministic calendar queue of :class:`ScheduledEvent` objects.

    Events are stored in per-timestamp FIFO buckets; a heap orders only the
    distinct timestamps.  Each bucket's append order equals its events'
    sequence order, so pops come out in exactly the ``(time, sequence)``
    order the historical binary heap produced.  Cancelled events stay in
    their bucket and are discarded lazily when they reach the front.
    """

    __slots__ = ("_buckets", "_times", "_counter", "stats")

    def __init__(self) -> None:
        #: Exact timestamp -> FIFO list of events pushed at that time.  A
        #: cursor-free plain list with ``pop``-from-front replaced by batch
        #: extraction keeps the common paths allocation-light.
        self._buckets: Dict[float, List[ScheduledEvent]] = {}
        #: Heap of the distinct timestamps that currently own a bucket.
        self._times: List[float] = []
        self._counter = itertools.count()
        self.stats = EventStats()

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(
            1
            for bucket in self._buckets.values()
            for event in bucket
            if not event.cancelled
        )

    def __bool__(self) -> bool:
        return any(
            not event.cancelled
            for bucket in self._buckets.values()
            for event in bucket
        )

    def __iter__(self) -> Iterator[ScheduledEvent]:
        """Live queued events in arbitrary (bucket) order."""
        return (
            event
            for bucket in self._buckets.values()
            for event in bucket
            if not event.cancelled
        )

    def push(self, time: float, action: Action, *, kind: str = "event") -> ScheduledEvent:
        """Queue ``action`` at absolute time ``time``."""
        time = float(time)
        event = ScheduledEvent(time, next(self._counter), action, kind=kind)
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self.stats.scheduled += 1
        return event

    def push_many(
        self, entries: Iterable[Tuple[float, Action]], *, kind: str = "event"
    ) -> List[ScheduledEvent]:
        """Batch-queue ``(time, action)`` pairs in order; one sequence range.

        Byte-identical to pushing the entries one by one (same sequence
        numbers, same pop order); the loop is inlined so a whole arrival
        sequence or a round of heartbeat ticks pays one method call and
        one stats update instead of one per event.
        """
        buckets = self._buckets
        times = self._times
        counter = self._counter
        events = []
        for time, action in entries:
            time = float(time)
            event = ScheduledEvent(time, next(counter), action, kind=kind)
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = [event]
                heapq.heappush(times, time)
            else:
                bucket.append(event)
            events.append(event)
        self.stats.scheduled += len(events)
        return events

    def push_many_at(
        self, time: float, actions: Iterable[Action], *, kind: str = "event"
    ) -> List[ScheduledEvent]:
        """Batch-queue many actions at one shared timestamp.

        The single-bucket fast path of the batched dispatch pipeline: one
        bucket lookup and one extend for the whole batch (a heartbeat
        round's broadcast, a Phase I flood over a reliable fixed-delay
        channel) instead of one per event.  Sequence numbers are assigned
        in iteration order, so the pop order is byte-identical to pushing
        the actions one by one.
        """
        time = float(time)
        counter = self._counter
        events = [
            ScheduledEvent(time, next(counter), action, kind=kind)
            for action in actions
        ]
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = list(events)
            heapq.heappush(self._times, time)
        else:
            bucket.extend(events)
        self.stats.scheduled += len(events)
        return events

    # ------------------------------------------------------------------ #
    # front-of-queue access
    # ------------------------------------------------------------------ #

    def _front_bucket(self) -> Optional[List[ScheduledEvent]]:
        """The earliest bucket, with leading cancelled events pruned.

        Empty (or fully cancelled) buckets are retired as a side effect,
        so the returned bucket always starts with a live event.
        """
        while self._times:
            time = self._times[0]
            bucket = self._buckets[time]
            while bucket and bucket[0].cancelled:
                del bucket[0]
                self.stats.cancelled_skipped += 1
            if bucket:
                return bucket
            del self._buckets[time]
            heapq.heappop(self._times)
        return None

    def peek(self) -> Optional[ScheduledEvent]:
        """The next live event without removing it (skips cancelled ones)."""
        bucket = self._front_bucket()
        return bucket[0] if bucket else None

    def next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        event = self.peek()
        return event.time if event is not None else None

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the next live event (``None`` when empty).

        Popping counts as execution in :attr:`stats` -- the queue hands the
        event to exactly one consumer, so the counter stays correct for
        direct users as well as for the :class:`~repro.distsim.engine.Simulator`.
        """
        bucket = self._front_bucket()
        if bucket is None:
            return None
        event = bucket[0]
        if len(bucket) == 1:
            del self._buckets[event.time]
            heapq.heappop(self._times)
        else:
            del bucket[0]
        self.stats.executed += 1
        return event

    def pop_batch(
        self, *, until: Optional[float] = None, limit: Optional[int] = None
    ) -> List[ScheduledEvent]:
        """Drain every event at the next timestamp into one batch.

        Returns the (sequence-ordered) events sharing the earliest queued
        timestamp -- the *batched delivery* unit: the simulator advances
        the clock once and dispatches the whole batch.  Events the batch's
        own actions schedule back at the same timestamp form a new bucket
        and come out in a later batch, still in global ``(time, sequence)``
        order.

        ``until`` leaves batches strictly later than that time queued (an
        empty list is returned); ``limit`` truncates the batch, leaving the
        remainder of the bucket in place.  Executions are *not* counted
        here: the consumer skips events cancelled mid-batch, so it owns
        the executed/cancelled accounting (see ``Simulator.run``).
        """
        bucket = self._front_bucket()
        if bucket is None:
            return []
        time = bucket[0].time
        if until is not None and time > until:
            return []
        if limit is None or limit >= len(bucket):
            batch = bucket
            del self._buckets[time]
            heapq.heappop(self._times)
        else:
            if limit <= 0:
                return []
            batch = bucket[:limit]
            del bucket[:limit]
        return batch
