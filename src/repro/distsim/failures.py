"""Failure injection for the distributed substrate.

Section 3.2.5 distinguishes four scenarios: (1) no failures, (2) done
vehicles that fail to start their diffusing computation, (3) a constant
number of active vehicles breaking down ("dead"), and (4) many vehicles
breaking down (handled analytically in Chapter 4).  The simulator covers
scenarios 1--3; this module carries the knobs:

* *crashed* processes receive nothing and send nothing (their outgoing
  messages are silently discarded by the network);
* targeted *message drops* can suppress, e.g., the initiation of a specific
  diffusing computation;
* arbitrary predicates can be registered for fuzz-style omission testing;
* timed **partition windows** (:class:`PartitionSpec`) cut the network
  along an axis-aligned hyperplane for an interval of the failure clock --
  messages whose endpoints lie on opposite sides are dropped while the
  window is active;
* timed **churn** (:class:`ChurnSpec`) makes vehicles leave (break down)
  and later rejoin (be repaired); the schedule is declarative and applied
  by the run harness, in round mode at job boundaries and in event mode as
  scheduled simulator events.

The *failure clock* is the job clock of the workload: job ``k`` of a
:class:`~repro.core.demand.JobSequence` arrives at time ``k + 1``, so
partition/churn times are expressed in arrival units regardless of the
message-delay timescale.  The harness advances it via :meth:`FailurePlan.set_time`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, List, Sequence, Set, Tuple

__all__ = ["ChurnSpec", "FailurePlan", "PartitionSpec", "apply_churn"]

DropPredicate = Callable[[Hashable, Hashable, Any], bool]

#: Churn actions: ``"leave"`` breaks the vehicle down, ``"join"`` repairs it.
CHURN_ACTIONS = ("leave", "join")


@dataclass(frozen=True)
class PartitionSpec:
    """A timed network partition along an axis-aligned cut.

    While ``start <= t < end`` on the failure clock, every message whose
    sender and destination identities (lattice points) lie on opposite
    sides of the hyperplane ``coordinate[axis] <= boundary`` is dropped.
    Identities that are not coordinate tuples are never partitioned.
    """

    start: float
    end: float
    axis: int = 0
    boundary: float = 0.0

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError(
                f"partition window must have end > start, got [{self.start}, {self.end})"
            )
        if self.axis < 0:
            raise ValueError(f"partition axis must be non-negative, got {self.axis}")

    def active_at(self, time: float) -> bool:
        """Whether the window covers failure-clock instant ``time``."""
        return self.start <= time < self.end

    def separates(self, a: Hashable, b: Hashable) -> bool:
        """Whether identities ``a`` and ``b`` fall on opposite sides of the cut."""
        try:
            side_a = a[self.axis] <= self.boundary  # type: ignore[index]
            side_b = b[self.axis] <= self.boundary  # type: ignore[index]
        except (TypeError, IndexError, KeyError):
            return False
        return side_a != side_b


@dataclass(frozen=True)
class ChurnSpec:
    """One churn event: at failure-clock ``time`` the vehicle at ``vertex``
    leaves (breaks down) or joins (is repaired)."""

    time: float
    vertex: Tuple[int, ...]
    action: str = "leave"

    def __post_init__(self) -> None:
        if self.action not in CHURN_ACTIONS:
            raise ValueError(
                f"churn action must be one of {CHURN_ACTIONS}, got {self.action!r}"
            )
        if self.time < 0:
            raise ValueError(f"churn time must be non-negative, got {self.time}")
        object.__setattr__(self, "vertex", tuple(int(c) for c in self.vertex))


@dataclass
class FailurePlan:
    """A mutable description of which failures to inject."""

    crashed: Set[Hashable] = field(default_factory=set)
    #: Processes that, although alive, never *initiate* a protocol action on
    #: their own (scenario 2's "done vehicle fails to initialize a diffusing
    #: computation").  The network does not consult this set -- protocol
    #: implementations do.
    initiation_suppressed: Set[Hashable] = field(default_factory=set)
    drop_predicates: List[DropPredicate] = field(default_factory=list)
    #: Timed partition windows, consulted against the failure clock.
    partitions: List[PartitionSpec] = field(default_factory=list)
    dropped_count: int = 0
    partition_dropped_count: int = 0
    #: Current failure-clock time (advanced by the harness, never by the plan).
    clock: float = 0.0
    #: Byzantine *watchers* (gossip monitoring): alive vehicles whose
    #: failure-detection behavior lies -- they report every pair silent,
    #: suspect regardless of evidence, and invert their attestations
    #: (forging grants for healthy pairs, withholding for dead ones).
    #: Job service and Phase I/II behavior stay honest; only the detector
    #: is faulty.  The quorum masks up to ``quorum - 1`` of these.
    byzantine_watchers: Set[Hashable] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # crash failures
    # ------------------------------------------------------------------ #

    def crash(self, identity: Hashable) -> None:
        """Mark a process as crashed (dead): it neither sends nor receives."""
        self.crashed.add(identity)

    def recover(self, identity: Hashable) -> None:
        """Undo a crash (churn rejoin); unknown identities are ignored."""
        self.crashed.discard(identity)

    def is_crashed(self, identity: Hashable) -> bool:
        """Whether the process is crashed."""
        return identity in self.crashed

    # ------------------------------------------------------------------ #
    # initiation suppression (scenario 2)
    # ------------------------------------------------------------------ #

    def suppress_initiation(self, identity: Hashable) -> None:
        """Prevent ``identity`` from starting its own diffusing computations."""
        self.initiation_suppressed.add(identity)

    def is_initiation_suppressed(self, identity: Hashable) -> bool:
        """Whether the process must not self-initiate protocol actions."""
        return identity in self.initiation_suppressed

    # ------------------------------------------------------------------ #
    # Byzantine watchers (gossip monitoring)
    # ------------------------------------------------------------------ #

    def mark_byzantine_watcher(self, identity: Hashable) -> None:
        """Make ``identity``'s failure detector lie (see field docstring)."""
        self.byzantine_watchers.add(identity)

    def is_byzantine_watcher(self, identity: Hashable) -> bool:
        """Whether the process's failure-detection behavior is Byzantine."""
        return identity in self.byzantine_watchers

    # ------------------------------------------------------------------ #
    # partitions and the failure clock
    # ------------------------------------------------------------------ #

    def add_partition(self, spec: PartitionSpec) -> None:
        """Register a timed partition window."""
        self.partitions.append(spec)

    def set_time(self, time: float) -> None:
        """Advance the failure clock (the harness calls this at job arrivals)."""
        self.clock = float(time)

    def active_partitions(self) -> List[PartitionSpec]:
        """The partition windows covering the current failure-clock time."""
        return [spec for spec in self.partitions if spec.active_at(self.clock)]

    def is_partitioned(self, a: Hashable, b: Hashable) -> bool:
        """Whether an active partition window separates ``a`` from ``b`` now."""
        return any(
            spec.active_at(self.clock) and spec.separates(a, b)
            for spec in self.partitions
        )

    # ------------------------------------------------------------------ #
    # message omission
    # ------------------------------------------------------------------ #

    def add_drop_rule(self, predicate: DropPredicate) -> None:
        """Drop every message for which ``predicate(sender, dest, msg)`` is true."""
        self.drop_predicates.append(predicate)

    def should_drop(self, sender: Hashable, destination: Hashable, message: Any) -> bool:
        """Consulted by the network on every send (crashed senders also drop)."""
        if sender in self.crashed:
            self.dropped_count += 1
            return True
        if self.is_partitioned(sender, destination):
            self.dropped_count += 1
            self.partition_dropped_count += 1
            return True
        for predicate in self.drop_predicates:
            if predicate(sender, destination, message):
                self.dropped_count += 1
                return True
        return False


def apply_churn(
    events: Iterable[ChurnSpec],
    time: float,
    applied: Set[ChurnSpec],
    *,
    leave: Callable[[Tuple[int, ...]], None],
    join: Callable[[Tuple[int, ...]], None],
) -> None:
    """Apply every not-yet-applied churn event with ``event.time <= time``.

    Shared by the round-mode and event-mode harnesses so both consume a
    churn schedule identically (in ``(time, vertex)`` order).  ``applied``
    is the caller-owned memory of already-executed events.
    """
    due = sorted(
        (e for e in events if e.time <= time and e not in applied),
        key=lambda e: (e.time, e.vertex, e.action),
    )
    for event in due:
        applied.add(event)
        if event.action == "leave":
            leave(event.vertex)
        else:
            join(event.vertex)
