"""Failure injection for the distributed substrate.

Section 3.2.5 distinguishes four scenarios: (1) no failures, (2) done
vehicles that fail to start their diffusing computation, (3) a constant
number of active vehicles breaking down ("dead"), and (4) many vehicles
breaking down (handled analytically in Chapter 4).  The simulator covers
scenarios 1--3; this module carries the knobs:

* *crashed* processes receive nothing and send nothing (their outgoing
  messages are silently discarded by the network);
* targeted *message drops* can suppress, e.g., the initiation of a specific
  diffusing computation;
* arbitrary predicates can be registered for fuzz-style omission testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, List, Set

__all__ = ["FailurePlan"]

DropPredicate = Callable[[Hashable, Hashable, Any], bool]


@dataclass
class FailurePlan:
    """A mutable description of which failures to inject."""

    crashed: Set[Hashable] = field(default_factory=set)
    #: Processes that, although alive, never *initiate* a protocol action on
    #: their own (scenario 2's "done vehicle fails to initialize a diffusing
    #: computation").  The network does not consult this set -- protocol
    #: implementations do.
    initiation_suppressed: Set[Hashable] = field(default_factory=set)
    drop_predicates: List[DropPredicate] = field(default_factory=list)
    dropped_count: int = 0

    # ------------------------------------------------------------------ #
    # crash failures
    # ------------------------------------------------------------------ #

    def crash(self, identity: Hashable) -> None:
        """Mark a process as crashed (dead): it neither sends nor receives."""
        self.crashed.add(identity)

    def is_crashed(self, identity: Hashable) -> bool:
        """Whether the process is crashed."""
        return identity in self.crashed

    # ------------------------------------------------------------------ #
    # initiation suppression (scenario 2)
    # ------------------------------------------------------------------ #

    def suppress_initiation(self, identity: Hashable) -> None:
        """Prevent ``identity`` from starting its own diffusing computations."""
        self.initiation_suppressed.add(identity)

    def is_initiation_suppressed(self, identity: Hashable) -> bool:
        """Whether the process must not self-initiate protocol actions."""
        return identity in self.initiation_suppressed

    # ------------------------------------------------------------------ #
    # message omission
    # ------------------------------------------------------------------ #

    def add_drop_rule(self, predicate: DropPredicate) -> None:
        """Drop every message for which ``predicate(sender, dest, msg)`` is true."""
        self.drop_predicates.append(predicate)

    def should_drop(self, sender: Hashable, destination: Hashable, message: Any) -> bool:
        """Consulted by the network on every send (crashed senders also drop)."""
        if sender in self.crashed:
            self.dropped_count += 1
            return True
        for predicate in self.drop_predicates:
            if predicate(sender, destination, message):
                self.dropped_count += 1
                return True
        return False
