"""Reliable FIFO message delivery between registered processes.

The communication model of Section 3.2 assumes: bidirectional links,
error-free transmission, per-link FIFO ordering ("synchronous communication:
messages sent from P to Q arrive in the order sent"), finite but arbitrary
delays, and negligible energy cost for communication.  This network layer
implements exactly that model on top of the discrete-event engine:

* each ``send`` schedules a delivery after a (possibly randomized) delay;
* deliveries on the same directed link never overtake one another;
* an optional :class:`~repro.distsim.failures.FailurePlan` may crash
  processes (all their messages are dropped) or drop specific messages,
  which the Chapter 3 failure-scenario experiments use.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.distsim.engine import Simulator
from repro.distsim.failures import FailurePlan
from repro.distsim.process import Process

__all__ = ["Network"]

DelayFunction = Callable[[Hashable, Hashable, Any], float]


class Network:
    """The message fabric connecting processes.

    Parameters
    ----------
    simulator:
        The discrete-event engine driving the run.  A fresh one is created
        when omitted.
    delay:
        Either a fixed non-negative delay applied to every message, or a
        callable ``(sender, destination, message) -> delay``.  When ``rng``
        is supplied and ``delay`` is a number, delays are drawn uniformly
        from ``[delay/2, 3*delay/2]`` to exercise asynchrony.
    rng:
        Optional ``numpy`` random generator for randomized delays.
    failure_plan:
        Optional failure injection (crashed processes, dropped messages).
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        *,
        delay: float | DelayFunction = 1.0,
        rng: Optional[np.random.Generator] = None,
        failure_plan: Optional[FailurePlan] = None,
    ) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        self._delay = delay
        self._rng = rng
        self.failure_plan = failure_plan if failure_plan is not None else FailurePlan()
        self._processes: Dict[Hashable, Process] = {}
        #: Time of the last scheduled delivery per directed link, used to
        #: enforce FIFO ordering even with randomized delays.
        self._last_delivery: Dict[Tuple[Hashable, Hashable], float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, process: Process) -> None:
        """Register a process; identities must be unique."""
        if process.identity in self._processes:
            raise ValueError(f"duplicate process identity {process.identity!r}")
        self._processes[process.identity] = process
        process.attach(self)

    def register_all(self, processes: Iterable[Process]) -> None:
        """Register many processes."""
        for process in processes:
            self.register(process)

    def process(self, identity: Hashable) -> Process:
        """Look up a registered process by identity."""
        return self._processes[identity]

    def processes(self) -> List[Process]:
        """All registered processes."""
        return list(self._processes.values())

    def __contains__(self, identity: object) -> bool:
        return identity in self._processes

    def start(self) -> None:
        """Invoke every process's ``on_start`` hook (at time zero)."""
        for process in self._processes.values():
            if not self.failure_plan.is_crashed(process.identity):
                process.on_start()

    # ------------------------------------------------------------------ #
    # messaging
    # ------------------------------------------------------------------ #

    def _draw_delay(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        if callable(self._delay):
            value = float(self._delay(sender, destination, message))
        elif self._rng is not None:
            base = float(self._delay)
            value = float(self._rng.uniform(base / 2, 3 * base / 2))
        else:
            value = float(self._delay)
        if value < 0:
            raise ValueError("message delay must be non-negative")
        return value

    def send(self, sender: Hashable, destination: Hashable, message: Any) -> None:
        """Send a message; delivery is scheduled on the simulator."""
        if destination not in self._processes:
            raise KeyError(f"unknown destination {destination!r}")
        self.messages_sent += 1
        if self.failure_plan.should_drop(sender, destination, message):
            self.messages_dropped += 1
            return
        if self.failure_plan.is_crashed(destination):
            # Messages to crashed processes vanish; the sender is not told.
            self.messages_dropped += 1
            return
        delay = self._draw_delay(sender, destination, message)
        now = self.simulator.now
        link = (sender, destination)
        delivery_time = max(now + delay, self._last_delivery.get(link, 0.0))
        self._last_delivery[link] = delivery_time

        def _deliver() -> None:
            if self.failure_plan.is_crashed(destination):
                self.messages_dropped += 1
                return
            self.messages_delivered += 1
            self._processes[destination].deliver(sender, message)

        self.simulator.schedule_at(delivery_time, _deliver)

    # ------------------------------------------------------------------ #
    # execution helpers
    # ------------------------------------------------------------------ #

    def run_until_quiescent(self, *, max_events: int = 10_000_000) -> int:
        """Drain the simulator; returns the number of events executed."""
        return self.simulator.run_until_quiescent(max_events=max_events)
