"""Message delivery between registered processes, routed through a transport.

The communication model of Section 3.2 assumes: bidirectional links,
error-free transmission, per-link FIFO ordering ("synchronous communication:
messages sent from P to Q arrive in the order sent"), finite but arbitrary
delays, and negligible energy cost for communication.  The network layer
owns *who* can talk (process registration, crash/partition failure
injection via :class:`~repro.distsim.failures.FailurePlan`); the *channel
itself* -- delays, loss, corruption, FIFO scheduling on the simulation
clock -- lives in a pluggable :class:`~repro.distsim.transport.Transport`:

* each ``send`` first consults the failure plan (crashed endpoints,
  partitions, drop rules), then hands the message to the transport, which
  schedules the delivery event;
* deliveries on the same directed link never overtake one another
  (FIFO clamping is a :class:`~repro.distsim.transport.Transport`
  invariant, shared by every delivery model);
* when no transport is given, the historical behavior is reproduced
  exactly: a fixed (or callable) delay, or -- when an RNG is supplied --
  the randomized uniform ``[d/2, 3d/2]`` delays of the original model.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional

import numpy as np

from repro.distsim.engine import Simulator
from repro.distsim.failures import FailurePlan
from repro.distsim.process import Process
from repro.distsim.transport import (
    DelayFunction,
    RandomJitterTransport,
    ReliableTransport,
    Transport,
)

__all__ = ["Network"]


class Network:
    """The message fabric connecting processes.

    Parameters
    ----------
    simulator:
        The discrete-event engine driving the run.  A fresh one is created
        when omitted.
    delay:
        Legacy channel description, used only when no ``transport`` is
        given: a fixed non-negative delay applied to every message, or a
        callable ``(sender, destination, message) -> delay``.  When ``rng``
        is supplied and ``delay`` is a number, delays are drawn uniformly
        from ``[delay/2, 3*delay/2]`` to exercise asynchrony.
    rng:
        Optional ``numpy`` random generator for the legacy randomized
        delays.
    failure_plan:
        Optional failure injection (crashed processes, dropped messages).
    transport:
        The delivery model (see :mod:`repro.distsim.transport`).  Overrides
        ``delay``/``rng`` when given; the network binds it to its simulator.
    """

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        *,
        delay: float | DelayFunction = 1.0,
        rng: Optional[np.random.Generator] = None,
        failure_plan: Optional[FailurePlan] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        if transport is None:
            if not callable(delay) and rng is not None:
                transport = RandomJitterTransport(float(delay), rng)
            else:
                transport = ReliableTransport(delay)
        self.transport = transport.bind(self.simulator)
        self.failure_plan = failure_plan if failure_plan is not None else FailurePlan()
        self._processes: Dict[Hashable, Process] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Optional observer invoked once per logical send, *before* any
        #: drop decision: ``shard_monitor(sender, destination, message)``.
        #: The sharded coordinator installs one to classify traffic as
        #: intra- vs cross-shard; ``None`` (the default) costs nothing on
        #: the hot path beyond one attribute read.
        self.shard_monitor = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, process: Process) -> None:
        """Register a process; identities must be unique."""
        if process.identity in self._processes:
            raise ValueError(f"duplicate process identity {process.identity!r}")
        self._processes[process.identity] = process
        process.attach(self)

    def register_all(self, processes: Iterable[Process]) -> None:
        """Register many processes (one loop, no per-process call stack)."""
        registered = self._processes
        for process in processes:
            if process.identity in registered:
                raise ValueError(f"duplicate process identity {process.identity!r}")
            registered[process.identity] = process
            process.attach(self)

    def process(self, identity: Hashable) -> Process:
        """Look up a registered process by identity."""
        return self._processes[identity]

    def processes(self) -> List[Process]:
        """All registered processes."""
        return list(self._processes.values())

    def __contains__(self, identity: object) -> bool:
        return identity in self._processes

    def start(self) -> None:
        """Invoke every process's ``on_start`` hook (at time zero)."""
        for process in self._processes.values():
            if not self.failure_plan.is_crashed(process.identity):
                process.on_start()

    # ------------------------------------------------------------------ #
    # messaging
    # ------------------------------------------------------------------ #

    def send(self, sender: Hashable, destination: Hashable, message: Any) -> None:
        """Send a message; the transport schedules its delivery event."""
        if destination not in self._processes:
            raise KeyError(f"unknown destination {destination!r}")
        self.messages_sent += 1
        if self.shard_monitor is not None:
            self.shard_monitor(sender, destination, message)
        if self.failure_plan.should_drop(sender, destination, message):
            self.messages_dropped += 1
            return
        if self.failure_plan.is_crashed(destination):
            # Messages to crashed processes vanish; the sender is not told.
            self.messages_dropped += 1
            return

        def _deliver(delivered: Any) -> None:
            if self.failure_plan.is_crashed(destination):
                self.messages_dropped += 1
                return
            self.messages_delivered += 1
            self._processes[destination].deliver(sender, delivered)

        if not self.transport.send(sender, destination, message, _deliver):
            self.messages_dropped += 1

    def send_many(self, sender: Hashable, destinations: Iterable[Hashable], message: Any) -> None:
        """Send one message to many destinations, batched when possible.

        The common case of the protocol's traffic is a *broadcast*: the
        same heartbeat, query, or notice to every peer of a cube.  When
        the transport reports a shared batch delay (the reliable
        fixed-delay channel), the whole broadcast pays one failure-plan
        pass, one transport call and one calendar-queue batch push instead
        of a per-message ``send`` stack.  Otherwise -- lossy, corrupting,
        per-edge-latency and jitter transports, whose streams must be
        consumed in per-message send order -- it falls back to
        :meth:`send`, byte-identically.
        """
        transport = self.transport
        delay = transport.batch_latency(sender, destinations, message)
        if delay is None:
            for destination in destinations:
                self.send(sender, destination, message)
            return
        plan = self.failure_plan
        processes = self._processes
        monitor = self.shard_monitor

        def make_deliver(destination: Hashable) -> Any:
            def _deliver() -> None:
                if plan.is_crashed(destination):
                    self.messages_dropped += 1
                    return
                self.messages_delivered += 1
                processes[destination].deliver(sender, message)

            return _deliver

        survivors = []
        try:
            for destination in destinations:
                if destination not in processes:
                    raise KeyError(f"unknown destination {destination!r}")
                self.messages_sent += 1
                if monitor is not None:
                    monitor(sender, destination, message)
                if plan.should_drop(sender, destination, message) or plan.is_crashed(
                    destination
                ):
                    # Dropped by the plan, or addressed to a crashed process
                    # (the sender is not told) -- exactly `send`'s two cases.
                    self.messages_dropped += 1
                    continue
                survivors.append(destination)
        finally:
            # On an unknown destination mid-broadcast the messages accepted
            # so far are still scheduled -- the same state a sequential
            # `send` loop leaves behind when it raises.
            if survivors:
                transport.send_batch(sender, survivors, message, make_deliver, delay)

    # ------------------------------------------------------------------ #
    # execution helpers
    # ------------------------------------------------------------------ #

    def run_until_quiescent(self, *, max_events: int = 10_000_000) -> int:
        """Drain the simulator; returns the number of events executed."""
        return self.simulator.run_until_quiescent(max_events=max_events)
