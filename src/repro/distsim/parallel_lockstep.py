"""Multi-process parallel lockstep: per-shard worker fleets for failure runs.

PR 8's parallel isolated mode only fans out *shard-safe* configurations --
no failures, no monitoring, no stream-coupled transport -- so the paper's
actual failure-recovery protocol (the interesting part) got zero parallel
speedup.  This module widens the multi-process class to the failure modes
whose protocol traffic is provably shard-local:

* **Monitoring without escalation.**  With ``FleetConfig.escalation`` off
  the fleet builds no hierarchical watch ring: heartbeats flow between
  cube-local watch pairs, Phase I/II replacement is intra-cube, and the
  engaged-set round tick touches only local vehicles.  Every logical send
  therefore stays inside the cube that owns both endpoints -- and cubes are
  exactly what :class:`~repro.distsim.sharding.ShardPlan` assigns whole to
  shards -- so the cross-shard mailbox is provably empty and each shard's
  Chandy-Misra lookahead (local clock + minimum *outbound* boundary-edge
  latency) is infinite: the conservative window is unbounded and each
  worker free-runs to quiescence through a single window barrier.
* **Crashes, initiation suppression, partitions, churn.**  The
  :class:`~repro.distsim.failures.FailurePlan` is declarative (sets of
  identities, timed partition windows, churn specs), so it partitions by
  owning shard trivially; what does *not* partition is the failure
  **clock** and the fleet-wide heartbeat **round numbering**, which the
  reference run advances inside every arrival event.  Workers replicate
  them: every foreign arrival time is scheduled as a *tick* event (advance
  the failure clock; run the global heartbeat round over the local
  vehicles) and every churn spec is scheduled in every shard (foreign
  vertices no-op through the ``vertex in fleet.vehicles`` guard).  Each
  shard then executes exactly the reference event sequence restricted to
  its own vehicles, with identical clocks and round numbers -- byte
  identity follows, and the replicated bookkeeping events are subtracted
  from the merged ``events_processed``.
* **Edge-keyed transport streams.**  ``LossyTransport`` /
  ``CorruptingTransport`` with ``stream="edge"`` derive their draws per
  ``(edge, purpose, seed, message counter)`` instead of one generator in
  global send order (see :func:`~repro.distsim.transport._edge_stream_rng`),
  which makes loss and corruption shardable; the default ``"global"``
  stream is the compat shim reproducing every pre-split hash and falls
  back to single-process lockstep.

Everything outside the class -- escalation (replacement migrates vehicles
*between* shards: distributed state migration, not message exchange),
``recovery_rounds`` (conditional mid-run global rounds that cannot be
precomputed per shard), shared-RNG transports, closure drop rules -- is
rejected by :func:`parallel_lockstep_eligibility` with the first
disqualifying feature as a human-readable reason, and ``run_online`` falls
back to the single-process lockstep mode, which is exact for every
configuration.  The reason is recorded on the result (and logged), so
bench numbers can't silently be misread as parallel.

Workers verify the zero-boundary-traffic claim at runtime: an
:class:`IsolationGuard` installed as ``Network.shard_monitor`` raises on
the first send whose endpoints map to different shards, turning any future
eligibility bug into a loud failure instead of a silent divergence.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.distsim.failures import FailurePlan
from repro.distsim.sharding import merge_shard_results

__all__ = [
    "parallel_lockstep_eligibility",
    "shard_lookahead",
    "IsolationGuard",
    "run_parallel_lockstep",
    "merge_parallel_lockstep_results",
]


def parallel_lockstep_eligibility(
    transport,
    transport_instance,
    config,
    rng,
    failure_plan: Optional[FailurePlan],
    recovery_rounds: int,
    escalation: Optional[bool],
) -> Tuple[bool, str]:
    """Whether a sharded run may use the parallel lockstep engine.

    Returns ``(eligible, reason)`` where ``reason`` names the *first*
    disqualifying feature (empty when eligible) -- recorded on the result
    so a fallback to single-process lockstep is always attributable.
    The checks mirror the structural argument in the module docstring:
    anything that would generate cross-shard traffic, couple shards
    through a shared stream, or fail to pickle into a worker process
    disqualifies.
    """
    if escalation is not None:
        escalated = bool(escalation)
    else:
        escalated = config.escalation if config is not None else False
    if escalated:
        return (
            False,
            "escalation: cross-cube replacement migrates vehicles between shards",
        )
    if (config.monitoring if config is not None else False) == "gossip":
        return (
            False,
            "gossip monitoring: digest fanout targets fleet-wide peers, so "
            "every round generates cross-cube (hence cross-shard) traffic",
        )
    if recovery_rounds != 0:
        return (
            False,
            "recovery_rounds: conditional mid-run heartbeat rounds cannot be "
            "precomputed per shard",
        )
    if failure_plan is not None and failure_plan.drop_predicates:
        return (
            False,
            "failure-plan drop predicates: arbitrary callables do not pickle "
            "into worker processes",
        )
    if transport is None:
        if rng is not None:
            return (
                False,
                "shared-rng jitter transport: latency draws are consumed in "
                "global send order",
            )
        return (True, "")  # the fixed-delay reliable default, rebuilt per worker
    from repro.distsim.transport import TransportSpec

    if not isinstance(transport, (str, TransportSpec)):
        return (
            False,
            "caller-owned transport instance: workers need a rebuildable "
            "spec or kind name",
        )
    if not transport_instance.shardable:
        return (
            False,
            f"transport {transport_instance.kind!r} couples shards through a "
            'shared stream (lossy/corrupting need stream="edge")',
        )
    return (True, "")


def shard_lookahead(transport, boundary_out_edges: Sequence[Tuple[Hashable, Hashable]]):
    """The Chandy-Misra lookahead of one shard.

    The earliest instant a shard at local clock ``t`` can affect another
    shard is ``t + min(latency of an outbound boundary edge)``; the
    coordinator recomputes the bound per window from the frontier clock.
    A shard with no outbound boundary edges can never affect another
    shard, so its lookahead is infinite and it free-runs to quiescence --
    the optimum, and exactly the situation the eligible configuration
    class guarantees (all protocol traffic is cube-local).
    """
    if not boundary_out_edges:
        return math.inf
    latencies = [
        float(transport.latency(sender, destination, None))
        for sender, destination in boundary_out_edges
    ]
    positive = [value for value in latencies if value > 0.0]
    return min(positive) if positive else 0.0


class IsolationGuard:
    """Raises on the first send that crosses a shard boundary.

    Installed as ``Network.shard_monitor`` inside each worker.  Identities
    map to shards through their home cube (the dense cube->shard lookup
    table the coordinator built), cached per identity.  The eligible
    configuration class guarantees this never fires; the guard converts a
    violated guarantee into an immediate, attributable error rather than a
    silently diverged merge.
    """

    __slots__ = ("shard", "lut", "lo", "side", "_cache", "checked")

    def __init__(self, shard: int, lut, lo: Sequence[int], side: int) -> None:
        self.shard = int(shard)
        self.lut = lut
        self.lo = tuple(int(c) for c in lo)
        self.side = int(side)
        self._cache: Dict[Hashable, int] = {}
        self.checked = 0

    def shard_of(self, identity: Hashable) -> int:
        shard = self._cache.get(identity)
        if shard is None:
            cube = tuple(
                (int(c) - low) // self.side for c, low in zip(identity, self.lo)
            )
            shard = int(self.lut[cube])
            self._cache[identity] = shard
        return shard

    def __call__(self, sender: Hashable, destination: Hashable, message: Any) -> None:
        self.checked += 1
        source = self.shard_of(sender)
        target = self.shard_of(destination)
        if source != self.shard or target != self.shard:
            raise RuntimeError(
                f"parallel lockstep isolation violated: shard {self.shard} "
                f"observed a send {sender!r} (shard {source}) -> "
                f"{destination!r} (shard {target}) of "
                f"{type(message).__name__}; this configuration should have "
                "fallen back to single-process lockstep"
            )


def _parallel_lockstep_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one shard's sub-fleet through the parallel lockstep engine.

    The worker rebuilds its sub-fleet exactly as the PR 8 isolated worker
    does (same provisioning order, global window geometry, trusted job
    rebuild), then layers on the failure-mode machinery: the pickled
    failure plan and dead-vehicle sweep, every churn spec (foreign
    vertices no-op), and -- when the run needs clock/round replication --
    one *tick* event per foreign arrival time replaying the reference
    arrival's bookkeeping prefix (failure-clock advance + global heartbeat
    round).  Execution itself goes through :func:`run_lockstep` with an
    infinite horizon: one conservative window to quiescence, one barrier,
    the Chandy-Misra optimum for a shard with no outbound boundary edges.
    Harness imports stay lazy (distsim sits below the vehicle protocol).
    """
    import time as _time

    from repro.core.demand import DemandMap, Job, JobSequence
    from repro.core.online import _run_events, provision_fleet
    from repro.distsim.sharding import ShardMailbox, lockstep_window, run_lockstep
    from repro.distsim.transport import TransportSpec
    from repro.grid.lattice import Box

    start = _time.perf_counter()
    demand = DemandMap(
        {tuple(point): value for point, value in payload["entries"]},
        dim=payload["dim"],
    )
    window = Box(tuple(payload["window_lo"]), tuple(payload["window_hi"]))
    transport = payload["transport"]
    if isinstance(transport, dict):
        transport = TransportSpec.from_json(transport).build()
    elif isinstance(transport, str):
        transport = TransportSpec(kind=transport).build()
    fleet, fleet_config, _, _ = provision_fleet(
        demand,
        omega=payload["omega"],
        capacity=payload["capacity"],
        config=payload["config"],
        failure_plan=payload["failure_plan"],
        dead_vehicles=payload["dead"],
        transport=transport,
        window=window,
    )
    if payload.get("verify_isolation", True):
        guard = IsolationGuard(
            payload["shard"], payload["shard_lut"], payload["window_lo"],
            payload["cube_side"],
        )
        fleet.network.shard_monitor = guard
    jobs = JobSequence.from_sorted(
        [
            Job.trusted(time, tuple(position), energy)
            for time, position, energy in payload["jobs"]
        ]
    )

    barriers = 0
    window_length = lockstep_window(
        fleet.network.transport, fleet_config.message_delay
    )
    mailbox = ShardMailbox()

    def _run(simulator) -> None:
        nonlocal barriers
        _executed, barriers = run_lockstep(
            simulator, window_length, mailbox=mailbox, horizon=math.inf
        )

    served = _run_events(
        fleet,
        fleet_config,
        jobs,
        0,
        payload["churn"],
        fleet.failure_plan,
        run=_run,
        foreign_times=payload["foreign_times"],
    )

    # Replicated bookkeeping events (foreign-arrival ticks, churn specs
    # owned by other shards) execute once per shard but once in the
    # reference run; subtract them so merged events sum to the reference.
    replicated = len(payload["foreign_times"]) + (
        len(payload["churn"]) - payload["churn_owned"]
    )

    flat = fleet.flat
    segments = []
    for index, cube_id in flat.cube_id_of.items():
        lo, hi = flat.cube_slices[cube_id]
        segments.append(
            (
                index,
                flat.identities[lo:hi],
                list(flat.travel[lo:hi]),
                list(flat.service[lo:hi]),
            )
        )
    return {
        "shard": payload["shard"],
        "jobs_total": len(jobs),
        "served": served,
        "segments": segments,
        "max_energy": fleet.max_energy_used(),
        "replacements": fleet.stats.replacements,
        "searches": fleet.stats.searches_started,
        "failed_replacements": fleet.stats.failed_replacements,
        "messages": fleet.messages_sent(),
        "heartbeat_rounds": fleet.stats.heartbeat_rounds,
        "messages_dropped": fleet.messages_dropped(),
        "messages_corrupted": fleet.messages_corrupted(),
        "events": fleet.simulator.events_processed - replicated,
        "replicated_events": replicated,
        "barriers": barriers,
        "sim_time": fleet.simulator.now,
        "vehicles": len(fleet.vehicles),
        "elapsed": _time.perf_counter() - start,
    }


def run_parallel_lockstep(
    payloads: Sequence[Dict[str, Any]], *, workers: Optional[int] = None
) -> List[Dict[str, Any]]:
    """One :func:`_parallel_lockstep_worker` per payload, in a process pool.

    A single payload runs inline; results come back in payload order
    regardless of completion order, and each worker is a closed
    deterministic sub-simulation, so the merged result is independent of
    ``workers`` (any concurrency level reproduces the same bytes).
    """
    if not payloads:
        return []
    if len(payloads) == 1:
        return [_parallel_lockstep_worker(payloads[0])]
    import os
    from concurrent.futures import ProcessPoolExecutor

    if workers is None:
        workers = min(len(payloads), os.cpu_count() or 1)
    else:
        workers = max(1, min(int(workers), len(payloads)))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_parallel_lockstep_worker, payloads))


def merge_parallel_lockstep_results(
    results: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """Merge parallel lockstep worker results, replication-aware.

    Defers to :func:`~repro.distsim.sharding.merge_shard_results` for the
    float-exact per-cube segment merge and the summed counters, then
    corrects the two measurements replication distorts: heartbeat rounds
    are *replicated* (every shard runs every global round, so the merged
    count is the per-shard maximum, not the sum), and ``events`` already
    arrive net of each worker's replicated bookkeeping (the sum is the
    reference count).  Barrier and replication totals ride along for the
    bench artifacts.
    """
    merged = merge_shard_results(results)
    merged["heartbeat_rounds"] = max(
        (result["heartbeat_rounds"] for result in results), default=0
    )
    merged["window_barriers"] = sum(result["barriers"] for result in results)
    merged["replicated_events"] = sum(
        result["replicated_events"] for result in results
    )
    return merged
