"""The process abstraction for message-passing protocols.

A :class:`Process` has an identity, an unbounded input buffer (the thesis
assumes unbounded buffers for ease of exposition), and a ``on_message``
handler invoked by the network when a buffered message is consumed.
Processes send messages through the network they are registered with; they
never share memory.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distsim.engine import Event
    from repro.distsim.network import Network

__all__ = ["Process"]


class Process:
    """Base class for protocol participants.

    Subclasses override :meth:`on_message` (required) and optionally
    :meth:`on_start`, which the network calls once when the simulation is
    kicked off.
    """

    #: Whether :meth:`deliver` appends to :attr:`message_log`.  On by
    #: default (tests and debugging rely on the log); a long-lived service
    #: run sets it ``False`` per process so memory stays constant over an
    #: unbounded message stream.  The flag only gates the *recording* --
    #: dispatch to :meth:`on_message` is unchanged.
    log_messages: bool = True

    def __init__(self, identity: Hashable) -> None:
        self.identity = identity
        self._network: Optional["Network"] = None
        #: Messages received, in order -- kept for debugging and assertions.
        self.message_log: List[Any] = []

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach(self, network: "Network") -> None:
        """Called by :class:`~repro.distsim.network.Network` on registration."""
        self._network = network

    @property
    def network(self) -> "Network":
        """The network this process is registered with."""
        if self._network is None:
            raise RuntimeError(f"process {self.identity!r} is not attached to a network")
        return self._network

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.network.simulator.now

    # ------------------------------------------------------------------ #
    # messaging
    # ------------------------------------------------------------------ #

    def send(self, destination: Hashable, message: Any) -> None:
        """Send ``message`` to the process with identity ``destination``."""
        self.network.send(self.identity, destination, message)

    def send_many(self, destinations: Any, message: Any) -> None:
        """Broadcast one message to many destinations.

        Semantically identical to calling :meth:`send` per destination (in
        order); the network batches the whole broadcast through one
        transport call on channels that allow it (see
        :meth:`~repro.distsim.network.Network.send_many`).
        """
        self.network.send_many(self.identity, destinations, message)

    def deliver(self, sender: Hashable, message: Any) -> None:
        """Entry point used by the network; records and dispatches the message."""
        if self.log_messages:
            self.message_log.append((sender, message))
        self.on_message(sender, message)

    # ------------------------------------------------------------------ #
    # timers
    # ------------------------------------------------------------------ #

    def set_timer(
        self, delay: float, callback: Optional[Callable[[], None]] = None
    ) -> "Event":
        """Schedule a local timer ``delay`` time units from now.

        Fires ``callback`` (default: :meth:`on_timer`) on the network's
        simulator.  A timer of a process that has crashed by the time it
        fires is silently discarded -- crashed processes take no local
        steps.  The returned event can be cancelled.
        """
        fire = callback if callback is not None else self.on_timer

        def _fire() -> None:
            if self.network.failure_plan.is_crashed(self.identity):
                return
            fire()

        return self.network.simulator.schedule(delay, _fire, kind="timer")

    # ------------------------------------------------------------------ #
    # overridables
    # ------------------------------------------------------------------ #

    def on_start(self) -> None:
        """Hook invoked once when the network starts all processes."""

    def on_timer(self) -> None:
        """Default target of :meth:`set_timer`; subclasses may override."""

    def on_message(self, sender: Hashable, message: Any) -> None:
        """Handle one received message.  Subclasses must override."""
        raise NotImplementedError
