"""Cube-partitioned sharding of deterministic simulation runs.

The protocol is cube-local by construction: Phase I/II replacement traffic
never leaves a cube, and the only messages that cross a cube boundary are
the escalation/monitoring flows the hierarchy defines (escalation rings,
hierarchical watch-ring heartbeats, adoption moves).  The cube partition is
therefore a natural shard key, and this module turns it into one:

* :class:`ShardPlan` assigns every occupied cube to one of ``N`` shards by
  grouping cubes under a common :class:`~repro.grid.cubes.CubeHierarchy`
  ancestor (a dyadic level box) and distributing the lex-ordered groups
  contiguously, balanced by cube count.  Boundary cubes -- the ones whose
  sibling ring contains a cube owned by another shard -- are exactly where
  cross-shard traffic can originate.
* :class:`ShardMailbox` is the boundary-message ledger: every cross-shard
  send is recorded under a ``(timestamp, sequence)`` key and exchanged at
  the next window barrier, in exactly that deterministic order.
* :class:`ShardMonitor` hooks :attr:`Network.shard_monitor
  <repro.distsim.network.Network.shard_monitor>` to classify each logical
  send as intra- vs cross-shard and feed the mailbox.
* :func:`run_lockstep` advances a run through conservative time windows on
  the calendar queue (:meth:`Simulator.run_window
  <repro.distsim.engine.Simulator.run_window>`), the window length bounded
  by the minimum cross-shard transport latency
  (:func:`lockstep_window`): a message sent inside a window cannot be
  delivered before the next barrier, so exchanging boundary traffic at
  barriers reproduces the single-process delivery order exactly.  Because
  the windows partition one global event timeline, the executed event
  sequence -- and hence every result byte -- is identical to an unwindowed
  run; this mode covers *every* configuration, including the stream-coupled
  transports (lossy, corrupting, shared-RNG jitter) whose draws depend on
  the global send order.
* :func:`run_parallel` is the multi-process fast path for shard-*safe*
  configurations (shardable transport, no shared RNG, no monitoring or
  escalation, no failure injection): with zero cross-shard traffic the
  shards are fully independent sub-simulations, each worker builds its own
  sub-fleet over the global window and runs to quiescence, and
  :func:`merge_shard_results` reassembles the per-cube state segments in
  global creation (lex) order so even float summation order -- and with it
  ``total_travel``/``total_service`` -- matches the single-process run bit
  for bit.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.distsim.engine import Simulator

__all__ = [
    "ShardPlan",
    "ShardMailbox",
    "ShardMonitor",
    "lockstep_window",
    "cross_shard_edge_latencies",
    "run_lockstep",
    "run_parallel",
    "merge_shard_results",
]

CubeIndex = Tuple[int, ...]


class ShardPlan:
    """Assignment of cubes to shards via hierarchy-level ancestor groups.

    Parameters
    ----------
    hierarchy:
        The run's :class:`~repro.grid.cubes.CubeHierarchy` (duck-typed:
        only ``levels``, ``ancestor`` and ``siblings`` are used, so the
        distsim layer stays import-independent of the grid package).
    shards:
        Number of shards (``>= 1``).  Shards may end up empty when the
        occupied-cube count is smaller.
    cubes:
        The cube multi-indices to assign -- typically the cubes with
        demand, in any order.  Defaults to every cube of the grid.
    """

    def __init__(
        self,
        hierarchy,
        shards: int,
        cubes: Optional[Sequence[CubeIndex]] = None,
    ) -> None:
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.hierarchy = hierarchy
        self.shards = shards
        if cubes is None:
            cubes = [index for index, _box in hierarchy.grid.cubes()]
        normalized = sorted({tuple(int(c) for c in index) for index in cubes})
        if not normalized:
            raise ValueError("cannot build a shard plan over zero cubes")
        self.cubes: Tuple[CubeIndex, ...] = tuple(normalized)

        self.level = self._choose_level(hierarchy, normalized, shards)
        grouped = self._group_members(hierarchy, normalized, self.level)

        # Contiguous balanced partition of the lex-ordered group list: walk
        # groups in ancestor order, closing the current shard once adding
        # more than half the next group would overshoot its fair share of
        # what remains.  Deterministic, and shard regions stay unions of
        # whole level boxes (the property boundary detection relies on).
        assignment: List[List[CubeIndex]] = [[] for _ in range(shards)]
        shard = 0
        count = 0
        remaining = len(normalized)
        for members in grouped:
            if shard < shards - 1 and count > 0:
                fair = (count + remaining) / (shards - shard)
                if count + 0.5 * len(members) > fair:
                    shard += 1
                    count = 0
            assignment[shard].extend(members)
            count += len(members)
            remaining -= len(members)
        self._assignment: Tuple[Tuple[CubeIndex, ...], ...] = tuple(
            tuple(members) for members in assignment
        )
        self._shard_of: Dict[CubeIndex, int] = {
            index: shard
            for shard, members in enumerate(self._assignment)
            for index in members
        }

    @staticmethod
    def _choose_level(hierarchy, cubes: List[CubeIndex], shards: int) -> int:
        """The coarsest level that still leaves room to balance.

        Prefer the largest level whose ancestor-group count is at least
        ``4 * shards`` (slack for the greedy balancer), falling back to at
        least ``shards`` groups, then to level 0 (every cube its own
        group).  Coarser groups mean fewer boundary cubes; finer groups
        mean better load balance -- the 4x slack is the compromise.
        """
        bulk = getattr(hierarchy, "ancestors_array", None)
        fallback = 0
        for level in range(hierarchy.levels, -1, -1):
            if bulk is not None:
                import numpy as np

                count = len(np.unique(bulk(cubes, level), axis=0))
            else:
                count = len({hierarchy.ancestor(index, level) for index in cubes})
            if count >= 4 * shards:
                return level
            if count >= shards and fallback == 0:
                fallback = level
        return fallback

    @staticmethod
    def _group_members(
        hierarchy, normalized: List[CubeIndex], level: int
    ) -> List[List[CubeIndex]]:
        """Member lists per ancestor group, in lexicographic ancestor order.

        Members keep their (lex) order inside each group.  When the
        hierarchy offers the bulk ``ancestors_array`` hook the grouping is
        a vectorized unique + stable sort instead of one Python
        ``ancestor()`` call per cube -- at ``10^5`` cubes that is the
        difference between milliseconds and seconds on the shard-planning
        critical path, which every multi-process run pays before the first
        worker starts.  Both paths produce identical group lists.
        """
        bulk = getattr(hierarchy, "ancestors_array", None)
        if bulk is not None:
            import numpy as np

            uniq, inverse = np.unique(
                bulk(normalized, level), axis=0, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            counts = np.bincount(inverse, minlength=len(uniq))
            order = np.argsort(inverse, kind="stable")
            grouped: List[List[CubeIndex]] = []
            start = 0
            for size in counts:
                grouped.append([normalized[i] for i in order[start : start + size]])
                start += size
            return grouped
        groups: Dict[CubeIndex, List[CubeIndex]] = {}
        for index in normalized:
            groups.setdefault(hierarchy.ancestor(index, level), []).append(index)
        return [groups[ancestor] for ancestor in sorted(groups)]

    def shard_of(self, index: CubeIndex) -> int:
        """The shard owning cube ``index`` (raises on unassigned cubes)."""
        return self._shard_of[tuple(index)]

    def shard_of_or(self, index: CubeIndex, default: int = 0) -> int:
        """Like :meth:`shard_of` but tolerant of unassigned cubes."""
        return self._shard_of.get(tuple(index), default)

    def cubes_of(self, shard: int) -> Tuple[CubeIndex, ...]:
        """The cubes assigned to ``shard``, in lexicographic order."""
        return self._assignment[shard]

    def counts(self) -> Tuple[int, ...]:
        """Cube count per shard (empty shards report 0)."""
        return tuple(len(members) for members in self._assignment)

    def boundary_cubes(self, level: int = 1) -> Tuple[CubeIndex, ...]:
        """Cubes whose level-``level`` sibling ring crosses a shard boundary.

        These are exactly the cubes from which an escalation ring (or a
        hierarchical watch edge) of that level can generate cross-shard
        traffic; everything else is provably shard-local at that level.
        """
        result = []
        for index in self.cubes:
            own = self._shard_of[index]
            for sibling in self.hierarchy.siblings(index, level):
                other = self._shard_of.get(sibling)
                if other is not None and other != own:
                    result.append(index)
                    break
        return tuple(result)


class ShardMailbox:
    """The boundary-message ledger, keyed ``(timestamp, sequence)``.

    Cross-shard sends are posted in global send order (the sequence number
    is the deterministic tiebreak for same-timestamp messages) and drained
    at window barriers.  Simulation time is nondecreasing while events
    execute, so the entry list is always sorted by key and a drain is a
    prefix cut.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, int, int, Any]] = []
        self._sequence = 0
        #: Cross-shard messages posted so far.
        self.posted = 0
        #: Messages exchanged at barriers so far.
        self.exchanged = 0

    def post(self, time: float, source: int, destination: int, payload: Any = None) -> None:
        """Record one cross-shard message sent at ``time``."""
        self._entries.append((float(time), self._sequence, source, destination, payload))
        self._sequence += 1
        self.posted += 1

    def __len__(self) -> int:
        return len(self._entries)

    def drain_until(self, bound: float) -> List[Tuple[float, int, int, int, Any]]:
        """Exchange (remove and return) every entry with ``time <= bound``."""
        cut = 0
        entries = self._entries
        while cut < len(entries) and entries[cut][0] <= bound:
            cut += 1
        drained, self._entries = entries[:cut], entries[cut:]
        self.exchanged += len(drained)
        return drained


class ShardMonitor:
    """Classifies every logical send as intra- or cross-shard.

    Installed as :attr:`Network.shard_monitor
    <repro.distsim.network.Network.shard_monitor>`; purely observational,
    so the monitored run stays byte-identical to an unmonitored one.
    Identities are mapped to shards through their *home cube* (vehicle
    identities are home vertices; a vehicle that physically moved still
    answers protocol traffic under its identity).
    """

    def __init__(
        self,
        plan: ShardPlan,
        cube_of: Callable[[Hashable], CubeIndex],
        simulator: Simulator,
        mailbox: ShardMailbox,
    ) -> None:
        self.plan = plan
        self.mailbox = mailbox
        self._cube_of = cube_of
        self._simulator = simulator
        self._cache: Dict[Hashable, int] = {}
        self.intra_shard = 0
        self.cross_shard = 0

    def shard_of_identity(self, identity: Hashable) -> int:
        shard = self._cache.get(identity)
        if shard is None:
            shard = self.plan.shard_of_or(self._cube_of(identity), 0)
            self._cache[identity] = shard
        return shard

    def __call__(self, sender: Hashable, destination: Hashable, message: Any) -> None:
        source = self.shard_of_identity(sender)
        target = self.shard_of_identity(destination)
        if source == target:
            self.intra_shard += 1
        else:
            self.cross_shard += 1
            self.mailbox.post(
                self._simulator.now, source, target, type(message).__name__
            )


def lockstep_window(
    transport,
    fallback: float = 0.0,
    *,
    edge_latencies: Optional[Sequence[float]] = None,
) -> float:
    """The conservative window length for a lockstep sharded run.

    Any window ``W <= min_latency`` guarantees a message sent inside
    ``[kW, (k+1)W)`` is delivered at or after the barrier at ``(k+1)W``,
    so barriers are the only points where cross-shard traffic must be
    exchanged.

    ``edge_latencies`` are probed latencies over representative cross-shard
    edges (see :func:`cross_shard_edge_latencies`); when any are positive,
    their minimum is the window -- the sharpest bound actually realized by
    the shard topology, typically wider than the transport's global
    ``min_latency`` floor.  Otherwise the transport's ``min_latency``
    bounds the window; for instantaneous transports the ``fallback``
    (typically the fleet's ``message_delay``) bounds it instead.  A last
    resort of 1.0 covers only the degenerate case where no positive
    latency exists anywhere (job arrivals are at least one time unit
    apart) -- sub-unit edge latencies no longer fall through to it.
    """
    if edge_latencies is not None:
        positive = [float(value) for value in edge_latencies if float(value) > 0.0]
        if positive:
            return min(positive)
    window = float(transport.min_latency()) if transport is not None else 0.0
    if window <= 0.0:
        window = float(fallback)
    if window <= 0.0:
        window = 1.0
    return window


def cross_shard_edge_latencies(
    transport,
    plan: ShardPlan,
    members_of: Callable[[CubeIndex], Optional[Sequence[Hashable]]],
    *,
    limit: int = 64,
) -> List[float]:
    """Probe actual latencies over a deterministic sample of cross-shard edges.

    For each boundary cube (up to ``limit`` probes) the first member is
    paired with the first member of the nearest sibling cube owned by a
    different shard, and the transport's latency hook is evaluated on that
    edge.  Only safe for *pure* (edge-function) transports: callers must
    skip stream-coupled transports, where a probe would consume shared RNG
    draws and perturb the run.  The sample is a lower-coverage estimate --
    fine for the observational single-process lockstep windows, where the
    window length never changes the executed event order.
    """
    if transport is None:
        return []
    probes: List[float] = []
    for index in plan.boundary_cubes():
        if len(probes) >= limit:
            break
        own = plan.shard_of(index)
        senders = members_of(index)
        if not senders:
            continue
        for sibling in plan.hierarchy.siblings(index, 1):
            other = plan.shard_of_or(tuple(sibling), own)
            if other == own:
                continue
            receivers = members_of(tuple(sibling))
            if not receivers:
                continue
            try:
                probes.append(float(transport.latency(senders[0], receivers[0], None)))
            except Exception:
                return []  # exotic transport hook: fall back to min_latency
            break
    return probes


def run_lockstep(
    simulator: Simulator,
    window: float,
    *,
    mailbox: Optional[ShardMailbox] = None,
    max_events: int = 10_000_000,
    horizon: Optional[float] = None,
) -> Tuple[int, int]:
    """Drive the queue to quiescence through lockstep time windows.

    Returns ``(events executed, window barriers crossed)``.  Empty windows
    are skipped (the next barrier is the one just past the earliest pending
    event), so the barrier count measures synchronization points, not idle
    time.  Executes exactly the events ``run_until_quiescent`` would, in
    exactly the same order -- the windows only partition the timeline.

    With ``horizon`` set, barriers adapt Chandy-Misra style instead of
    sitting on a fixed grid: each window runs to ``next_event_time +
    horizon``, the earliest instant a message sent from the pending
    frontier could be delivered.  Any ``horizon >= window`` stays
    conservative (a message sent at ``t' >= next_time`` delivers at
    ``>= t' + window >= bound`` whenever ``horizon <= window``; for larger
    horizons the bound is the per-shard lookahead the caller computed), and
    quiet stretches cross one barrier instead of one per grid cell.  An
    infinite horizon degenerates to a single free-running window -- the
    lookahead optimum for a shard with no outbound boundary edges.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if horizon is not None and horizon < window:
        raise ValueError(f"horizon {horizon} must be >= window {window}")
    executed = 0
    barriers = 0
    queue = simulator.queue
    while True:
        next_time = queue.next_time()
        if next_time is None:
            break
        if horizon is not None:
            bound = next_time + horizon
        else:
            bound = (math.floor(next_time / window) + 1) * window
        while bound <= next_time:  # float-precision guard: always progress
            bound = math.nextafter(bound, math.inf)
        executed += simulator.run_window(bound, max_events=max_events - executed)
        barriers += 1
        if mailbox is not None:
            mailbox.drain_until(bound)
        if executed >= max_events and simulator.pending:
            raise RuntimeError(
                f"sharded simulation did not quiesce within {max_events} events "
                f"({simulator.pending} still pending)"
            )
    if mailbox is not None and len(mailbox):
        mailbox.drain_until(math.inf)
        barriers += 1
    return executed, barriers


# --------------------------------------------------------------------------- #
# the parallel isolated mode (multi-process workers)
# --------------------------------------------------------------------------- #


def _shard_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Module-level worker entrypoint: run one shard's sub-fleet to quiescence.

    The payload is plain picklable data (demand entries, resolved omega and
    capacity, the fleet config, the *global* window corners, the shard's
    job subsequence, a rebuildable transport description).  Harness imports
    happen lazily: distsim is a layer below the vehicle protocol and must
    not depend on it at import time.
    """
    import time as _time

    from repro.core.demand import DemandMap, Job, JobSequence
    from repro.core.online import _run_events, provision_fleet
    from repro.distsim.transport import TransportSpec
    from repro.grid.lattice import Box

    start = _time.perf_counter()
    demand = DemandMap(
        {tuple(point): value for point, value in payload["entries"]},
        dim=payload["dim"],
    )
    window = Box(tuple(payload["window_lo"]), tuple(payload["window_hi"]))
    transport = payload["transport"]
    if isinstance(transport, dict):
        transport = TransportSpec.from_json(transport).build()
    elif isinstance(transport, str):
        transport = TransportSpec(kind=transport).build()
    fleet, fleet_config, _, _ = provision_fleet(
        demand,
        omega=payload["omega"],
        capacity=payload["capacity"],
        config=payload["config"],
        transport=transport,
        window=window,
    )
    # Positions pickled straight out of valid Job objects: the trusted
    # constructors skip the per-job validation sweep, which dominates the
    # rebuild at 10^5 jobs.
    jobs = JobSequence.from_sorted(
        [
            Job.trusted(time, tuple(position), energy)
            for time, position, energy in payload["jobs"]
        ]
    )
    served = _run_events(fleet, fleet_config, jobs, 0, (), fleet.failure_plan)

    # Per-cube state segments in the worker's creation (= lex) order: the
    # coordinator re-sorts segments globally so merged travel/service sums
    # replay the single-process float-addition order exactly.
    flat = fleet.flat
    segments = []
    for index, cube_id in flat.cube_id_of.items():
        lo, hi = flat.cube_slices[cube_id]
        segments.append(
            (
                index,
                flat.identities[lo:hi],
                list(flat.travel[lo:hi]),
                list(flat.service[lo:hi]),
            )
        )
    return {
        "shard": payload["shard"],
        "jobs_total": len(jobs),
        "served": served,
        "segments": segments,
        "max_energy": fleet.max_energy_used(),
        "replacements": fleet.stats.replacements,
        "searches": fleet.stats.searches_started,
        "failed_replacements": fleet.stats.failed_replacements,
        "messages": fleet.messages_sent(),
        "heartbeat_rounds": fleet.stats.heartbeat_rounds,
        "messages_dropped": fleet.messages_dropped(),
        "messages_corrupted": fleet.messages_corrupted(),
        "events": fleet.simulator.events_processed,
        "sim_time": fleet.simulator.now,
        "vehicles": len(fleet.vehicles),
        "elapsed": _time.perf_counter() - start,
    }


def run_parallel(
    payloads: Sequence[Dict[str, Any]], *, workers: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Run one :func:`_shard_worker` per payload in a process pool.

    A single payload runs inline (no pool overhead); results come back in
    payload order regardless of completion order.
    """
    if not payloads:
        return []
    if len(payloads) == 1:
        return [_shard_worker(payloads[0])]
    import os
    from concurrent.futures import ProcessPoolExecutor

    if workers is None:
        workers = min(len(payloads), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_shard_worker, payloads))


def merge_shard_results(results: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge worker results into single-process-equivalent run measurements.

    Counters sum; clocks and maxima take the maximum; and the per-cube
    travel/service segments are concatenated in *global* lex cube order --
    the single-process creation order -- before one sequential sum, so the
    merged ``total_travel``/``total_service`` floats (and the merged
    ``vehicle_energies`` insertion order) are bit-identical to the
    unsharded run's.
    """
    segments = []
    for result in results:
        segments.extend(result["segments"])
    segments.sort(key=lambda segment: segment[0])
    total_travel = 0.0
    total_service = 0.0
    vehicle_energies: Dict[Tuple[int, ...], float] = {}
    for _index, identities, travel, service in segments:
        for identity, travel_energy, service_energy in zip(identities, travel, service):
            total_travel += travel_energy
            total_service += service_energy
            vehicle_energies[tuple(identity)] = travel_energy + service_energy
    merged = {
        "jobs_total": sum(result["jobs_total"] for result in results),
        "served": sum(result["served"] for result in results),
        "max_energy": max((result["max_energy"] for result in results), default=0.0),
        "total_travel": total_travel,
        "total_service": total_service,
        "vehicle_energies": vehicle_energies,
        "replacements": sum(result["replacements"] for result in results),
        "searches": sum(result["searches"] for result in results),
        "failed_replacements": sum(result["failed_replacements"] for result in results),
        "messages": sum(result["messages"] for result in results),
        "heartbeat_rounds": sum(result["heartbeat_rounds"] for result in results),
        "messages_dropped": sum(result["messages_dropped"] for result in results),
        "messages_corrupted": sum(result["messages_corrupted"] for result in results),
        "events": sum(result["events"] for result in results),
        "sim_time": max((result["sim_time"] for result in results), default=0.0),
        "vehicles": sum(result["vehicles"] for result in results),
        "timings": {result["shard"]: result["elapsed"] for result in results},
    }
    return merged
