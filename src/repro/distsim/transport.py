"""The pluggable message-transport layer.

Section 3.2's communication model (bidirectional links, per-link FIFO,
finite but arbitrary delays) used to be hard-wired into
:class:`~repro.distsim.network.Network`: every send scheduled an
instantaneous-or-fixed-delay delivery, which quietly turned the
"asynchronous message-passing system" the protocol is analyzed over into a
lockstep harness.  This module makes the delivery model a first-class,
swappable object:

* :class:`Transport` -- the base class.  It owns delivery scheduling on the
  simulation clock (FIFO clamping per directed link, the delivery event
  itself) and exposes three hooks -- :meth:`~Transport.latency`,
  :meth:`~Transport.drops`, :meth:`~Transport.mutate` -- that concrete
  transports override.
* :class:`ReliableTransport` -- delay zero or fixed (or a callable, the
  historical ``DelayFunction`` escape hatch).  The paper's error-free model.
* :class:`LatencyTransport` -- per-edge deterministic jitter: every directed
  link gets its own fixed latency derived from a keyed hash of
  ``(seed, sender, destination)``.  No RNG state is consumed, so delays are
  independent of send order *and* stable across processes (Python's
  ``hash()`` is salted per process; the keyed blake2b digest is not).
* :class:`DistanceLatencyTransport` -- delay growing linearly with the
  Manhattan distance between the endpoints' lattice identities: the
  physical radio model the mobility scenarios run over.
* :class:`RetransmitTransport` -- per-message ack/retransmission wrapper
  around any inner transport: up to ``retries`` re-sends, each lost
  attempt paying one ``timeout`` of extra delay, so an inner loss rate
  ``p`` becomes ``p^(retries + 1)`` end to end.
* :class:`LossyTransport` -- seeded i.i.d. message loss.  The drop stream is
  drawn from the transport's own ``numpy`` generator in send order, which is
  deterministic because every run constructs its own transport from a spec.
* :class:`CorruptingTransport` -- seeded Byzantine corruption of the Phase
  I/II protocol messages (query/reply/move): reply flags flip, destination
  and pair coordinates drift, computation tags are scrambled into phantom
  rounds.  The vehicle state machine must survive every such mutation
  legally -- the transport only ever emits well-typed messages, never
  exceptions-in-waiting.
* :class:`RandomJitterTransport` -- the historical randomized-delay model
  (uniform on ``[d/2, 3d/2]`` from a shared generator); kept for
  byte-compatibility with pre-transport runs, not spec-constructible.

:class:`TransportSpec` is the frozen, JSON-round-trippable description used
by run configs (:mod:`repro.api.config`), the workload library, and the CLI
(``--transport``): ``TransportSpec("lossy", {"loss": 0.1, "seed": 3})``
builds the same transport everywhere, which is what makes transport sweeps
cacheable and byte-identical across worker pools.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace as dataclass_replace
from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from repro.distsim.engine import Simulator

__all__ = [
    "Transport",
    "ReliableTransport",
    "LatencyTransport",
    "DistanceLatencyTransport",
    "LossyTransport",
    "CorruptingTransport",
    "RetransmitTransport",
    "RandomJitterTransport",
    "TransportSpec",
    "TRANSPORT_KINDS",
    "available_transports",
    "build_transport",
]

DelayFunction = Callable[[Hashable, Hashable, Any], float]
Deliver = Callable[[Any], None]

#: Seed salts so a transport's loss stream and corruption stream never
#: collide with the demand/failure/arrival streams of the same scenario seed.
_LOSS_SALT = 0x10E55
_CORRUPT_SALT = 0xBADB17


class Transport:
    """Owns message delivery scheduling on the simulation clock.

    The base class implements the invariants every delivery model shares --
    per-directed-link FIFO ordering (deliveries on a link never overtake one
    another, Section 3.2's "messages arrive in the order sent") and
    scheduling on the bound :class:`~repro.distsim.engine.Simulator` --
    and delegates the model itself to three hooks:

    ``latency(sender, destination, message)``
        Non-negative delivery delay for this message.
    ``drops(sender, destination, message)``
        Whether the channel loses this message.
    ``mutate(sender, destination, message)``
        The (possibly corrupted) message that actually arrives.

    A transport instance belongs to exactly one run: :meth:`bind` attaches
    it to the simulator and resets the per-link FIFO state.
    """

    #: Registry name of the transport model (overridden by subclasses).
    kind = "reliable"

    def __init__(self) -> None:
        self._simulator: Optional[Simulator] = None
        #: Time of the last scheduled delivery per directed link.
        self._last_delivery: Dict[Tuple[Hashable, Hashable], float] = {}
        self.messages_scheduled = 0
        self.messages_dropped = 0
        self.messages_corrupted = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def bind(self, simulator: Simulator) -> "Transport":
        """Attach to the simulator driving a run.

        Binding resets everything a previous run may have left behind --
        FIFO state, counters, and seeded streams -- so reusing an instance
        across runs still reproduces a fresh run bit for bit.  (The
        exception is :class:`RandomJitterTransport`, whose stream belongs
        to the caller.)
        """
        self._simulator = simulator
        self._last_delivery.clear()
        self.messages_scheduled = 0
        self.messages_dropped = 0
        self.messages_corrupted = 0
        self._reset_streams()
        return self

    def _reset_streams(self) -> None:
        """Rewind any seeded randomness to its initial state (hook)."""

    @property
    def simulator(self) -> Simulator:
        if self._simulator is None:
            raise RuntimeError(f"transport {self.kind!r} is not bound to a simulator")
        return self._simulator

    # ------------------------------------------------------------------ #
    # the model hooks
    # ------------------------------------------------------------------ #

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        """Delivery delay for one message (default: instantaneous)."""
        return 0.0

    def drops(self, sender: Hashable, destination: Hashable, message: Any) -> bool:
        """Whether the channel loses this message (default: never)."""
        return False

    def mutate(self, sender: Hashable, destination: Hashable, message: Any) -> Any:
        """The message that actually arrives (default: the one sent)."""
        return message

    # ------------------------------------------------------------------ #
    # sharding contract
    # ------------------------------------------------------------------ #

    @property
    def shardable(self) -> bool:
        """Whether per-shard instances reproduce the single-process run.

        A transport is shardable when its latency is a *pure function of
        the edge* -- no stream state consumed in global send order -- so
        splitting the fleet across independent simulators cannot perturb
        any delivery time.  Stream-coupled models (lossy, corrupting,
        shared-RNG jitter) are not: their draws depend on the interleaved
        global send sequence, which only the single-process (or lockstep)
        run produces.  Conservative default: not shardable.
        """
        return False

    def min_latency(self) -> float:
        """A lower bound on the delay of any message this transport carries.

        The sharded coordinator derives its conservative window length from
        this bound: a message sent inside a window ``[kW, (k+1)W)`` with
        ``W <= min_latency`` cannot be delivered before the next window
        barrier, so exchanging boundary traffic at barriers preserves the
        global delivery order.  The base transport is instantaneous.
        """
        return 0.0

    def stream_state(self) -> Optional[Dict[str, Any]]:
        """JSON-safe state of any keyed counter streams (hook).

        Checkpoints capture numpy generator state separately (it predates
        this hook); transports that keep *additional* stream state -- the
        per-edge message counters of the ``stream="edge"`` modes -- export
        it here so a resumed run continues every edge stream exactly where
        it stopped.  ``None`` means nothing beyond the generator state.
        """
        return None

    def restore_stream_state(self, state: Optional[Dict[str, Any]]) -> None:
        """Restore what :meth:`stream_state` exported (hook)."""

    # ------------------------------------------------------------------ #
    # delivery scheduling
    # ------------------------------------------------------------------ #

    def send(
        self, sender: Hashable, destination: Hashable, message: Any, deliver: Deliver
    ) -> bool:
        """Schedule delivery of ``message``; returns ``False`` when dropped.

        ``deliver`` is invoked with the (possibly mutated) message at the
        scheduled delivery time.  FIFO clamping guarantees deliveries on the
        same directed link execute in send order even when later messages
        draw shorter latencies.
        """
        simulator = self.simulator
        if self.drops(sender, destination, message):
            self.messages_dropped += 1
            return False
        delivered = self.mutate(sender, destination, message)
        if delivered is not message:
            self.messages_corrupted += 1
        delay = float(self.latency(sender, destination, delivered))
        if delay < 0:
            raise ValueError("message delay must be non-negative")
        link = (sender, destination)
        delivery_time = max(simulator.now + delay, self._last_delivery.get(link, 0.0))
        self._last_delivery[link] = delivery_time
        simulator.schedule_at(delivery_time, lambda: deliver(delivered), kind="message")
        self.messages_scheduled += 1
        return True

    # ------------------------------------------------------------------ #
    # batched dispatch (the reliable fixed-delay fast path)
    # ------------------------------------------------------------------ #

    def batch_latency(
        self, sender: Hashable, destinations: Any, message: Any
    ) -> Optional[float]:
        """The shared delay of a batchable broadcast, or ``None``.

        A transport may return a single non-negative delay when delivering
        ``message`` from ``sender`` to every destination (i) cannot drop,
        (ii) cannot mutate, and (iii) costs the same delay on every link --
        the network then routes the whole broadcast through one
        :meth:`send_batch` call instead of one :meth:`send` per
        destination.  The default ``None`` keeps the per-message path;
        only :class:`ReliableTransport` (the differential suites' common
        case) opts in.
        """
        return None

    def send_batch(
        self,
        sender: Hashable,
        destinations: Any,
        message: Any,
        make_deliver: Callable[[Hashable], Callable[[], None]],
        delay: float,
    ) -> None:
        """Schedule one message to many destinations in a single batch.

        Only valid after :meth:`batch_latency` returned ``delay`` for this
        broadcast (no drops, no mutation, uniform delay).  FIFO clamping
        per directed link is applied exactly as :meth:`send` does; when no
        link needs clamping -- the overwhelmingly common case -- the whole
        batch lands in one calendar-queue bucket via ``push_many_at``.
        Sequence numbers are assigned in destination order, so event
        execution is byte-identical to per-message sends.
        """
        simulator = self.simulator
        base = simulator.now + delay
        last = self._last_delivery
        queue = simulator.queue
        actions = []
        clamped = None
        for destination in destinations:
            link = (sender, destination)
            previous = last.get(link)
            if previous is not None and previous > base:
                last[link] = previous
                if clamped is None:
                    clamped = []
                clamped.append((previous, len(actions)))
            else:
                last[link] = base
            actions.append(make_deliver(destination))
        self.messages_scheduled += len(actions)
        if clamped is None:
            queue.push_many_at(base, actions, kind="message")
            return
        # Rare: some link's previous delivery lands later than this batch.
        entries = [(base, action) for action in actions]
        for time, position in clamped:
            entries[position] = (time, entries[position][1])
        queue.push_many(entries, kind="message")


class ReliableTransport(Transport):
    """Error-free delivery with a zero/fixed delay (the paper's model).

    ``delay`` may also be a callable ``(sender, destination, message) ->
    delay`` -- the historical ``DelayFunction`` form the network layer has
    always accepted.
    """

    kind = "reliable"

    def __init__(self, delay: float | DelayFunction = 0.0) -> None:
        super().__init__()
        if not callable(delay):
            delay = float(delay)  # ValueError on junk, before any comparison
            if delay < 0:
                raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        if callable(self.delay):
            return float(self.delay(sender, destination, message))
        return float(self.delay)

    def batch_latency(
        self, sender: Hashable, destinations: Any, message: Any
    ) -> Optional[float]:
        # The fixed-delay reliable channel satisfies the batch contract
        # (never drops, never mutates, uniform delay).  The ``type`` check
        # keeps subclasses that override any hook off the fast path unless
        # they opt in themselves; a callable delay may vary per link.
        if type(self) is ReliableTransport and not callable(self.delay):
            return self.delay
        return None

    @property
    def shardable(self) -> bool:
        # A fixed delay is a pure edge function; a callable may close over
        # anything (including shared state), so it stays off the shard path.
        return type(self) is ReliableTransport and not callable(self.delay)

    def min_latency(self) -> float:
        return 0.0 if callable(self.delay) else float(self.delay)


def _edge_unit(seed: int, sender: Hashable, destination: Hashable) -> float:
    """A deterministic uniform-ish value in ``[0, 1)`` per directed edge.

    Keyed blake2b over the canonical edge encoding: stable across runs,
    processes, and interpreter hash randomization (``hash()`` is not).
    The seed is folded into 64 bits, so any Python int is a valid seed.
    """
    key = (int(seed) & (2**64 - 1)).to_bytes(8, "little")
    digest = hashlib.blake2b(
        repr((sender, destination)).encode("utf-8"), key=key, digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2**64


def _edge_stream_rng(
    seed: int, salt: int, sender: Hashable, destination: Hashable, counter: int
) -> np.random.Generator:
    """The per-message generator of a per-edge keyed counter stream.

    The stream split that makes loss/corruption shardable: randomness is
    derived per ``(edge, purpose salt, seed, message counter)`` instead of
    one generator consumed in global send order.  Every directed edge lives
    inside exactly one shard (both endpoints answer at their home cubes),
    and per-edge message order is deterministic, so per-shard replay
    reproduces the single-process draws regardless of how sends from
    different edges interleave.  Keyed blake2b keeps it process-stable.
    """
    key = (int(seed) & (2**64 - 1)).to_bytes(8, "little")
    digest = hashlib.blake2b(
        repr((salt, sender, destination, counter)).encode("utf-8"),
        key=key,
        digest_size=16,
    ).digest()
    return np.random.default_rng(int.from_bytes(digest, "little"))


def _encode_edge_key(value: Any) -> Any:
    """Tuples (arbitrarily nested) -> lists, for JSON-safe stream state."""
    if isinstance(value, tuple):
        return [_encode_edge_key(item) for item in value]
    return value


def _decode_edge_key(value: Any) -> Any:
    """The inverse of :func:`_encode_edge_key` (lists -> tuples)."""
    if isinstance(value, list):
        return tuple(_decode_edge_key(item) for item in value)
    return value


class LatencyTransport(Transport):
    """Per-edge deterministic jitter: each directed link has a fixed latency.

    ``delay`` is the floor every message pays; each edge adds its own
    deterministic share of ``jitter``.  Because the latency is a pure
    function of ``(seed, sender, destination)``, no stream state is
    consumed: results do not depend on send order and are identical under
    thread or process pools.
    """

    kind = "latency"

    def __init__(self, delay: float = 0.01, jitter: float = 0.02, seed: int = 0) -> None:
        super().__init__()
        delay, jitter = float(delay), float(jitter)
        if delay < 0 or jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        self.delay = delay
        self.jitter = jitter
        self.seed = int(seed)

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        return self.delay + self.jitter * _edge_unit(self.seed, sender, destination)

    @property
    def shardable(self) -> bool:
        return True  # pure edge function: no stream consumed

    def min_latency(self) -> float:
        return self.delay


class DistanceLatencyTransport(Transport):
    """Delay growing linearly with the lattice distance between endpoints.

    ``delay`` is the per-message floor; each message additionally pays
    ``per_step`` per unit of Manhattan distance between the sender's and
    destination's identities (vehicle identities *are* lattice points).
    This is the physical radio model the mobility scenarios pair with:
    nearby chatter is cheap, cross-cube escalation traffic pays for the
    distance it covers.  Identities that are not same-dimension coordinate
    tuples (non-vehicle processes) pay only the floor.

    The latency is a pure function of the edge -- no stream state -- so
    results are independent of send order and identical under thread or
    process pools, like :class:`LatencyTransport`.
    """

    kind = "distance-latency"

    def __init__(self, delay: float = 0.005, per_step: float = 0.002) -> None:
        super().__init__()
        delay, per_step = float(delay), float(per_step)
        if delay < 0 or per_step < 0:
            raise ValueError("delay and per_step must be non-negative")
        self.delay = delay
        self.per_step = per_step

    @staticmethod
    def _lattice_distance(sender: Hashable, destination: Hashable) -> Optional[int]:
        if (
            isinstance(sender, tuple)
            and isinstance(destination, tuple)
            and len(sender) == len(destination)
            and all(isinstance(c, int) for c in sender)
            and all(isinstance(c, int) for c in destination)
        ):
            return sum(abs(a - b) for a, b in zip(sender, destination))
        return None

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        distance = self._lattice_distance(sender, destination)
        if distance is None:
            return self.delay
        return self.delay + self.per_step * distance

    @property
    def shardable(self) -> bool:
        return True  # pure edge function: no stream consumed

    def min_latency(self) -> float:
        return self.delay


class LossyTransport(Transport):
    """Seeded i.i.d. message loss on top of a fixed delay.

    ``stream`` selects how loss draws are derived:

    * ``"global"`` (the default, and the compat shim): each send consumes
      one draw from the transport's own generator, in global send order --
      deterministic per run, reproducing every pre-split hash, but *not*
      shardable (the stream couples all edges together).
    * ``"edge"``: each draw is derived per ``(edge, purpose, seed, message
      counter)`` through a keyed counter stream
      (:func:`_edge_stream_rng`).  Draws depend only on per-edge send
      order, never on cross-edge interleaving, so per-shard sub-fleets
      reproduce the single-process run bit for bit -- this is the mode the
      multi-process parallel lockstep engine requires.
    """

    kind = "lossy"

    def __init__(
        self,
        loss: float = 0.05,
        delay: float = 0.0,
        seed: int = 0,
        stream: str = "global",
    ) -> None:
        super().__init__()
        loss, delay = float(loss), float(delay)
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss probability must lie in [0, 1], got {loss}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if stream not in ("global", "edge"):
            raise ValueError(f'stream must be "global" or "edge", got {stream!r}')
        self.loss = loss
        self.delay = delay
        self.seed = int(seed)
        self.stream = stream
        self._reset_streams()

    def _reset_streams(self) -> None:
        self._rng = np.random.default_rng((self.seed, _LOSS_SALT))
        self._edge_counts: Dict[Tuple[Hashable, Hashable], int] = {}

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        return self.delay

    def drops(self, sender: Hashable, destination: Hashable, message: Any) -> bool:
        if self.stream == "edge":
            edge = (sender, destination)
            counter = self._edge_counts.get(edge, 0)
            self._edge_counts[edge] = counter + 1
            rng = _edge_stream_rng(self.seed, _LOSS_SALT, sender, destination, counter)
            return bool(rng.random() < self.loss)
        return bool(self._rng.random() < self.loss)

    @property
    def shardable(self) -> bool:
        return self.stream == "edge"  # per-edge streams: no cross-edge coupling

    def min_latency(self) -> float:
        # In global mode the loss stream is consumed in global send order
        # (not shardable), but the lockstep coordinator still windows on
        # the delay floor either way.
        return self.delay

    def stream_state(self) -> Optional[Dict[str, Any]]:
        if self.stream != "edge":
            return None
        return {
            "edge_counts": [
                [_encode_edge_key(edge), count]
                for edge, count in sorted(
                    self._edge_counts.items(), key=lambda item: repr(item[0])
                )
            ]
        }

    def restore_stream_state(self, state: Optional[Dict[str, Any]]) -> None:
        if not state:
            return
        self._edge_counts = {
            _decode_edge_key(edge): int(count)
            for edge, count in state.get("edge_counts", [])
        }


class CorruptingTransport(Transport):
    """Seeded Byzantine corruption of the Phase I/II protocol messages.

    With probability ``rate`` per message, one of three well-typed
    mutations is applied to a query/reply/move message (heartbeats and
    activation notices pass through untouched -- the adversary targets the
    replacement machinery, where corruption actually bites):

    * **flag flip** (replies): a negative answer becomes positive or vice
      versa, so initiators chase vehicles that never volunteered or give up
      on ones that did;
    * **coordinate drift** (queries/moves): one coordinate of the
      destination or pair key moves by one lattice step, possibly naming a
      vertex outside the cube -- the receiving vehicle must reject it as a
      failed replacement, not crash;
    * **phantom tag** (all three): the computation round number is shifted
      far out of range, detaching the message from its diffusing
      computation.

    Every mutation preserves the message type and field types, so the
    damage is semantic, never structural: the state machine has to survive
    it through its own legal transitions.

    ``stream`` mirrors :class:`LossyTransport`: ``"global"`` (default)
    consumes the transport's own generator in global send order --
    hash-compatible with every pre-split run; ``"edge"`` derives one fresh
    generator per ``(edge, seed, protocol-message counter)`` so corruption
    depends only on per-edge order and per-shard replay is exact.
    """

    kind = "corrupting"

    def __init__(
        self,
        rate: float = 0.05,
        delay: float = 0.0,
        seed: int = 0,
        stream: str = "global",
    ) -> None:
        super().__init__()
        rate, delay = float(rate), float(delay)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must lie in [0, 1], got {rate}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if stream not in ("global", "edge"):
            raise ValueError(f'stream must be "global" or "edge", got {stream!r}')
        self.rate = rate
        self.delay = delay
        self.seed = int(seed)
        self.stream = stream
        self._reset_streams()

    def _reset_streams(self) -> None:
        self._rng = np.random.default_rng((self.seed, _CORRUPT_SALT))
        self._edge_counts: Dict[Tuple[Hashable, Hashable], int] = {}

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        return self.delay

    def _drift_point(
        self, rng: np.random.Generator, point: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        axis = int(rng.integers(0, len(point)))
        step = 1 if rng.random() < 0.5 else -1
        return tuple(
            int(c) + (step if index == axis else 0) for index, c in enumerate(point)
        )

    def _phantom_tag(self, tag: Tuple[Hashable, int]) -> Tuple[Hashable, int]:
        initiator, round_id = tag
        return (initiator, int(round_id) + 1_000_003)

    def mutate(self, sender: Hashable, destination: Hashable, message: Any) -> Any:
        # Imported lazily: distsim is a layer below the vehicle protocol and
        # must not depend on it at import time.
        from repro.vehicles.messages import MoveMessage, QueryMessage, ReplyMessage

        if not isinstance(message, (QueryMessage, ReplyMessage, MoveMessage)):
            return message
        if self.stream == "edge":
            # One derived generator serves every draw this message needs:
            # the rate check and any mutation arms come from the same
            # per-(edge, counter) stream, untouched by other edges.
            edge = (sender, destination)
            counter = self._edge_counts.get(edge, 0)
            self._edge_counts[edge] = counter + 1
            rng = _edge_stream_rng(
                self.seed, _CORRUPT_SALT, sender, destination, counter
            )
        else:
            rng = self._rng
        if rng.random() >= self.rate:
            return message
        arm = int(rng.integers(0, 3))
        if isinstance(message, ReplyMessage):
            if arm == 0:
                return dataclass_replace(message, tag=self._phantom_tag(message.tag))
            return dataclass_replace(message, flag=not message.flag)
        if arm == 0:
            return dataclass_replace(message, tag=self._phantom_tag(message.tag))
        if arm == 1:
            return dataclass_replace(
                message, destination=self._drift_point(rng, message.destination)
            )
        return dataclass_replace(
            message, pair_key=self._drift_point(rng, message.pair_key)
        )

    @property
    def shardable(self) -> bool:
        return self.stream == "edge"  # per-edge streams: no cross-edge coupling

    def min_latency(self) -> float:
        return self.delay

    def stream_state(self) -> Optional[Dict[str, Any]]:
        if self.stream != "edge":
            return None
        return {
            "edge_counts": [
                [_encode_edge_key(edge), count]
                for edge, count in sorted(
                    self._edge_counts.items(), key=lambda item: repr(item[0])
                )
            ]
        }

    def restore_stream_state(self, state: Optional[Dict[str, Any]]) -> None:
        if not state:
            return
        self._edge_counts = {
            _decode_edge_key(edge): int(count)
            for edge, count in state.get("edge_counts", [])
        }


class RetransmitTransport(Transport):
    """Per-message ack/retransmission wrapper around any inner transport.

    Models the standard reliability layer: every message is (implicitly)
    acknowledged; a sender that hears no ack within ``timeout`` simulation
    time re-sends, up to ``retries`` times.  Semantically each attempt is
    one independent pass through the *inner* transport's loss model, so a
    message is lost only when **all** ``retries + 1`` attempts are lost --
    an inner loss rate ``p`` becomes ``p^(retries + 1)`` end to end, which
    is what lets "eventual job service" hold at loss rates far beyond what
    the monitoring timeout alone can absorb.  Each lost attempt charges one
    ``timeout`` of extra delivery delay (the ack wait), so reliability is
    paid for in latency, never bought for free.

    The wrapper composes with the hook architecture rather than scheduling
    its own events: :meth:`drops` rolls the inner loss die up to
    ``retries + 1`` times (in send order, deterministic), :meth:`mutate`
    and the delay floor delegate to the inner transport, and
    :meth:`latency` adds the retransmission waits of the attempts that
    failed.  FIFO clamping still comes from the shared base class.

    ``inner`` accepts a :class:`TransportSpec`, its JSON form, a bare kind
    name, or a ready instance; the default inner channel is lossless (the
    wrapper is then a no-op with counters).
    """

    kind = "retransmit"

    def __init__(
        self,
        inner: "Transport | TransportSpec | Mapping | str | None" = None,
        retries: int = 3,
        timeout: float = 0.5,
    ) -> None:
        super().__init__()
        if isinstance(inner, Mapping):
            inner = TransportSpec.from_json(inner)
        resolved = build_transport(inner, default=ReliableTransport)
        assert resolved is not None
        self.inner = resolved
        retries = int(retries)
        timeout = float(timeout)
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        if timeout <= 0:
            raise ValueError(f"retransmit timeout must be positive, got {timeout}")
        self.retries = retries
        self.timeout = timeout
        #: Extra attempts spent recovering lost first transmissions.
        self.retransmissions = 0
        #: Attempts the inner channel ate (including exhausted messages).
        self.attempts_lost = 0
        #: Delay surcharge of the message being scheduled (set by ``drops``,
        #: consumed by ``latency`` -- ``send`` calls the hooks in order).
        self._pending_wait = 0.0

    def _reset_streams(self) -> None:
        self.retransmissions = 0
        self.attempts_lost = 0
        self._pending_wait = 0.0
        self.inner._reset_streams()

    def drops(self, sender: Hashable, destination: Hashable, message: Any) -> bool:
        for attempt in range(self.retries + 1):
            if not self.inner.drops(sender, destination, message):
                self.retransmissions += attempt
                self.attempts_lost += attempt
                self._pending_wait = attempt * self.timeout
                return False
        self.retransmissions += self.retries
        self.attempts_lost += self.retries + 1
        self._pending_wait = 0.0
        return True

    def mutate(self, sender: Hashable, destination: Hashable, message: Any) -> Any:
        return self.inner.mutate(sender, destination, message)

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        wait, self._pending_wait = self._pending_wait, 0.0
        return wait + float(self.inner.latency(sender, destination, message))

    @property
    def shardable(self) -> bool:
        # Shardable exactly when the inner channel is: a lossless shardable
        # inner never consumes a stream through ``drops``, so the wrapper
        # adds no send-order coupling of its own.
        return self.inner.shardable

    def min_latency(self) -> float:
        return self.inner.min_latency()

    def stream_state(self) -> Optional[Dict[str, Any]]:
        return self.inner.stream_state()

    def restore_stream_state(self, state: Optional[Dict[str, Any]]) -> None:
        self.inner.restore_stream_state(state)


class RandomJitterTransport(Transport):
    """The historical randomized-delay model: uniform on ``[d/2, 3d/2]``.

    Draws come from a *shared* generator (the fleet's run RNG), exactly as
    the pre-transport network did, so existing seeded runs keep their
    byte-identical histories.  Because the generator is shared it cannot be
    described by a :class:`TransportSpec`; new experiments should prefer
    :class:`LatencyTransport`.
    """

    kind = "random-jitter"

    def __init__(self, delay: float, rng: np.random.Generator) -> None:
        super().__init__()
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = float(delay)
        self._rng = rng

    def latency(self, sender: Hashable, destination: Hashable, message: Any) -> float:
        return float(self._rng.uniform(self.delay / 2, 3 * self.delay / 2))

    def min_latency(self) -> float:
        return self.delay / 2  # uniform on [d/2, 3d/2]; never shardable


# --------------------------------------------------------------------------- #
# the spec: frozen, JSON-safe, hashable
# --------------------------------------------------------------------------- #

#: Spec-constructible transport models: kind -> (factory, allowed params).
TRANSPORT_KINDS: Dict[str, Tuple[Callable[..., Transport], Tuple[str, ...]]] = {
    "reliable": (ReliableTransport, ("delay",)),
    "latency": (LatencyTransport, ("delay", "jitter", "seed")),
    "distance-latency": (DistanceLatencyTransport, ("delay", "per_step")),
    "lossy": (LossyTransport, ("loss", "delay", "seed", "stream")),
    "corrupting": (CorruptingTransport, ("rate", "delay", "seed", "stream")),
    "retransmit": (RetransmitTransport, ("inner", "retries", "timeout")),
}


def available_transports() -> Tuple[str, ...]:
    """Spec-constructible transport kinds, sorted."""
    return tuple(sorted(TRANSPORT_KINDS))


@dataclass(frozen=True)
class TransportSpec:
    """A frozen, JSON-round-trippable description of one transport.

    ``params`` is normalized to a sorted tuple of pairs so specs are
    hashable and canonicalize identically regardless of construction order
    -- the property run-config content hashing relies on.
    """

    kind: str = "reliable"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport kind {self.kind!r}; "
                f"available: {', '.join(available_transports())}"
            )
        if isinstance(self.params, Mapping):
            items = tuple(self.params.items())
        else:
            items = tuple(tuple(pair) for pair in self.params)
        allowed = TRANSPORT_KINDS[self.kind][1]
        normalized = []
        for key, value in items:
            if key not in allowed:
                raise ValueError(
                    f"unknown parameter {key!r} for transport {self.kind!r}; "
                    f"allowed: {', '.join(allowed)}"
                )
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"transport param {key!r} is not JSON-serializable: {value!r}"
                ) from None
            normalized.append((key, value))
        normalized.sort(key=lambda pair: pair[0])
        object.__setattr__(self, "params", tuple(normalized))
        try:
            self.build()  # validate parameter values eagerly
        except TypeError as error:
            # Funnel junk-typed params (e.g. a JSON list for a float knob)
            # into the ValueError channel every caller already handles.
            raise ValueError(
                f"invalid parameters for transport {self.kind!r}: {error}"
            ) from None

    def __hash__(self) -> int:
        # The dataclass-generated hash tuples the fields, which breaks on
        # structured parameter values (e.g. retransmit's nested ``inner``
        # spec, a dict).  Hash the canonical JSON instead: equal specs
        # canonicalize identically, so the eq/hash contract holds for every
        # JSON-serializable parameter shape.
        return hash(json.dumps(self.to_json(), sort_keys=True, separators=(",", ":")))

    def params_dict(self) -> Dict[str, Any]:
        """The parameters as a plain dictionary."""
        return dict(self.params)

    def build(self) -> Transport:
        """A fresh transport instance (one per run -- transports are stateful)."""
        factory = TRANSPORT_KINDS[self.kind][0]
        return factory(**self.params_dict())

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params_dict()}

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "TransportSpec":
        return cls(
            kind=payload.get("kind", "reliable"),
            params=tuple(sorted(dict(payload.get("params", {})).items())),
        )


def build_transport(
    transport: "Transport | TransportSpec | str | None",
    *,
    default: Optional[Callable[[], Transport]] = None,
) -> Optional[Transport]:
    """Resolve any accepted transport description to an instance.

    Accepts a ready transport (returned as-is), a spec, a bare kind name
    (default parameters), or ``None`` (resolved through ``default`` when
    given).
    """
    if transport is None:
        return default() if default is not None else None
    if isinstance(transport, Transport):
        return transport
    if isinstance(transport, TransportSpec):
        return transport.build()
    if isinstance(transport, str):
        return TransportSpec(kind=transport).build()
    raise TypeError(f"not a transport, spec, or kind name: {transport!r}")
