"""CMVRP on general graphs (the thesis's Chapter 6 future-work direction).

The thesis analyzes the problem on the lattice ``Z^l`` and explicitly lists
"results for graphs in general" as an open direction.  This subpackage
extends the *offline* machinery to an arbitrary connected, unweighted or
integer-weighted graph with one vehicle and one potential customer per
node:

* :mod:`repro.graphs.metric` -- shortest-path metric, balls and
  neighborhoods ``N_r(T)`` on a graph.
* :mod:`repro.graphs.offline` -- the graph analogue of the ``omega_T``
  characterization (lower bound), a ball-restricted maximization playing
  the role of the cube restriction, a max-flow feasibility oracle, and a
  greedy planner giving an audited upper bound on the graph ``W_off``.

The online protocol is not ported: its analysis leans on the cube
partition's geometry, which is exactly the part the thesis leaves open.
"""

from repro.graphs.metric import GraphMetric
from repro.graphs.offline import (
    GraphBounds,
    graph_bounds,
    graph_greedy_plan,
    graph_min_capacity,
    graph_omega_for_nodes,
    graph_omega_star,
)

__all__ = [
    "GraphMetric",
    "GraphBounds",
    "graph_bounds",
    "graph_omega_for_nodes",
    "graph_omega_star",
    "graph_min_capacity",
    "graph_greedy_plan",
]
