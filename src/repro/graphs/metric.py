"""Shortest-path metric, balls and neighborhoods on a general graph.

On the lattice the thesis measures travel with the Manhattan metric; on a
general graph the natural analogue is the (weighted) shortest-path metric.
:class:`GraphMetric` wraps a ``networkx`` graph, caches single-source
distances on demand, and exposes the two primitives the characterization
needs: the ball ``N_r(v)`` and the neighborhood ``N_r(T)`` of a node set.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set

import networkx as nx

__all__ = ["GraphMetric"]


class GraphMetric:
    """The shortest-path metric of a connected graph.

    Parameters
    ----------
    graph:
        An undirected ``networkx`` graph.  Edge weights are read from the
        ``weight`` attribute (default 1 per edge), matching the thesis's
        "one unit of energy per edge traversed" convention when unweighted.
    """

    def __init__(self, graph: nx.Graph, *, weight: str = "weight") -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("the graph must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("the CMVRP substrate graph must be connected")
        self.graph = graph
        self.weight = weight
        self._distances: Dict[Hashable, Dict[Hashable, float]] = {}

    @property
    def nodes(self) -> List[Hashable]:
        """All nodes (every node hosts one vehicle and one potential customer)."""
        return list(self.graph.nodes)

    def __contains__(self, node: object) -> bool:
        return node in self.graph

    def distances_from(self, source: Hashable) -> Dict[Hashable, float]:
        """Single-source shortest-path distances (cached)."""
        if source not in self._distances:
            if source not in self.graph:
                raise KeyError(f"node {source!r} is not in the graph")
            self._distances[source] = dict(
                nx.single_source_dijkstra_path_length(
                    self.graph, source, weight=self.weight
                )
            )
        return self._distances[source]

    def distance(self, a: Hashable, b: Hashable) -> float:
        """Shortest-path distance between two nodes."""
        return self.distances_from(a)[b]

    def ball(self, center: Hashable, radius: float) -> Set[Hashable]:
        """All nodes within distance ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return {
            node
            for node, dist in self.distances_from(center).items()
            if dist <= radius + 1e-12
        }

    def neighborhood(self, nodes: Iterable[Hashable], radius: float) -> Set[Hashable]:
        """``N_r(T)``: nodes within distance ``radius`` of the node set."""
        result: Set[Hashable] = set()
        for node in nodes:
            result |= self.ball(node, radius)
        return result

    def neighborhood_size(self, nodes: Iterable[Hashable], radius: float) -> int:
        """``|N_r(T)|`` for a node set."""
        return len(self.neighborhood(nodes, radius))

    def distance_to_set(self, node: Hashable, nodes: Iterable[Hashable]) -> float:
        """Distance from ``node`` to the nearest member of ``nodes``."""
        return min(self.distance(node, other) for other in nodes)

    def eccentricity(self, node: Hashable) -> float:
        """Largest distance from ``node`` to any node (used for search caps)."""
        return max(self.distances_from(node).values())

    def diameter(self) -> float:
        """Graph diameter under the shortest-path metric."""
        return max(self.eccentricity(node) for node in self.graph.nodes)
