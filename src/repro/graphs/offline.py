"""The offline CMVRP characterization on a general graph.

The lower-bound side of Theorem 1.4.1 carries over verbatim to any graph:
only the vehicles of ``N_omega(T)`` can contribute energy to the nodes of
``T``, so any feasible capacity satisfies
``omega * |N_omega(T)| >= sum_{v in T} d(v)`` for every node set ``T`` and
``W_off >= max_T omega_T``.  What does *not* carry over is the cube
partition that gave the matching upper bound -- that is precisely the
thesis's open problem -- so on general graphs the upper bound reported here
is the audited capacity of an explicit greedy plan (plus a transport
relaxation via max-flow), not an analytic constant.

This module provides:

* :func:`graph_omega_for_nodes` -- solve the threshold equation for a node set;
* :func:`graph_omega_star` -- maximize over ball-shaped candidate sets (and,
  on small graphs, over all subsets of the demand support);
* :func:`graph_min_capacity` -- the value of the self-radius transport
  relaxation (program (2.8) on the graph) via binary search + max-flow;
* :func:`graph_greedy_plan` / :func:`graph_bounds` -- an audited feasible
  plan and the assembled lower/upper bound report.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.graphs.metric import GraphMetric

__all__ = [
    "graph_omega_for_nodes",
    "graph_omega_star",
    "graph_min_capacity",
    "graph_greedy_plan",
    "GraphPlan",
    "GraphBounds",
    "graph_bounds",
]

#: Cap for the exhaustive subset maximization on general graphs.
MAX_EXHAUSTIVE_SUPPORT = 14

#: Integer scaling for max-flow capacities.
FLOW_SCALE = 10**6


def _clean_demand(demand: Mapping[Hashable, float]) -> Dict[Hashable, float]:
    cleaned: Dict[Hashable, float] = {}
    for node, value in demand.items():
        value = float(value)
        if value < 0:
            raise ValueError(f"negative demand {value} at node {node!r}")
        if value > 0:
            cleaned[node] = value
    return cleaned


def graph_omega_for_nodes(
    metric: GraphMetric,
    demand: Mapping[Hashable, float],
    nodes: Iterable[Hashable],
) -> float:
    """Solve ``inf { w : w * |N_w(T)| >= sum_{v in T} d(v) }`` on the graph.

    The neighborhood size is a step function whose breakpoints are the
    distinct distances from ``T`` to the rest of the graph, so the scan
    walks those breakpoints directly (no integrality assumption on edge
    weights is needed).
    """
    node_list = list(dict.fromkeys(nodes))
    if not node_list:
        raise ValueError("omega_T is defined for non-empty node sets only")
    demand = _clean_demand(demand)
    total = sum(demand.get(node, 0.0) for node in node_list)
    if total == 0:
        return 0.0
    # Distance from every graph node to the set T.
    distances = {
        node: metric.distance_to_set(node, node_list) for node in metric.nodes
    }
    breakpoints = sorted(set(distances.values()))
    for point_index, start in enumerate(breakpoints):
        count_within = sum(1 for d in distances.values() if d <= start + 1e-12)
        end = (
            breakpoints[point_index + 1]
            if point_index + 1 < len(breakpoints)
            else math.inf
        )
        candidate = max(total / count_within, start)
        if candidate < end - 1e-12 or math.isinf(end):
            return candidate
    raise RuntimeError("unreachable: the last breakpoint always yields a solution")


def graph_omega_star(
    metric: GraphMetric,
    demand: Mapping[Hashable, float],
    *,
    exhaustive: Optional[bool] = None,
) -> float:
    """``max_T omega_T`` over candidate node sets.

    Candidates are every ball ``N_r(v)`` centered at a demand node (the
    graph analogue of the cube restriction -- balls are the sets the lower
    bound is tight on for the worked examples), the single demand nodes,
    and the full support.  When ``exhaustive`` is true (default for small
    supports) all subsets of the support are also scanned, which makes the
    result exact.
    """
    demand = _clean_demand(demand)
    support = sorted(demand, key=str)
    if not support:
        return 0.0
    if exhaustive is None:
        exhaustive = len(support) <= MAX_EXHAUSTIVE_SUPPORT

    candidates: List[Tuple[Hashable, ...]] = [tuple(support)]
    candidates.extend((node,) for node in support)
    for node in support:
        radii = sorted(set(metric.distances_from(node).values()))
        for radius in radii:
            ball = tuple(sorted(metric.ball(node, radius), key=str))
            candidates.append(ball)
    if exhaustive:
        if len(support) > MAX_EXHAUSTIVE_SUPPORT:
            raise ValueError(
                f"support of size {len(support)} too large for exhaustive subsets"
            )
        for size in range(1, len(support) + 1):
            candidates.extend(itertools.combinations(support, size))

    best = 0.0
    seen = set()
    for candidate in candidates:
        key = frozenset(candidate)
        if not key or key in seen:
            continue
        seen.add(key)
        value = graph_omega_for_nodes(metric, demand, candidate)
        if value > best:
            best = value
    return best


def _transport_feasible(
    metric: GraphMetric, demand: Dict[Hashable, float], capacity: float
) -> bool:
    """Max-flow oracle: can per-node supplies ``capacity`` cover the demand
    with transport radius ``capacity`` (travel ignored, as in LP (2.8))?"""
    total = sum(demand.values())
    if total == 0:
        return True
    if capacity <= 0:
        return False
    graph = nx.DiGraph()
    source, sink = "__source__", "__sink__"
    for target, value in demand.items():
        graph.add_edge(("d", target), sink, capacity=int(round(value * FLOW_SCALE)))
    relevant = metric.neighborhood(demand.keys(), capacity)
    for vehicle in relevant:
        reachable = [t for t in demand if metric.distance(vehicle, t) <= capacity + 1e-12]
        if not reachable:
            continue
        graph.add_edge(source, ("v", vehicle), capacity=int(round(capacity * FLOW_SCALE)))
        for target in reachable:
            graph.add_edge(("v", vehicle), ("d", target), capacity=int(round(total * FLOW_SCALE)))
    if source not in graph or sink not in graph:
        return False
    flow_value, _ = nx.maximum_flow(graph, source, sink)
    return flow_value >= int(round(total * FLOW_SCALE)) - FLOW_SCALE // 1000


def graph_min_capacity(
    metric: GraphMetric,
    demand: Mapping[Hashable, float],
    *,
    tolerance: float = 1e-3,
) -> float:
    """Value of the self-radius transport relaxation on the graph.

    This is the graph analogue of program (2.8): the smallest ``W`` such
    that every node's demand can be covered by vehicles within distance
    ``W`` each shipping at most ``W``.  It always lower-bounds the true
    ``W_off`` (travel is ignored) and, by the same argument as
    Lemma 2.2.3, equals ``max_T omega_T``.
    """
    demand = _clean_demand(demand)
    if not demand:
        return 0.0
    hi = max(max(demand.values()), 1.0)
    while not _transport_feasible(metric, demand, hi):
        hi *= 2.0
    lo = 0.0
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        if _transport_feasible(metric, demand, mid):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass
class GraphPlan:
    """A feasible assignment of demand to vehicles on the graph.

    ``routes`` maps each used vehicle (its home node) to the ordered list of
    ``(node, energy served)`` stops; energy accounting mirrors
    :class:`repro.core.plan.VehicleRoute` with shortest-path travel.
    """

    routes: Dict[Hashable, List[Tuple[Hashable, float]]]
    metric: GraphMetric

    def vehicle_energy(self, vehicle: Hashable) -> float:
        """Travel plus service energy of one vehicle's route."""
        stops = self.routes.get(vehicle, [])
        energy = 0.0
        position = vehicle
        for node, served in stops:
            energy += self.metric.distance(position, node) + served
            position = node
        return energy

    def max_vehicle_energy(self) -> float:
        """The plan's capacity requirement."""
        return max((self.vehicle_energy(v) for v in self.routes), default=0.0)

    def served(self) -> Dict[Hashable, float]:
        """Total energy delivered per node."""
        delivered: Dict[Hashable, float] = {}
        for stops in self.routes.values():
            for node, served in stops:
                delivered[node] = delivered.get(node, 0.0) + served
        return delivered

    def covers(self, demand: Mapping[Hashable, float]) -> bool:
        """Whether every node's demand is fully delivered."""
        delivered = self.served()
        return all(
            delivered.get(node, 0.0) >= value - 1e-9 for node, value in demand.items()
        )


def graph_greedy_plan(
    metric: GraphMetric,
    demand: Mapping[Hashable, float],
    capacity: float,
) -> GraphPlan:
    """Greedy nearest-vehicle plan on the graph for a given capacity."""
    demand = _clean_demand(demand)
    routes: Dict[Hashable, List[Tuple[Hashable, float]]] = {}
    if not demand or capacity <= 0:
        return GraphPlan(routes, metric)
    budget: Dict[Hashable, float] = {}
    position: Dict[Hashable, Hashable] = {}
    candidates = sorted(metric.neighborhood(demand.keys(), capacity), key=str)
    for vehicle in candidates:
        budget[vehicle] = capacity
        position[vehicle] = vehicle

    for target, required in sorted(demand.items(), key=lambda item: (-item[1], str(item[0]))):
        remaining = required
        while remaining > 1e-9:
            best = None
            best_key = None
            for vehicle in candidates:
                if budget[vehicle] <= 1e-9:
                    continue
                walk = metric.distance(position[vehicle], target)
                available = budget[vehicle] - walk
                if available <= 1e-9:
                    continue
                key = (walk, -available, str(vehicle))
                if best_key is None or key < best_key:
                    best_key = key
                    best = vehicle
            if best is None:
                break
            walk = metric.distance(position[best], target)
            serve = min(remaining, budget[best] - walk)
            budget[best] -= walk + serve
            position[best] = target
            routes.setdefault(best, []).append((target, serve))
            remaining -= serve
    return GraphPlan(routes, metric)


@dataclass(frozen=True)
class GraphBounds:
    """Lower and upper bounds on the graph ``W_off``."""

    #: ``max_T omega_T`` over the candidate sets (certified lower bound).
    omega_star: float
    #: Value of the transport relaxation (also a lower bound; should agree
    #: with ``omega_star`` up to the bisection tolerance).
    transport_relaxation: float
    #: Smallest capacity at which the greedy plan covers the demand
    #: (audited upper bound on ``W_off``).
    greedy_capacity: float

    @property
    def gap(self) -> float:
        """Upper bound over lower bound (the open-problem gap on graphs)."""
        lower = max(self.omega_star, 1e-12)
        return self.greedy_capacity / lower


def graph_bounds(
    metric: GraphMetric,
    demand: Mapping[Hashable, float],
    *,
    tolerance: float = 0.05,
) -> GraphBounds:
    """Assemble lower and audited upper bounds for a graph instance."""
    demand = _clean_demand(demand)
    if not demand:
        return GraphBounds(0.0, 0.0, 0.0)
    omega_star = graph_omega_star(metric, demand)
    relaxation = graph_min_capacity(metric, demand, tolerance=tolerance)

    def feasible(capacity: float) -> bool:
        return graph_greedy_plan(metric, demand, capacity).covers(demand)

    hi = max(max(demand.values()), 1.0)
    while not feasible(hi):
        hi *= 2.0
    lo = 0.0
    while hi - lo > tolerance * max(1.0, hi):
        mid = (lo + hi) / 2.0
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return GraphBounds(omega_star, relaxation, hi)
