"""Grid substrate for the CMVRP reproduction.

The thesis places one vehicle and one (potential) customer at every vertex
of the integer lattice ``Z^l`` with the Manhattan (L1) metric.  This
subpackage provides:

* :mod:`repro.grid.lattice` -- points, the Manhattan metric, L1 balls and
  axis-aligned boxes with exact neighborhood-cardinality computations.
* :mod:`repro.grid.regions` -- finite regions (arbitrary point sets) with
  neighborhood expansion ``N_r(T)`` and related set operations.
* :mod:`repro.grid.cubes` -- the ``ceil(w) x ... x ceil(w)`` cube partition
  used throughout Chapters 2 and 3, plus the dyadic coarsening pyramid that
  Algorithm 1 builds.
* :mod:`repro.grid.coloring` -- the chessboard coloring and the black/white
  vertex pairing of Section 3.2 used by the online protocol.
"""

from repro.grid.lattice import (
    Box,
    box_neighborhood_size,
    l1_ball,
    l1_ball_size,
    manhattan,
)
from repro.grid.regions import Region, neighborhood, neighborhood_size
from repro.grid.cubes import CubeGrid, CubeHierarchy, CoarseningPyramid, cube_partition
from repro.grid.coloring import Coloring, chessboard_color, pair_vertices

__all__ = [
    "Box",
    "box_neighborhood_size",
    "l1_ball",
    "l1_ball_size",
    "manhattan",
    "Region",
    "neighborhood",
    "neighborhood_size",
    "CubeGrid",
    "CubeHierarchy",
    "CoarseningPyramid",
    "cube_partition",
    "Coloring",
    "chessboard_color",
    "pair_vertices",
]
