"""Chessboard coloring and black/white pairing for the online protocol.

Section 3.2 colors every vertex of each cube black when the sum of its
coordinates is even and white otherwise, then pairs adjacent black/white
vertices inside each cube.  Each pair is served by a single *active*
vehicle: the active vehicle sits at one vertex of the pair and walks at most
distance 1 to serve a job arriving at either vertex of the pair.  When it
exhausts its energy, an *idle* vehicle from the same cube replaces it.

This module provides the coloring predicate and a deterministic pairing of
the vertices of a cube (or any box).  For cubes of odd size a single black
vertex may remain unpaired, exactly as the thesis allows; that vertex forms
a singleton "pair" served by its own vehicle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.grid.lattice import Box, Point

__all__ = [
    "chessboard_color",
    "pair_vertices",
    "snake_order_array",
    "pair_index_arrays",
    "Coloring",
    "Pair",
]


def chessboard_color(point: Sequence[int]) -> str:
    """Return ``"black"`` if the coordinate sum is even and ``"white"`` otherwise."""
    return "black" if sum(int(c) for c in point) % 2 == 0 else "white"


@dataclass(frozen=True)
class Pair:
    """A black/white vertex pair (or a singleton left-over black vertex).

    Attributes
    ----------
    black:
        The black vertex of the pair.
    white:
        The adjacent white vertex, or ``None`` for a singleton pair.
    """

    black: Point
    white: Point | None

    def vertices(self) -> Tuple[Point, ...]:
        """The vertices covered by this pair."""
        if self.white is None:
            return (self.black,)
        return (self.black, self.white)

    def __contains__(self, point: object) -> bool:
        return point == self.black or point == self.white


def pair_vertices(box: Box) -> List[Pair]:
    """Pair the vertices of ``box`` into adjacent black/white pairs.

    The pairing walks the box in boustrophedon (snake) order along the last
    axis, so consecutive vertices in the walk are always lattice-adjacent.
    Consecutive vertices alternate colors, so grouping the walk two-by-two
    yields adjacent opposite-color pairs; at most one vertex remains
    unpaired when the box has odd size.  Which color is the "extra" one is
    irrelevant for the protocol (the thesis simply swaps colors in that
    case), so we store the leftover vertex in the ``black`` slot.
    """
    walk = _snake_order(box)
    pairs: List[Pair] = []
    for i in range(0, len(walk) - 1, 2):
        a, b = walk[i], walk[i + 1]
        if chessboard_color(a) == "black":
            pairs.append(Pair(black=a, white=b))
        else:
            pairs.append(Pair(black=b, white=a))
    if len(walk) % 2 == 1:
        pairs.append(Pair(black=walk[-1], white=None))
    return pairs


def _snake_order(box: Box) -> List[Point]:
    """Return all points of ``box`` in a Hamiltonian-path (snake) order.

    Consecutive points of the returned list are lattice-adjacent, which is
    what makes the two-by-two grouping in :func:`pair_vertices` valid.
    The walk is computed in batch (see :func:`snake_order_array`); the list
    form is kept for the per-point callers.
    """
    return [tuple(row) for row in snake_order_array(box).tolist()]


def snake_order_array(box: Box) -> np.ndarray:
    """All points of ``box`` in snake order, as an ``(n, dim)`` int array.

    Axis-by-axis construction of the same boustrophedon walk
    :func:`_snake_order` describes recursively: starting from the walk over
    the first axis, every further axis is appended forward on even-index
    prefixes and reversed on odd-index ones, so consecutive rows stay
    lattice-adjacent.  Row ``i`` equals ``_snake_order(box)[i]`` exactly.
    """
    lo, hi = box.lo, box.hi
    out = np.arange(lo[0], hi[0] + 1, dtype=np.int64).reshape(-1, 1)
    for axis in range(1, box.dim):
        k = hi[axis] - lo[axis] + 1
        m = out.shape[0]
        prefix = np.repeat(out, k, axis=0)
        rows = np.tile(np.arange(lo[axis], hi[axis] + 1, dtype=np.int64), m).reshape(m, k)
        rows[1::2] = rows[1::2, ::-1]
        out = np.concatenate([prefix, rows.reshape(-1, 1)], axis=1)
    return out


def pair_index_arrays(
    walk: np.ndarray, parity: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """The black/white pairing of a snake walk, as index arrays.

    Given the ``(n, dim)`` snake walk of a box (typically *relative*
    coordinates, with ``parity`` carrying the coordinate-sum parity of the
    box's true lower corner), returns ``(black, white)``: for each pair, the
    walk-row index of its black and white vertex, grouped two-by-two along
    the walk exactly as :func:`pair_vertices` does.  A leftover vertex of an
    odd-sized box lands in the ``black`` slot with ``white == -1``.
    """
    n = walk.shape[0]
    m = n // 2
    a = np.arange(0, 2 * m, 2, dtype=np.int64)
    b = a + 1
    a_is_black = (walk[a].sum(axis=1) + parity) % 2 == 0
    black = np.where(a_is_black, a, b)
    white = np.where(a_is_black, b, a)
    if n % 2 == 1:
        black = np.append(black, n - 1)
        white = np.append(white, -1)
    return black, white


class Coloring:
    """The coloring-and-pairing bookkeeping for one cube of the partition.

    The online protocol needs, for any vertex, the pair it belongs to and
    the initial "home" vertex of the active vehicle serving that pair.  The
    thesis starts the active vehicle at the black vertex of each pair.
    """

    def __init__(self, cube: Box) -> None:
        self.cube = cube
        self.pairs = pair_vertices(cube)
        self._pair_of: Dict[Point, Pair] = {}
        for pair in self.pairs:
            for vertex in pair.vertices():
                self._pair_of[vertex] = pair

    @classmethod
    def from_pairs(cls, cube: Box, pairs: List[Pair]) -> "Coloring":
        """Build a coloring from an already-computed pairing.

        The batch fleet constructor computes the pairing of every cube in
        one array pass (see :mod:`repro.vehicles.registry`); this
        constructor skips the per-cube snake walk and just installs the
        lookup dict.  ``pairs`` must be the exact :func:`pair_vertices`
        pairing of ``cube`` -- callers own that invariant (the template
        unit tests pin it against the reference walk).
        """
        self = cls.__new__(cls)
        self.cube = cube
        self.pairs = pairs
        self._pair_of = {
            vertex: pair for pair in pairs for vertex in pair.vertices()
        }
        return self

    def pair_of(self, point: Sequence[int]) -> Pair:
        """Return the pair containing ``point`` (must be inside the cube)."""
        key = tuple(int(c) for c in point)
        try:
            return self._pair_of[key]
        except KeyError:
            raise ValueError(f"point {key} is not in cube {self.cube}") from None

    def initially_active(self, point: Sequence[int]) -> bool:
        """Whether the vehicle starting at ``point`` is initially active.

        The active vehicle of each pair starts at the pair's black vertex;
        a singleton pair's only vertex is also active.
        """
        pair = self.pair_of(point)
        return tuple(int(c) for c in point) == pair.black

    def serving_vertex(self, point: Sequence[int]) -> Point:
        """Return the home vertex of the vehicle responsible for ``point``."""
        return self.pair_of(point).black

    def num_pairs(self) -> int:
        """Number of pairs (including a possible singleton)."""
        return len(self.pairs)
