"""Cube partitions and the dyadic coarsening pyramid of Algorithm 1.

Lemma 2.2.5 and the online strategy of Chapter 3 both partition the lattice
into ``ceil(w) x ... x ceil(w)`` cubes and treat each cube independently:
the total demand a cube can ever require is bounded, so giving every vehicle
a constant multiple of ``omega*`` suffices and no vehicle ever has to leave
its own cube.  :class:`CubeGrid` implements that partition over a finite
window.

Algorithm 1 (Section 2.3) estimates ``W_off`` in linear time by repeatedly
doubling the cube side ``w`` and aggregating demand counts of ``2 x 2``
(generally ``2^l``) blocks of the previous level; :class:`CoarseningPyramid`
implements that aggregation pyramid exactly as written in the pseudo-code
(steps 8--9).
"""

from __future__ import annotations

import functools
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.grid.lattice import Box, Point

__all__ = ["CubeGrid", "CubeHierarchy", "CoarseningPyramid", "cube_partition"]


@dataclass(frozen=True)
class CubeGrid:
    """The partition of a finite box into axis-aligned cubes of a given side.

    Cubes are aligned to the box's lower corner.  Cubes on the high boundary
    may be clipped to the box; this matches running the algorithms on an
    ``n x n`` window where ``n`` need not be a multiple of the cube side.

    Parameters
    ----------
    box:
        The finite lattice window being partitioned.
    side:
        Number of lattice points per cube along every axis (``ceil(w)`` in
        the thesis's notation).
    """

    box: Box
    side: int

    def __post_init__(self) -> None:
        if self.side < 1:
            raise ValueError("cube side must be at least 1")

    @property
    def dim(self) -> int:
        """Dimension of the ambient lattice."""
        return self.box.dim

    @functools.cached_property
    def shape(self) -> Tuple[int, ...]:
        """Number of cubes along each axis (computed once; the grid is frozen)."""
        return tuple(
            math.ceil(length / self.side) for length in self.box.side_lengths
        )

    @property
    def num_cubes(self) -> int:
        """Total number of cubes in the partition."""
        return math.prod(self.shape)

    def cube_index(self, point: Sequence[int]) -> Tuple[int, ...]:
        """Return the multi-index of the cube containing ``point``."""
        point = tuple(int(c) for c in point)
        if point not in self.box:
            raise ValueError(f"point {point} outside the partitioned box {self.box}")
        return tuple(
            (c - l) // self.side for c, l in zip(point, self.box.lo)
        )

    def cube_box(self, index: Sequence[int]) -> Box:
        """Return the (possibly clipped) box of the cube with multi-index ``index``."""
        index = tuple(int(i) for i in index)
        if len(index) != self.dim:
            raise ValueError("index dimension mismatch")
        for i, count in zip(index, self.shape):
            if not 0 <= i < count:
                raise ValueError(f"cube index {index} out of range {self.shape}")
        lo = tuple(l + i * self.side for l, i in zip(self.box.lo, index))
        hi = tuple(
            min(l + self.side - 1, h)
            for l, h in zip(lo, self.box.hi)
        )
        return Box(lo, hi)

    def cubes(self) -> Iterator[Tuple[Tuple[int, ...], Box]]:
        """Iterate ``(multi-index, cube box)`` pairs in lexicographic order."""
        for index in itertools.product(*(range(c) for c in self.shape)):
            yield index, self.cube_box(index)

    def cube_bounds(self, indices: Sequence[Sequence[int]]) -> Tuple["np.ndarray", "np.ndarray"]:
        """Batched cube corners: ``(los, his)`` arrays for many multi-indices.

        Row ``i`` equals ``(cube_box(indices[i]).lo, cube_box(indices[i]).hi)``
        -- including the clipping of boundary cubes to the window -- computed
        in two broadcasted array operations instead of one Python loop per
        cube.  The batch fleet constructor derives every cube's geometry
        from this.
        """
        import numpy as np

        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 2 or idx.shape[1] != self.dim:
            raise ValueError("indices must be an (n, dim) array of cube multi-indices")
        shape = np.asarray(self.shape, dtype=np.int64)
        if len(idx) and ((idx < 0) | (idx >= shape)).any():
            raise ValueError(f"cube index out of range {self.shape}")
        lo = np.asarray(self.box.lo, dtype=np.int64)
        hi = np.asarray(self.box.hi, dtype=np.int64)
        los = lo + idx * self.side
        his = np.minimum(los + self.side - 1, hi)
        return los, his

    def cube_of(self, point: Sequence[int]) -> Box:
        """Return the cube box containing ``point``."""
        return self.cube_box(self.cube_index(point))

    def aggregate_demand(
        self, demand: Mapping[Point, float]
    ) -> Dict[Tuple[int, ...], float]:
        """Sum a sparse demand map per cube.

        Demands at points outside the partitioned box are rejected so that a
        silently-dropped demand can never make an infeasible instance look
        feasible.
        """
        totals: Dict[Tuple[int, ...], float] = {}
        for point, value in demand.items():
            index = self.cube_index(point)
            totals[index] = totals.get(index, 0.0) + float(value)
        return totals

    def max_cube_demand(self, demand: Mapping[Point, float]) -> float:
        """Return the largest per-cube demand total (0 for empty demand)."""
        totals = self.aggregate_demand(demand)
        return max(totals.values(), default=0.0)


def cube_partition(box: Box, side: int) -> CubeGrid:
    """Convenience constructor mirroring the thesis phrase
    "partition the grid into ``ceil(w)``-cubes"."""
    return CubeGrid(box=box, side=side)


class CubeHierarchy:
    """The dyadic cube hierarchy over a :class:`CubeGrid` partition.

    Level 0 is the base partition itself; a *level-k cube* is the union of
    a ``2^k x ... x 2^k`` dyadic block of base cubes (clipped to the
    window), exactly the coarsening geometry of Algorithm 1's pyramid but
    over cube *indices* instead of demand counts.  The hierarchy gives the
    online protocol a deterministic escalation geometry: when a Phase I
    replacement search exhausts its own base cube, it widens to the
    sibling base cubes inside the level-1 ancestor, then to the base cubes
    newly covered by the level-2 ancestor, and so on until the top-level
    cube covers the whole window.

    All enumeration orders are lexicographic over multi-indices, so every
    vehicle derives the same escalation sequence locally -- no coordination
    messages are needed to agree on where a search widens next.
    """

    def __init__(self, grid: CubeGrid) -> None:
        self.grid = grid
        #: Levels above the base partition: the smallest ``L`` with
        #: ``2^L >= max axis cube count``, so the level-``L`` ancestor of
        #: any base cube covers the entire partitioned window.
        self.levels = max(
            (count - 1).bit_length() for count in grid.shape
        )

    @property
    def dim(self) -> int:
        """Dimension of the underlying partition."""
        return self.grid.dim

    def _check_index(self, index: Sequence[int]) -> Tuple[int, ...]:
        index = tuple(int(i) for i in index)
        if len(index) != self.dim:
            raise ValueError("cube index dimension mismatch")
        for i, count in zip(index, self.grid.shape):
            if not 0 <= i < count:
                raise ValueError(f"cube index {index} out of range {self.grid.shape}")
        return index

    def ancestor(self, index: Sequence[int], level: int) -> Tuple[int, ...]:
        """Multi-index of the level-``level`` cube containing base cube ``index``."""
        index = self._check_index(index)
        if not 0 <= level <= self.levels:
            raise ValueError(f"level must lie in [0, {self.levels}], got {level}")
        return tuple(i >> level for i in index)

    def ancestors_array(self, indices, level: int):
        """Vectorized :meth:`ancestor` over an ``(n, dim)`` index array.

        Validates the whole batch at once and returns the ``(n, dim)``
        int64 array of level-``level`` ancestor multi-indices.  This is
        the bulk path shard planning uses: grouping ``10^5`` cubes one
        ``ancestor()`` call at a time is pure Python overhead.
        """
        import numpy as np

        if not 0 <= level <= self.levels:
            raise ValueError(f"level must lie in [0, {self.levels}], got {level}")
        array = np.asarray(indices, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != self.dim:
            raise ValueError("cube index dimension mismatch")
        if array.size and (
            (array < 0).any() or (array >= np.asarray(self.grid.shape)).any()
        ):
            raise ValueError("cube index out of range")
        return array >> level

    def level_box(self, index: Sequence[int], level: int) -> Box:
        """The (clipped) lattice box of the level-``level`` ancestor of ``index``."""
        base = self.ancestor(index, level)
        side = self.grid.side << level
        lo = tuple(l + i * side for l, i in zip(self.grid.box.lo, base))
        hi = tuple(min(l + side - 1, h) for l, h in zip(lo, self.grid.box.hi))
        return Box(lo, hi)

    def children(self, index: Sequence[int], level: int) -> List[Tuple[int, ...]]:
        """Base-cube multi-indices covered by the level-``level`` ancestor of
        ``index``, in lexicographic order (clipped to the partition)."""
        base = self.ancestor(index, level)
        ranges = [
            range(i << level, min((i + 1) << level, count))
            for i, count in zip(base, self.grid.shape)
        ]
        return [tuple(combo) for combo in itertools.product(*ranges)]

    def siblings(self, index: Sequence[int], level: int) -> List[Tuple[int, ...]]:
        """The *escalation ring* at ``level``: base cubes newly reachable when
        a search widens from the level-``level - 1`` ancestor to the
        level-``level`` ancestor of ``index``.

        These are exactly the base cubes inside the level-``level``
        ancestor but outside the level-``level - 1`` ancestor, in
        lexicographic order.  The union of the rings over
        ``level = 1 .. levels`` plus the base cube itself is the whole
        partition, with no overlaps -- the property that makes escalation
        both exhaustive and non-redundant.
        """
        index = self._check_index(index)
        if not 1 <= level <= max(self.levels, 1):
            raise ValueError(f"level must lie in [1, {max(self.levels, 1)}], got {level}")
        inner = self.ancestor(index, min(level - 1, self.levels))
        shift = min(level - 1, self.levels)
        return [
            child
            for child in self.children(index, min(level, self.levels))
            if tuple(i >> shift for i in child) != inner
        ]

    def escalation_order(self, index: Sequence[int]) -> List[List[Tuple[int, ...]]]:
        """Per-level escalation rings for base cube ``index`` (levels 1..top)."""
        return [self.siblings(index, level) for level in range(1, self.levels + 1)]


class CoarseningPyramid:
    """The dyadic demand-aggregation pyramid built by Algorithm 1.

    Level 1 stores the raw per-vertex demand ``d_1(i, j) = d(i, j)`` over an
    ``n x ... x n`` window with ``n`` a power of two.  Level ``w = 2^k``
    stores per-cube demand totals for the partition into ``w``-cubes,
    computed by summing ``2^l`` children of level ``w/2`` -- exactly steps
    8--9 of Algorithm 1.  Building the full pyramid costs
    ``O(n^l (1 + 2^-l + 4^-l + ...)) = O(n^l)`` additions, which is the
    linear-time claim of Section 2.3.
    """

    def __init__(self, box: Box, demand: Mapping[Point, float]) -> None:
        sides = set(box.side_lengths)
        if len(sides) != 1:
            raise ValueError(f"Algorithm 1 requires a cubic window, got {box.side_lengths}")
        n = sides.pop()
        if n < 1 or (n & (n - 1)) != 0:
            raise ValueError(f"Algorithm 1 requires n to be a power of two, got {n}")
        self.box = box
        self.n = n
        self.dim = box.dim
        base: Dict[Tuple[int, ...], float] = {}
        for point, value in demand.items():
            point = tuple(int(c) for c in point)
            if point not in box:
                raise ValueError(f"demand at {point} lies outside the window {box}")
            index = tuple(c - l for c, l in zip(point, box.lo))
            base[index] = base.get(index, 0.0) + float(value)
        #: ``levels[k]`` maps a cube multi-index to its demand total at cube
        #: side ``2^k``; level 0 is the raw demand.
        self.levels: List[Dict[Tuple[int, ...], float]] = [base]

    @property
    def max_level(self) -> int:
        """The deepest level built so far (cube side ``2^max_level``)."""
        return len(self.levels) - 1

    @property
    def top_side(self) -> int:
        """Cube side of the deepest level built so far."""
        return 1 << self.max_level

    def coarsen(self) -> Dict[Tuple[int, ...], float]:
        """Build (or return) the next level by summing ``2^l`` children.

        Returns the newly built level's sparse cube-demand dictionary.
        Raises ``ValueError`` when the pyramid already reached a single cube
        covering the whole window.
        """
        if self.top_side >= self.n:
            raise ValueError("pyramid already coarsened to the full window")
        parent: Dict[Tuple[int, ...], float] = {}
        for index, value in self.levels[-1].items():
            coarse_index = tuple(i // 2 for i in index)
            parent[coarse_index] = parent.get(coarse_index, 0.0) + value
        self.levels.append(parent)
        return parent

    def level_for_side(self, side: int) -> Dict[Tuple[int, ...], float]:
        """Return the per-cube demand totals for cube side ``side`` (a power
        of two), coarsening lazily as needed."""
        if side < 1 or (side & (side - 1)) != 0:
            raise ValueError(f"cube side must be a power of two, got {side}")
        if side > self.n:
            raise ValueError(f"cube side {side} exceeds window side {self.n}")
        level = side.bit_length() - 1
        while self.max_level < level:
            self.coarsen()
        return self.levels[level]

    def max_cube_demand(self, side: int) -> float:
        """Largest per-cube demand total at the given cube side."""
        level = self.level_for_side(side)
        return max(level.values(), default=0.0)
