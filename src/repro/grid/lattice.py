"""Points, the Manhattan metric, L1 balls and boxes on the lattice ``Z^l``.

Throughout the reproduction a *point* is a tuple of Python integers whose
length is the lattice dimension ``l``.  Using plain tuples keeps points
hashable (so they can key dictionaries of demands, vehicles, flows, ...)
and keeps the substrate dependency-free.

The thesis measures distance with the Manhattan (rectilinear, L1) norm and
defines the radius-``r`` neighborhood of a point or set as every lattice
point within L1 distance ``r``.  The radius may be any non-negative real;
because the lattice is integral only ``floor(r)`` matters for membership.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence, Tuple

Point = Tuple[int, ...]

__all__ = [
    "Point",
    "manhattan",
    "chebyshev",
    "l1_ball",
    "l1_ball_size",
    "Box",
    "box_neighborhood_size",
    "bounding_box",
    "effective_radius",
]


def manhattan(p: Sequence[int], q: Sequence[int]) -> int:
    """Return the Manhattan (L1) distance between two lattice points.

    >>> manhattan((0, 0), (2, -3))
    5
    """
    if len(p) != len(q):
        raise ValueError(f"dimension mismatch: {len(p)} vs {len(q)}")
    return sum(abs(a - b) for a, b in zip(p, q))


def chebyshev(p: Sequence[int], q: Sequence[int]) -> int:
    """Return the Chebyshev (L-infinity) distance between two lattice points.

    Used by the cube partition: two points share a ``c x ... x c`` cube only
    if their Chebyshev distance is below ``c``.
    """
    if len(p) != len(q):
        raise ValueError(f"dimension mismatch: {len(p)} vs {len(q)}")
    return max(abs(a - b) for a, b in zip(p, q))


def effective_radius(r: float) -> int:
    """Return the integer radius that determines L1-ball membership.

    Membership ``||x - y|| <= r`` on the integer lattice only depends on
    ``floor(r)`` for ``r >= 0``.  Negative radii are rejected.
    """
    if r < 0:
        raise ValueError(f"radius must be non-negative, got {r}")
    return int(math.floor(r))


def l1_ball(center: Sequence[int], r: float) -> Iterator[Point]:
    """Yield every lattice point within L1 distance ``r`` of ``center``.

    Points are produced in deterministic lexicographic order of their offset
    so that downstream algorithms (e.g. the constructive plan of
    Lemma 2.2.5) are reproducible.
    """
    radius = effective_radius(r)
    center = tuple(int(c) for c in center)
    dim = len(center)
    if dim == 0:
        yield ()
        return

    def _rec(prefix: Tuple[int, ...], remaining: int, axes_left: int) -> Iterator[Point]:
        if axes_left == 1:
            for d in range(-remaining, remaining + 1):
                yield prefix + (center[dim - 1] + d,)
            return
        axis = dim - axes_left
        for d in range(-remaining, remaining + 1):
            yield from _rec(prefix + (center[axis] + d,), remaining - abs(d), axes_left - 1)

    yield from _rec((), radius, dim)


@lru_cache(maxsize=4096)
def l1_ball_size(dim: int, r: float) -> int:
    """Return ``|N_r(x)|`` -- the number of lattice points in an L1 ball.

    Uses the standard identity
    ``|B_1^dim(k)| = sum_{i=0..min(dim,k)} 2^i C(dim,i) C(k,i)``
    which counts points by the number ``i`` of non-zero coordinates.
    """
    if dim < 0:
        raise ValueError("dimension must be non-negative")
    k = effective_radius(r)
    total = 0
    for i in range(0, min(dim, k) + 1):
        total += (2**i) * math.comb(dim, i) * math.comb(k, i)
    return total


def bounding_box(points: Iterable[Sequence[int]]) -> "Box":
    """Return the smallest :class:`Box` containing ``points``.

    Raises ``ValueError`` on an empty iterable.
    """
    points = [tuple(int(c) for c in p) for p in points]
    if not points:
        raise ValueError("cannot take the bounding box of an empty point set")
    dim = len(points[0])
    lo = [min(p[i] for p in points) for i in range(dim)]
    hi = [max(p[i] for p in points) for i in range(dim)]
    return Box(tuple(lo), tuple(hi))


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lo_1, hi_1] x ... x [lo_l, hi_l]`` in ``Z^l``.

    Boxes model the finite windows we carve out of the infinite lattice: the
    support of a demand map, the ``n x n`` grid Algorithm 1 runs on, and the
    individual cubes of the Lemma 2.2.5 partition.
    """

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have the same dimension")
        if any(a > b for a, b in zip(self.lo, self.hi)):
            raise ValueError(f"empty box: lo={self.lo} hi={self.hi}")
        object.__setattr__(self, "lo", tuple(int(c) for c in self.lo))
        object.__setattr__(self, "hi", tuple(int(c) for c in self.hi))

    @property
    def dim(self) -> int:
        """Dimension ``l`` of the ambient lattice."""
        return len(self.lo)

    @property
    def side_lengths(self) -> Tuple[int, ...]:
        """Number of lattice points along each axis."""
        return tuple(h - l + 1 for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Total number of lattice points contained in the box."""
        return math.prod(self.side_lengths)

    def __contains__(self, point: object) -> bool:
        if not isinstance(point, tuple) or len(point) != self.dim:
            return False
        return all(l <= int(c) <= h for c, l, h in zip(point, self.lo, self.hi))

    def __iter__(self) -> Iterator[Point]:
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        return iter(itertools.product(*ranges))

    def points(self) -> Iterator[Point]:
        """Iterate all lattice points in the box (lexicographic order)."""
        return iter(self)

    def center(self) -> Point:
        """Return an (integer) center point of the box."""
        return tuple((l + h) // 2 for l, h in zip(self.lo, self.hi))

    def distance_to(self, point: Sequence[int]) -> int:
        """Manhattan distance from ``point`` to the box (0 if inside)."""
        if len(point) != self.dim:
            raise ValueError("dimension mismatch")
        dist = 0
        for c, l, h in zip(point, self.lo, self.hi):
            if c < l:
                dist += l - c
            elif c > h:
                dist += c - h
        return dist

    def expand(self, r: float) -> "Box":
        """Return the box expanded by ``floor(r)`` along every axis.

        This is the bounding box of ``N_r(box)`` (the true L1 neighborhood is
        a subset of it; use :func:`box_neighborhood_size` for its exact
        cardinality).
        """
        k = effective_radius(r)
        return Box(
            tuple(l - k for l in self.lo),
            tuple(h + k for h in self.hi),
        )

    def intersect(self, other: "Box") -> "Box | None":
        """Return the intersection box, or ``None`` if disjoint."""
        if self.dim != other.dim:
            raise ValueError("dimension mismatch")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(a > b for a, b in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return all(a <= b for a, b in zip(self.lo, other.lo)) and all(
            a >= b for a, b in zip(self.hi, other.hi)
        )

    @staticmethod
    def cube(corner: Sequence[int], side: int) -> "Box":
        """Return the axis-aligned cube with lowest corner ``corner`` and
        ``side`` lattice points along every axis."""
        if side < 1:
            raise ValueError("cube side must be at least 1")
        corner = tuple(int(c) for c in corner)
        return Box(corner, tuple(c + side - 1 for c in corner))

    @staticmethod
    def centered_cube(center: Sequence[int], half_side: int) -> "Box":
        """Return the cube ``[c - half_side, c + half_side]^l``."""
        if half_side < 0:
            raise ValueError("half_side must be non-negative")
        center = tuple(int(c) for c in center)
        return Box(
            tuple(c - half_side for c in center),
            tuple(c + half_side for c in center),
        )


def box_neighborhood_size(box: Box, r: float) -> int:
    """Return ``|N_r(box)|`` -- the exact number of lattice points within L1
    distance ``r`` of an axis-aligned box.

    The L1 distance from a point ``y`` to the box decomposes as a sum of
    per-axis distances ``g_i(y_i)``, so the neighborhood cardinality is the
    number of integer vectors whose per-axis distances sum to at most
    ``floor(r)``.  Per axis there are ``side_i`` coordinates at distance 0
    and exactly 2 coordinates at every distance ``t >= 1``.  A small dynamic
    program over axes counts the combinations exactly.
    """
    k = effective_radius(r)
    sides = box.side_lengths
    # counts[t] = number of lattice points with per-axis-distance profile summing to exactly t
    counts = [0] * (k + 1)
    counts[0] = 1
    for side in sides:
        new_counts = [0] * (k + 1)
        for t in range(k + 1):
            if counts[t] == 0:
                continue
            # this axis contributes distance 0 with `side` choices
            new_counts[t] += counts[t] * side
            # or distance d >= 1 with 2 choices each
            for d in range(1, k - t + 1):
                new_counts[t + d] += counts[t] * 2
        counts = new_counts
    return sum(counts)
