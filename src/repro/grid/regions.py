"""Finite regions of the lattice and their L1 neighborhoods ``N_r(T)``.

The characterization of ``W_off`` (Theorem 1.4.1) is stated in terms of the
neighborhood ``N_r(T) = {y : exists x in T, ||x - y|| <= r}`` of arbitrary
subsets ``T`` of the lattice.  This module provides a small, hashable
:class:`Region` wrapper around finite point sets together with exact
neighborhood expansion and cardinality routines.

For arbitrary regions the neighborhood is computed by an explicit union of
L1 balls (a multi-source BFS would be asymptotically similar on the
lattice).  For axis-aligned boxes the cardinality is obtained in closed
form via :func:`repro.grid.lattice.box_neighborhood_size`, which is what
the cube-restricted characterizations (Corollaries 2.2.6 and 2.2.7) rely
on for efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, Sequence, Set

from repro.grid.lattice import (
    Box,
    Point,
    bounding_box,
    box_neighborhood_size,
    effective_radius,
    l1_ball,
    manhattan,
)

__all__ = ["Region", "neighborhood", "neighborhood_size"]

#: Safety cap on explicitly enumerated neighborhoods.  The exhaustive-subset
#: routines are only used on small instances (tests, LP cross-checks); this
#: cap turns an accidental huge expansion into a clear error instead of an
#: out-of-memory situation.
MAX_ENUMERATED_NEIGHBORHOOD = 5_000_000


def neighborhood(points: Iterable[Sequence[int]], r: float) -> Set[Point]:
    """Return the set ``N_r(T)`` for a finite point set ``T``.

    >>> sorted(neighborhood([(0, 0)], 1))
    [(-1, 0), (0, -1), (0, 0), (0, 1), (1, 0)]
    """
    radius = effective_radius(r)
    result: Set[Point] = set()
    pts = [tuple(int(c) for c in p) for p in points]
    if not pts:
        return result
    estimated = len(pts) * (2 * radius + 1) ** len(pts[0])
    if estimated > MAX_ENUMERATED_NEIGHBORHOOD and radius > 0:
        raise ValueError(
            "neighborhood enumeration too large "
            f"(|T|={len(pts)}, r={radius}); use box-based routines instead"
        )
    for p in pts:
        result.update(l1_ball(p, radius))
    return result


def neighborhood_size(points: Iterable[Sequence[int]], r: float) -> int:
    """Return ``|N_r(T)|`` for a finite point set ``T`` by explicit union."""
    return len(neighborhood(points, r))


@dataclass(frozen=True)
class Region:
    """An immutable finite subset ``T`` of the lattice ``Z^l``.

    Regions are hashable so that ``omega_T`` values can be cached per region
    and so regions can be used as dictionary keys in experiment reports.
    """

    points: FrozenSet[Point] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        pts = frozenset(tuple(int(c) for c in p) for p in self.points)
        if pts:
            dims = {len(p) for p in pts}
            if len(dims) != 1:
                raise ValueError(f"points of mixed dimensions: {sorted(dims)}")
        object.__setattr__(self, "points", pts)

    @staticmethod
    def from_points(points: Iterable[Sequence[int]]) -> "Region":
        """Build a region from any iterable of points."""
        return Region(frozenset(tuple(int(c) for c in p) for p in points))

    @staticmethod
    def from_box(box: Box) -> "Region":
        """Build a region containing every lattice point of ``box``."""
        return Region(frozenset(box.points()))

    @property
    def dim(self) -> int:
        """Dimension of the ambient lattice (raises on the empty region)."""
        if not self.points:
            raise ValueError("empty region has no dimension")
        return len(next(iter(self.points)))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(sorted(self.points))

    def __contains__(self, point: object) -> bool:
        return point in self.points

    def is_empty(self) -> bool:
        """Whether the region contains no points."""
        return not self.points

    def bounding_box(self) -> Box:
        """Smallest axis-aligned box containing the region."""
        return bounding_box(self.points)

    def is_box(self) -> bool:
        """Whether the region is exactly the point set of its bounding box."""
        if not self.points:
            return False
        return len(self.points) == self.bounding_box().size

    def neighborhood(self, r: float) -> Set[Point]:
        """Return ``N_r(T)`` as an explicit point set."""
        return neighborhood(self.points, r)

    def neighborhood_size(self, r: float) -> int:
        """Return ``|N_r(T)|``.

        Uses the exact closed-form box computation when the region is a full
        box (the case the cube characterization needs), and explicit
        enumeration otherwise.
        """
        if self.is_empty():
            return 0
        if self.is_box():
            return box_neighborhood_size(self.bounding_box(), r)
        return neighborhood_size(self.points, r)

    def distance_to(self, point: Sequence[int]) -> int:
        """Manhattan distance from ``point`` to the nearest region point."""
        if self.is_empty():
            raise ValueError("distance to an empty region is undefined")
        return min(manhattan(point, p) for p in self.points)

    def union(self, other: "Region") -> "Region":
        """Set union of two regions."""
        return Region(self.points | other.points)

    def intersection(self, other: "Region") -> "Region":
        """Set intersection of two regions."""
        return Region(self.points & other.points)

    def difference(self, other: "Region") -> "Region":
        """Set difference ``self \\ other``."""
        return Region(self.points - other.points)

    def translate(self, offset: Sequence[int]) -> "Region":
        """Return the region translated by an integer offset vector."""
        off = tuple(int(c) for c in offset)
        return Region(
            frozenset(tuple(a + b for a, b in zip(p, off)) for p in self.points)
        )
