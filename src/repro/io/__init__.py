"""Serialization helpers (JSON round-trips for workloads, plans, results)."""

from repro.io.atomic import atomic_write_json, atomic_write_text
from repro.io.serialize import (
    demand_from_json,
    demand_to_json,
    jobs_from_json,
    jobs_to_json,
    load_json,
    plan_from_json,
    plan_to_json,
    save_json,
)

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "demand_to_json",
    "demand_from_json",
    "jobs_to_json",
    "jobs_from_json",
    "plan_to_json",
    "plan_from_json",
    "save_json",
    "load_json",
]
