"""Atomic file writes: temp-file-then-rename, so readers never see torn files.

The service harness rewrites its live-state file on a cadence while an
external dashboard polls it, and checkpoints must never be half-written if
the process dies mid-write.  POSIX ``rename(2)`` within one filesystem is
atomic, so the pattern is: write the full payload to a uniquely named
temporary file *in the destination directory* (same filesystem), flush and
fsync it, then ``os.replace`` it over the destination.  A concurrent reader
observes either the old complete file or the new complete file -- never a
prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

__all__ = ["atomic_write_text", "atomic_write_json"]

PathLike = Union[str, Path]


def atomic_write_text(text: str, path: PathLike) -> None:
    """Write ``text`` to ``path`` atomically (write-temp-then-rename).

    The temporary file lives in the destination's directory so the final
    ``os.replace`` never crosses a filesystem boundary (cross-device renames
    are not atomic).  On any failure the temporary file is removed and the
    destination is left untouched.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    descriptor, temp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(directory)
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_json(payload: Any, path: PathLike, *, indent: int = 2) -> None:
    """Serialize ``payload`` as JSON and write it atomically.

    Keys are sorted so repeated writes of equal payloads are byte-identical
    (the artifacts stay diff-able, matching :func:`repro.io.serialize.save_json`).
    """
    atomic_write_text(json.dumps(payload, indent=indent, sort_keys=True), path)
