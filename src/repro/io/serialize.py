"""JSON round-trips for demand maps, job sequences, and service plans.

Experiments save their inputs and outputs so runs can be archived and
re-audited; keeping the format as plain JSON (points as lists, demands as
pairs) makes the artifacts diff-able and independent of Python pickling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.demand import DemandMap, Job, JobSequence
from repro.core.plan import ServicePlan, VehicleRoute
from repro.io.atomic import atomic_write_json

__all__ = [
    "demand_to_json",
    "demand_from_json",
    "jobs_to_json",
    "jobs_from_json",
    "plan_to_json",
    "plan_from_json",
    "run_config_to_json",
    "run_config_from_json",
    "run_result_to_json",
    "run_result_from_json",
    "save_json",
    "load_json",
]

PathLike = Union[str, Path]


def demand_to_json(demand: DemandMap) -> Dict[str, Any]:
    """Serialize a demand map to a JSON-compatible dictionary."""
    return {
        "type": "demand_map",
        "dim": demand.dim,
        "entries": [[list(point), value] for point, value in demand.items()],
    }


def demand_from_json(payload: Dict[str, Any]) -> DemandMap:
    """Rebuild a demand map from :func:`demand_to_json` output."""
    if payload.get("type") != "demand_map":
        raise ValueError("payload is not a serialized demand map")
    entries = {tuple(point): value for point, value in payload["entries"]}
    return DemandMap(entries, dim=payload["dim"])


def jobs_to_json(jobs: JobSequence) -> Dict[str, Any]:
    """Serialize a job sequence."""
    return {
        "type": "job_sequence",
        "jobs": [
            {"time": job.time, "position": list(job.position), "energy": job.energy}
            for job in jobs
        ],
    }


def jobs_from_json(payload: Dict[str, Any]) -> JobSequence:
    """Rebuild a job sequence from :func:`jobs_to_json` output."""
    if payload.get("type") != "job_sequence":
        raise ValueError("payload is not a serialized job sequence")
    return JobSequence(
        [
            Job(time=entry["time"], position=tuple(entry["position"]), energy=entry["energy"])
            for entry in payload["jobs"]
        ]
    )


def plan_to_json(plan: ServicePlan) -> Dict[str, Any]:
    """Serialize a service plan."""
    return {
        "type": "service_plan",
        "dim": plan.dim,
        "metadata": dict(plan.metadata),
        "routes": [
            {
                "start": list(route.start),
                "stops": [[list(position), energy] for position, energy in route.stops],
            }
            for route in plan.routes
        ],
    }


def plan_from_json(payload: Dict[str, Any]) -> ServicePlan:
    """Rebuild a service plan from :func:`plan_to_json` output."""
    if payload.get("type") != "service_plan":
        raise ValueError("payload is not a serialized service plan")
    plan = ServicePlan(dim=payload["dim"], metadata=dict(payload.get("metadata", {})))
    for route in payload["routes"]:
        plan.add(
            VehicleRoute(
                start=tuple(route["start"]),
                stops=tuple((tuple(position), energy) for position, energy in route["stops"]),
            )
        )
    return plan


def run_config_to_json(config: "Any") -> Dict[str, Any]:
    """Serialize a :class:`repro.api.config.RunConfig` (delegates to the API)."""
    return config.to_json()


def run_config_from_json(payload: Dict[str, Any]) -> "Any":
    """Rebuild a :class:`repro.api.config.RunConfig` from its JSON form.

    The import is deferred to the call so this module never depends on the
    API package's import order (the schema itself is owned by
    :mod:`repro.api.config`; these helpers just round out the io surface).
    """
    from repro.api.config import RunConfig

    return RunConfig.from_json(payload)


def run_result_to_json(result: "Any") -> Dict[str, Any]:
    """Serialize a :class:`repro.api.result.RunResult`."""
    return result.to_json()


def run_result_from_json(payload: Dict[str, Any]) -> "Any":
    """Rebuild a :class:`repro.api.result.RunResult` from its JSON form."""
    from repro.api.result import RunResult

    return RunResult.from_json(payload)


def save_json(payload: Dict[str, Any], path: PathLike) -> None:
    """Write a JSON payload to disk (pretty-printed, stable key order).

    The write is atomic (temp-file-then-rename via :mod:`repro.io.atomic`),
    so a concurrent reader or a crash mid-write never leaves a torn file.
    """
    atomic_write_json(payload, path)


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON payload from disk."""
    return json.loads(Path(path).read_text())
