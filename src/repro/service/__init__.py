"""The long-lived service harness: streaming arrivals over the fleet.

This package turns the batch online harness into a service that can run a
million-job stream in constant memory:

* :class:`~repro.service.stream.StreamDriver` -- bounded look-ahead
  scheduling over a lazy job iterator (the batch per-job service logic is
  shared, so finite streams are byte-identical to ``run_online``).
* :class:`~repro.service.metrics.MetricsRecorder` -- per-window records
  plus a whole-run rollup equal to the batch totals by construction.
* :mod:`~repro.service.checkpoint` -- versioned snapshots at clean event
  boundaries; resume-at-T equals the uninterrupted run exactly.
* :class:`~repro.service.state_store.LiveStateStore` -- the atomically
  rewritten live-state file and the append-only milestone log.
* :func:`~repro.service.harness.run_service` /
  :func:`~repro.service.harness.resume_service` -- the composition, driven
  by an :class:`~repro.api.service.ServiceConfig`.
"""

from repro.api.service import ServiceConfig, ServiceResult
from repro.service.checkpoint import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    capture_checkpoint,
    fleet_digest,
    load_checkpoint,
    rotated_checkpoint_path,
    save_checkpoint,
    save_rotated_checkpoint,
)
from repro.service.harness import resume_service, run_service
from repro.service.metrics import LatencyDigest, MetricsRecorder
from repro.service.state_store import LiveStateStore, build_state
from repro.service.stream import StreamDriver

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "LatencyDigest",
    "LiveStateStore",
    "MetricsRecorder",
    "ServiceConfig",
    "ServiceResult",
    "StreamDriver",
    "build_state",
    "capture_checkpoint",
    "fleet_digest",
    "load_checkpoint",
    "resume_service",
    "run_service",
    "save_checkpoint",
    "save_rotated_checkpoint",
    "rotated_checkpoint_path",
]
