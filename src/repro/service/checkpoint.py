"""Versioned snapshots of a running service: capture, save, load, restore.

A checkpoint is taken only at a *clean boundary* (all events strictly
before the next arrival executed, nothing transient pending -- see
:meth:`repro.service.stream.StreamDriver.at_clean_point`), which is what
keeps the format small and exact:

* The calendar queue holds only arrival and churn events, both of which
  are *re-derived* (pending arrivals from the snapshot's job list, churn
  from the embedded config minus the applied set) rather than serialized
  as live events.  Re-pushing them onto a fresh queue in the original
  order reproduces their relative sequence numbers, and the queue's
  statistics are overwritten afterwards so ``events_processed`` continues
  exactly as in an uninterrupted run.
* The transport's FIFO clamp (``_last_delivery``) is dropped: at a clean
  point every recorded delivery time is ``<= now``, so the clamp
  ``max(now + delay, last)`` can never bind for any future send.
* All protocol state lives in the fleet: flat registry arrays in full,
  per-vehicle protocol fields sparsely (only vehicles that diverge from
  their constructed state), plus the pair registry, cube residency, and
  counters.  The restored fleet is *bit-identical* to the captured one,
  which the differential suite asserts end-to-end (resume-at-T equals
  uninterrupted).

JSON keeps every float exact (``repr`` round-trip), so "byte-identical"
means exactly that, not "close".
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.demand import Job
from repro.distsim.failures import ChurnSpec
from repro.io.serialize import load_json, save_json
from repro.vehicles.fleet import Fleet
from repro.vehicles.registry import WATCH_NEVER, WATCH_NONE
from repro.vehicles.state import TransferState, WorkingState

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "capture_checkpoint",
    "save_checkpoint",
    "save_rotated_checkpoint",
    "rotated_checkpoint_path",
    "load_checkpoint",
    "restore_fleet_state",
    "restore_transport_state",
    "fleet_digest",
]

CHECKPOINT_SCHEMA = "repro.service/checkpoint"
CHECKPOINT_VERSION = 1

_WORKING_BY_CODE = {0: WorkingState.IDLE, 1: WorkingState.ACTIVE, 2: WorkingState.DONE}


def _tag_to_json(tag: Tuple[Any, int]) -> List[Any]:
    return [list(tag[0]), int(tag[1])]


def _tag_from_json(raw: Any) -> Tuple[Any, int]:
    return (tuple(raw[0]), int(raw[1]))


# --------------------------------------------------------------------- #
# fleet state
# --------------------------------------------------------------------- #


def _vehicle_entry(fleet: Fleet, index: int, vehicle) -> Dict[str, Any]:
    """The sparse protocol-state record of one vehicle (empty = untouched)."""
    entry: Dict[str, Any] = {}
    if vehicle.jobs_served:
        entry["jobs_served"] = vehicle.jobs_served
    if vehicle.engaged_tag is not None:
        entry["engaged_tag"] = _tag_to_json(vehicle.engaged_tag)
    if vehicle.last_tag is not None:
        entry["last_tag"] = _tag_to_json(vehicle.last_tag)
    if vehicle.parent is not None:
        entry["parent"] = list(vehicle.parent)
    if vehicle.child is not None:
        entry["child"] = list(vehicle.child)
    if vehicle.deficit:
        entry["deficit"] = vehicle.deficit
    if vehicle.initiated:
        entry["initiated"] = [
            [_tag_to_json(tag), [list(info["destination"]), list(info["pair_key"])]]
            for tag, info in vehicle.initiated.items()
        ]
    if vehicle.last_heard:
        entry["last_heard"] = [
            [list(pair), round_id] for pair, round_id in vehicle.last_heard.items()
        ]
    if vehicle._engaged_tag_seen is not None:
        entry["engaged_tag_seen"] = _tag_to_json(vehicle._engaged_tag_seen)
    if vehicle._engaged_rounds:
        entry["engaged_rounds"] = vehicle._engaged_rounds
    if vehicle.adopted_pairs:
        entry["adopted_pairs"] = [list(p) for p in vehicle.adopted_pairs]
    if vehicle.escalations:
        entry["escalations"] = [
            [
                _tag_to_json(tag),
                {
                    "rings": [[list(m) for m in ring] for ring in esc["rings"]],
                    "level": esc["level"],
                    "pending": esc["pending"],
                    "candidates": [
                        [bool(spare), list(identity), list(pos) if pos else None]
                        for spare, identity, pos in esc["candidates"]
                    ],
                    "rounds": esc["rounds"],
                },
            ]
            for tag, esc in vehicle.escalations.items()
        ]
    if vehicle.status.transfer != TransferState.WAITING:
        entry["transfer"] = vehicle.status.transfer.value
    if vehicle._gossip_counter:
        entry["gossip_counter"] = vehicle._gossip_counter
    if vehicle.gossip_reports:
        entry["gossip_reports"] = [
            [
                list(pair),
                [[list(reporter), round_id] for reporter, round_id in sorted(reporters.items())],
            ]
            for pair, reporters in sorted(vehicle.gossip_reports.items())
        ]
    if vehicle.pending_suspicions:
        entry["pending_suspicions"] = [
            [
                list(pair),
                {
                    "granted": [list(g) for g in sorted(pending["granted"])],
                    "round": pending["round"],
                },
            ]
            for pair, pending in sorted(vehicle.pending_suspicions.items())
        ]
    original_pair = fleet.flat.pair_keys[fleet.flat.vehicle_pair[index]]
    if vehicle.pair_key != original_pair:
        # Takeovers may have rehomed the vehicle; its communication graph
        # was computed from the position it held *at rehoming time* and
        # cannot be re-derived from the drifted current position, so the
        # residency is serialized verbatim.
        entry["residency"] = {
            "cube_index": list(vehicle.cube_index),
            "neighbors": [list(n) for n in vehicle.neighbors],
            "cube_peers": [list(p) for p in vehicle.cube_peers],
        }
    return entry


def _fleet_state(fleet: Fleet) -> Dict[str, Any]:
    flat = fleet.flat
    vehicles: Dict[str, Any] = {}
    pair_live: List[int] = []
    for index, identity in enumerate(flat.identities):
        vehicle = fleet.vehicles[identity]
        pair_live.append(
            flat.pair_id_of[vehicle.pair_key] if vehicle.pair_key is not None else -1
        )
        entry = _vehicle_entry(fleet, index, vehicle)
        if entry:
            vehicles[str(index)] = entry
    return {
        "travel": list(flat.travel),
        "service": list(flat.service),
        "state": list(flat.state),
        "broken": list(flat.broken),
        "watch": list(flat.watch),
        "positions": [list(p) for p in flat.positions],
        "pair_live": pair_live,
        "registry": [
            [list(pair), list(identity)] for pair, identity in sorted(fleet.registry.items())
        ],
        "cube_members": [
            [list(index), [list(m) for m in members]]
            for index, members in sorted(fleet._cube_members.items())
        ],
        "stats": dataclasses.asdict(fleet.stats),
        "computation_round": fleet._computation_round,
        "heartbeat_round": fleet._heartbeat_round,
        "monitoring_baseline": fleet.monitoring_baseline,
        "crash_rounds": [
            [list(pair), round_id] for pair, round_id in sorted(fleet._crash_rounds.items())
        ],
        "detection_digest": fleet.detection_digest.to_json(),
        "vehicles": vehicles,
    }


def restore_fleet_state(fleet: Fleet, payload: Dict[str, Any]) -> None:
    """Overlay a captured fleet state onto a freshly constructed fleet."""
    from array import array

    flat = fleet.flat
    flat.travel[:] = array("d", payload["travel"])
    flat.service[:] = array("d", payload["service"])
    flat.state[:] = array("b", payload["state"])
    flat.broken[:] = array("b", payload["broken"])
    flat.watch[:] = array("q", payload["watch"])
    flat.positions[:] = [tuple(p) for p in payload["positions"]]

    pair_live = payload["pair_live"]
    for index, identity in enumerate(flat.identities):
        vehicle = fleet.vehicles[identity]
        # Direct field writes: the status dataclass validates *transitions*,
        # not states, and the registry arrays were already restored above
        # (the observer that mirrors them must not fire twice).
        vehicle.status.working = _WORKING_BY_CODE[flat.state[index]]
        vehicle.status.transfer = TransferState.WAITING
        vehicle.broken = bool(flat.broken[index])
        vehicle.pair_key = (
            flat.pair_keys[pair_live[index]] if pair_live[index] >= 0 else None
        )
        vehicle._monitored_pair = (
            flat.pair_keys[flat.watch[index]] if flat.watch[index] >= 0 else None
        )
        vehicle.jobs_served = 0
        vehicle.engaged_tag = None
        vehicle.last_tag = None
        vehicle.parent = None
        vehicle.child = None
        vehicle.deficit = 0
        vehicle.initiated = {}
        vehicle.last_heard = {}
        vehicle._engaged_tag_seen = None
        vehicle._engaged_rounds = 0
        vehicle.adopted_pairs = []
        vehicle.escalations = {}
        vehicle._gossip_counter = 0
        vehicle.gossip_reports = {}
        vehicle.pending_suspicions = {}

    for index_str, entry in payload["vehicles"].items():
        vehicle = fleet.vehicles[flat.identities[int(index_str)]]
        vehicle.jobs_served = entry.get("jobs_served", 0)
        if "engaged_tag" in entry:
            vehicle.engaged_tag = _tag_from_json(entry["engaged_tag"])
        if "last_tag" in entry:
            vehicle.last_tag = _tag_from_json(entry["last_tag"])
        if "parent" in entry:
            vehicle.parent = tuple(entry["parent"])
        if "child" in entry:
            vehicle.child = tuple(entry["child"])
        vehicle.deficit = entry.get("deficit", 0)
        if "initiated" in entry:
            vehicle.initiated = {
                _tag_from_json(tag): {
                    "destination": tuple(info[0]),
                    "pair_key": tuple(info[1]),
                }
                for tag, info in entry["initiated"]
            }
        if "last_heard" in entry:
            vehicle.last_heard = {
                tuple(pair): round_id for pair, round_id in entry["last_heard"]
            }
        if "engaged_tag_seen" in entry:
            vehicle._engaged_tag_seen = _tag_from_json(entry["engaged_tag_seen"])
        vehicle._engaged_rounds = entry.get("engaged_rounds", 0)
        if "adopted_pairs" in entry:
            vehicle.adopted_pairs = [tuple(p) for p in entry["adopted_pairs"]]
        if "escalations" in entry:
            vehicle.escalations = {
                _tag_from_json(tag): {
                    "rings": [[tuple(m) for m in ring] for ring in esc["rings"]],
                    "level": esc["level"],
                    "pending": esc["pending"],
                    "candidates": [
                        (spare, tuple(identity), tuple(pos) if pos else None)
                        for spare, identity, pos in esc["candidates"]
                    ],
                    "rounds": esc["rounds"],
                }
                for tag, esc in entry["escalations"]
            }
        if "transfer" in entry:
            vehicle.status.transfer = TransferState(entry["transfer"])
        vehicle._gossip_counter = entry.get("gossip_counter", 0)
        if "gossip_reports" in entry:
            vehicle.gossip_reports = {
                tuple(pair): {
                    tuple(reporter): round_id for reporter, round_id in reporters
                }
                for pair, reporters in entry["gossip_reports"]
            }
        if "pending_suspicions" in entry:
            vehicle.pending_suspicions = {
                tuple(pair): {
                    "granted": {tuple(g) for g in pending["granted"]},
                    "round": pending["round"],
                }
                for pair, pending in entry["pending_suspicions"]
            }
        if "residency" in entry:
            residency = entry["residency"]
            vehicle.cube_index = tuple(residency["cube_index"])
            vehicle.coloring = fleet.colorings[vehicle.cube_index]
            vehicle.neighbors = [tuple(n) for n in residency["neighbors"]]
            vehicle.cube_peers = [tuple(p) for p in residency["cube_peers"]]

    # The engaged set and the watch-heard mirror are not serialized (the
    # snapshot format predates them); both are pure functions of the
    # restored per-vehicle state, so rebuild them deterministically.
    flat.engaged.clear()
    for index, identity in enumerate(flat.identities):
        vehicle = fleet.vehicles[identity]
        if (
            vehicle._engaged_tag is not None
            or vehicle.escalations
            or vehicle._engaged_rounds
            or vehicle._engaged_tag_seen is not None
        ):
            flat.engaged.add(index)
        monitored = vehicle._monitored_pair
        flat.watch_heard[index] = (
            WATCH_NONE
            if monitored is None
            else vehicle.last_heard.get(monitored, WATCH_NEVER)
        )

    fleet.registry.clear()
    fleet.registry.update(
        (tuple(pair), tuple(identity)) for pair, identity in payload["registry"]
    )
    fleet._cube_members.clear()
    fleet._cube_members.update(
        (tuple(index), [tuple(m) for m in members])
        for index, members in payload["cube_members"]
    )
    for name, value in payload["stats"].items():
        setattr(fleet.stats, name, value)
    fleet._computation_round = payload["computation_round"]
    fleet._heartbeat_round = payload["heartbeat_round"]
    fleet.monitoring_baseline = payload["monitoring_baseline"]
    fleet._crash_rounds = {
        tuple(pair): round_id for pair, round_id in payload.get("crash_rounds", ())
    }
    if "detection_digest" in payload:
        from repro.service.metrics import LatencyDigest

        fleet.detection_digest = LatencyDigest.from_json(payload["detection_digest"])


def fleet_digest(fleet: Fleet) -> str:
    """SHA-256 over the fleet's complete captured state.

    Two runs have equal digests iff their physical *and* protocol state is
    byte-identical -- the strongest equality the differential suite checks.
    """
    text = json.dumps(_fleet_state(fleet), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# transport / rng state
# --------------------------------------------------------------------- #


def _transport_state(transport) -> Optional[Dict[str, Any]]:
    if transport is None:
        return None
    payload: Dict[str, Any] = {
        "kind": transport.kind,
        "messages_scheduled": transport.messages_scheduled,
        "messages_dropped": transport.messages_dropped,
        "messages_corrupted": transport.messages_corrupted,
    }
    rng = getattr(transport, "_rng", None)
    if isinstance(rng, np.random.Generator):
        payload["rng"] = rng.bit_generator.state
    for name in ("retransmissions", "attempts_lost"):
        if hasattr(transport, name):
            payload[name] = getattr(transport, name)
    streams = transport.stream_state() if hasattr(transport, "stream_state") else None
    if streams is not None:
        payload["streams"] = streams
    inner = getattr(transport, "inner", None)
    if inner is not None:
        payload["inner"] = _transport_state(inner)
    return payload


def restore_transport_state(transport, payload: Optional[Dict[str, Any]]) -> None:
    """Overlay captured transport counters/streams onto a fresh transport."""
    if transport is None or payload is None:
        return
    if payload["kind"] != transport.kind:
        raise ValueError(
            f"snapshot transport kind {payload['kind']!r} does not match "
            f"the rebuilt {transport.kind!r}"
        )
    transport.messages_scheduled = payload["messages_scheduled"]
    transport.messages_dropped = payload["messages_dropped"]
    transport.messages_corrupted = payload["messages_corrupted"]
    rng = getattr(transport, "_rng", None)
    if isinstance(rng, np.random.Generator) and "rng" in payload:
        rng.bit_generator.state = payload["rng"]
    for name in ("retransmissions", "attempts_lost"):
        if name in payload and hasattr(transport, name):
            setattr(transport, name, payload[name])
    if "streams" in payload and hasattr(transport, "restore_stream_state"):
        transport.restore_stream_state(payload["streams"])
    inner = getattr(transport, "inner", None)
    if inner is not None:
        restore_transport_state(inner, payload.get("inner"))


# --------------------------------------------------------------------- #
# the snapshot
# --------------------------------------------------------------------- #


def capture_checkpoint(
    config,
    driver,
    *,
    rng: Optional[np.random.Generator] = None,
    recorder=None,
) -> Dict[str, Any]:
    """Snapshot a service run at a clean boundary (see module docstring)."""
    fleet = driver.fleet
    simulator = fleet.simulator
    plan = fleet.failure_plan
    stats = simulator.queue.stats
    payload: Dict[str, Any] = {
        "schema": CHECKPOINT_SCHEMA,
        "version": CHECKPOINT_VERSION,
        "config": config.to_json(),
        "clock": simulator.now,
        "jobs": {
            "consumed": driver.consumed,
            "dispatched": driver.dispatched,
            "served": driver.served,
        },
        "pending_arrivals": [
            [index, job.time, list(job.position), job.energy]
            for index, job in driver.pending_arrivals()
        ],
        "churn_applied": [
            [spec.time, list(spec.vertex), spec.action]
            for spec in sorted(
                driver.churn_applied, key=lambda c: (c.time, c.vertex, c.action)
            )
        ],
        "event_stats": {
            "scheduled": stats.scheduled,
            "executed": stats.executed,
            "cancelled_skipped": stats.cancelled_skipped,
        },
        "network": {
            "messages_sent": fleet.network.messages_sent,
            "messages_delivered": fleet.network.messages_delivered,
            "messages_dropped": fleet.network.messages_dropped,
        },
        "transport": _transport_state(fleet.network.transport),
        "rng": rng.bit_generator.state if rng is not None else None,
        "failure_plan": {
            "crashed": sorted([list(p) for p in plan.crashed]),
            "initiation_suppressed": sorted(
                [list(p) for p in plan.initiation_suppressed]
            ),
            "dropped_count": plan.dropped_count,
            "partition_dropped_count": plan.partition_dropped_count,
            "clock": plan.clock,
            "byzantine_watchers": sorted(
                [list(p) for p in plan.byzantine_watchers]
            ),
        },
        "fleet": _fleet_state(fleet),
    }
    if recorder is not None:
        payload["metrics"] = recorder.state_to_json()
    return payload


def save_checkpoint(payload: Dict[str, Any], path) -> None:
    """Write a snapshot atomically (:func:`repro.io.serialize.save_json`)."""
    save_json(payload, path)


def rotated_checkpoint_path(path, ordinal: int) -> Path:
    """The rotation slot for the snapshot taken after window ``ordinal``.

    ``checkpoint.json`` at window 12 becomes ``checkpoint.w00000012.json``;
    the zero-padded ordinal makes lexicographic order equal numeric order,
    which is what keeps pruning deterministic.
    """
    path = Path(path)
    return path.with_name(f"{path.stem}.w{ordinal:08d}{path.suffix}")


def save_rotated_checkpoint(payload: Dict[str, Any], path, *, ordinal: int, keep: int) -> Path:
    """Write a snapshot to its rotation slot and prune older slots.

    The latest snapshot is *also* written to ``path`` itself, so every
    resume flow that points at the un-numbered path keeps working; the
    numbered siblings retain the last ``keep`` snapshots for resuming
    from an older point (e.g. after a corrupted latest write).  Ordinals
    are the recorder's window index -- monotonic across resumed legs, so
    a resumed run rotates into fresh slots instead of colliding with the
    previous leg's files.
    """
    if keep < 1:
        raise ValueError(f"keep must be at least 1, got {keep}")
    path = Path(path)
    slot = rotated_checkpoint_path(path, ordinal)
    save_json(payload, slot)
    save_json(payload, path)
    pattern = f"{path.stem}.w????????{path.suffix}"
    slots = sorted(path.parent.glob(pattern))
    for stale in slots[: max(0, len(slots) - keep)]:
        stale.unlink()
    return slot


def load_checkpoint(source) -> Dict[str, Any]:
    """Load and validate a snapshot (a path, or an already-parsed payload)."""
    payload = source if isinstance(source, dict) else load_json(source)
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise ValueError(f"not a service checkpoint: schema {payload.get('schema')!r}")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return payload


def pending_jobs_from_json(payload: Dict[str, Any]) -> List[Tuple[int, Job]]:
    """The snapshot's scheduled-but-not-dispatched arrivals, as ``(index, Job)``."""
    return [
        (index, Job(time=time, position=tuple(position), energy=energy))
        for index, time, position, energy in payload["pending_arrivals"]
    ]


def churn_applied_from_json(payload: Dict[str, Any]) -> set:
    """The already-applied churn specs recorded in a snapshot."""
    return {
        ChurnSpec(time=time, vertex=tuple(vertex), action=action)
        for time, vertex, action in payload["churn_applied"]
    }
