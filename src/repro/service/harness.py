"""``run_service`` / ``resume_service``: the long-lived service harness.

Composes the streaming driver, the windowed metrics recorder, the
checkpoint writer and the live-state store around one fleet:

* Jobs come from any iterable (possibly infinite); only a bounded
  look-ahead is ever scheduled, and per-process message logs are disabled,
  so memory is independent of stream length.
* The metrics recorder closes a window every ``config.window_jobs``
  arrivals at the driver's inter-arrival control points; each closed
  window optionally appends to a JSONL file, refreshes the atomically
  rewritten live-state file, and -- every ``config.checkpoint_every``
  windows -- arms a checkpoint, written at the next *clean* boundary
  (no transient protocol events pending).
* ``resume_service(snapshot, jobs)`` rebuilds the fleet from the config
  embedded in the snapshot, overlays the captured state, and continues.
  The caller passes the *original* job stream; the harness skips the
  consumed prefix itself (``itertools.islice``).  A resumed run is
  byte-identical to the uninterrupted one -- same final
  ``ServiceResult.result_hash()``, including the full-fleet digest --
  which the differential suite asserts.

None of the plumbing perturbs the simulation: metrics only read counters,
checkpoints happen between events, and the state store writes from the
control callback while the event queue is paused at an exact boundary.
"""

from __future__ import annotations

import itertools
import json
import logging
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, TextIO, Union

import numpy as np

from repro.api.service import ServiceConfig, ServiceResult
from repro.core.omega import omega_c, omega_star_cubes
from repro.core.online import provision_fleet
from repro.distsim.sharding import ShardMailbox, ShardMonitor, ShardPlan
from repro.distsim.transport import build_transport
from repro.service.checkpoint import (
    capture_checkpoint,
    churn_applied_from_json,
    fleet_digest,
    load_checkpoint,
    save_rotated_checkpoint,
    pending_jobs_from_json,
    restore_fleet_state,
    restore_transport_state,
    save_checkpoint,
)
from repro.service.metrics import MetricsRecorder
from repro.service.state_store import LiveStateStore, build_state
from repro.service.stream import StreamDriver

__all__ = ["run_service", "resume_service"]

_LOG = logging.getLogger("repro.distsim.sharding")


class _Interrupted(Exception):
    """Internal: ``stop_after_checkpoints`` reached; unwind to the harness."""


def _provision(config: ServiceConfig, *, apply_dead: bool):
    demand = config.demand()
    omega = config.omega if config.omega is not None else omega_c(demand)
    if omega <= 0:
        raise ValueError("omega must be positive for a service run")
    omega_star = omega_star_cubes(demand).omega
    rng = np.random.default_rng(config.seed) if config.seed is not None else None
    fleet, fleet_config, provisioned, theorem_capacity = provision_fleet(
        demand,
        omega=omega,
        capacity=config.capacity,
        config=config.fleet_config(),
        rng=rng,
        failure_plan=config.failure_plan(),
        dead_vehicles=config.dead_vehicles if apply_dead and config.dead_vehicles else None,
        transport=build_transport(config.transport),
    )
    # A service run is unbounded in job count; per-process message logs
    # grow with traffic, so they are the one diagnostic we turn off.
    for vehicle in fleet.vehicles.values():
        vehicle.log_messages = False
    return fleet, fleet_config, rng, float(omega), omega_star, provisioned, theorem_capacity


def run_service(
    config: ServiceConfig,
    jobs: Iterable[Any],
    *,
    duration: Optional[float] = None,
    metrics_path: Optional[Union[str, Path]] = None,
    state_path: Optional[Union[str, Path]] = None,
    log_path: Optional[Union[str, Path]] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    keep_checkpoints: Optional[int] = None,
    stop_after_checkpoints: Optional[int] = None,
    snapshot: Optional[Union[str, Path, Dict[str, Any]]] = None,
) -> ServiceResult:
    """Run (or continue) the fleet as a service over a job stream.

    Parameters
    ----------
    jobs:
        Iterable of :class:`~repro.core.demand.Job` with strictly increasing
        times.  Always the *full* stream, even when resuming -- the harness
        skips the snapshot's consumed prefix itself.
    duration:
        Stop dispatching once the next arrival would fire after this
        simulation time (pairs with infinite streams).
    metrics_path:
        Append each closed metrics window (and a final rollup record) as
        one JSON line.  Opened in append mode so a resumed run continues
        the same file.
    state_path / log_path:
        The live-state file (atomically rewritten every window) and the
        append-only milestone log.
    checkpoint_path:
        Where checkpoints go (atomically replaced each time); requires
        ``config.checkpoint_every``.
    keep_checkpoints:
        Rotate instead of replace: keep the last K snapshots as numbered
        siblings of ``checkpoint_path`` (``snap.w00000004.json`` for the
        window-4 snapshot) with deterministic pruning, while the plain
        path still tracks the latest.  Any retained slot resumes the run.
    stop_after_checkpoints:
        Stop the run right after writing this many checkpoints -- the
        deterministic stand-in for "the process was killed": the returned
        result has ``interrupted=True`` and the snapshot on disk resumes
        the run.
    snapshot:
        A checkpoint payload or path to continue from (usually via
        :func:`resume_service`).  Must have been taken under an identical
        config.
    """
    if keep_checkpoints is not None and keep_checkpoints < 1:
        raise ValueError(f"keep_checkpoints must be at least 1, got {keep_checkpoints}")
    resumed = snapshot is not None
    if resumed:
        snapshot = load_checkpoint(snapshot)
        snap_config = ServiceConfig.from_json(snapshot["config"])
        # ``shards`` is an execution detail (observational on a service run):
        # a checkpoint taken under N shards may resume under M shards and
        # still reach the same result_hash / fleet_digest, so the identity
        # check compares the configs with the shard count normalized away.
        if snap_config.replace(shards=config.shards).config_hash() != config.config_hash():
            raise ValueError(
                "snapshot was taken under a different service config "
                f"({snap_config.config_hash()[:12]} != {config.config_hash()[:12]})"
            )

    fleet, fleet_config, rng, omega, omega_star, provisioned, theorem_capacity = _provision(
        config, apply_dead=not resumed
    )
    plan = fleet.failure_plan

    shard_monitor: Optional[ShardMonitor] = None
    if config.shards > 1:
        # Satellite-2 transparency: serve is always single-clock lockstep
        # (the streaming driver serializes execution), so say so.
        _LOG.info(
            "run_service shards=%d mode=lockstep "
            "(streaming driver serializes execution on one clock)",
            config.shards,
        )
        # The streaming driver already serializes execution on one clock, so
        # sharding a service run is pure observation: classify every send
        # against the cube shard plan and ledger the boundary traffic.  The
        # physical run -- and hence result_hash/fleet_digest -- is untouched.
        shard_plan = ShardPlan(
            fleet.hierarchy, config.shards, cubes=list(fleet.flat.cube_id_of)
        )
        shard_monitor = ShardMonitor(
            shard_plan, fleet.cube_grid.cube_index, fleet.simulator, ShardMailbox()
        )
        fleet.network.shard_monitor = shard_monitor

    metrics_handle: Optional[TextIO] = None
    if metrics_path is not None:
        metrics_handle = open(metrics_path, "a", encoding="utf-8")

    def emit(record: Dict[str, Any]) -> None:
        if metrics_handle is not None:
            metrics_handle.write(json.dumps(record, sort_keys=True) + "\n")

    recorder = MetricsRecorder(
        fleet,
        window_jobs=config.window_jobs,
        omega_star=omega_star,
        keep=config.keep_windows,
        emit=emit,
    )
    store = LiveStateStore(state_path, log_path)

    start_consumed = 0
    pending: Any = ()
    churn_applied = None
    served_before = 0
    if resumed:
        fleet.simulator.clock.advance(snapshot["clock"])
        restore_fleet_state(fleet, snapshot["fleet"])
        restore_transport_state(fleet.network.transport, snapshot["transport"])
        network = snapshot["network"]
        fleet.network.messages_sent = network["messages_sent"]
        fleet.network.messages_delivered = network["messages_delivered"]
        fleet.network.messages_dropped = network["messages_dropped"]
        if rng is not None and snapshot["rng"] is not None:
            rng.bit_generator.state = snapshot["rng"]
        plan_state = snapshot["failure_plan"]
        plan.crashed = {tuple(p) for p in plan_state["crashed"]}
        plan.initiation_suppressed = {
            tuple(p) for p in plan_state["initiation_suppressed"]
        }
        plan.dropped_count = plan_state["dropped_count"]
        plan.partition_dropped_count = plan_state["partition_dropped_count"]
        plan.clock = plan_state["clock"]
        plan.byzantine_watchers = {
            tuple(p) for p in plan_state.get("byzantine_watchers", ())
        }
        if "metrics" in snapshot:
            recorder.restore_state(snapshot["metrics"])
        start_consumed = snapshot["jobs"]["consumed"]
        served_before = snapshot["jobs"]["served"]
        pending = pending_jobs_from_json(snapshot)
        churn_applied = churn_applied_from_json(snapshot)
        jobs = itertools.islice(iter(jobs), start_consumed, None)

    progress = {"checkpoints": 0, "checkpoint_due": False, "barriers": 0}

    def control(driver: StreamDriver) -> None:
        if shard_monitor is not None:
            # The driver pauses at an exact inter-arrival boundary here, so
            # this is the service run's window barrier: exchange (drain) the
            # boundary ledger, keeping its memory bounded on infinite streams.
            if shard_monitor.mailbox.drain_until(fleet.simulator.now):
                progress["barriers"] += 1
        closed = recorder.maybe_close_window(force=driver.finished)
        if closed is not None:
            store.log_event(
                "window_closed",
                window=closed["window"],
                clock=fleet.simulator.now,
                jobs=closed["jobs"],
                served=closed["served"],
            )
            if (
                checkpoint_path is not None
                and config.checkpoint_every is not None
                and recorder.window_index % config.checkpoint_every == 0
            ):
                progress["checkpoint_due"] = True
        if (
            progress["checkpoint_due"]
            and not driver.finished
            and driver.at_clean_point()
        ):
            payload = capture_checkpoint(config, driver, rng=rng, recorder=recorder)
            if keep_checkpoints is not None:
                save_rotated_checkpoint(
                    payload,
                    checkpoint_path,
                    ordinal=recorder.window_index,
                    keep=keep_checkpoints,
                )
            else:
                save_checkpoint(payload, checkpoint_path)
            progress["checkpoints"] += 1
            progress["checkpoint_due"] = False
            store.log_event(
                "checkpoint_written",
                clock=fleet.simulator.now,
                path=str(checkpoint_path),
                jobs_dispatched=driver.dispatched,
            )
            if (
                stop_after_checkpoints is not None
                and progress["checkpoints"] >= stop_after_checkpoints
            ):
                raise _Interrupted()
        if closed is not None or driver.finished:
            store.write_state(
                build_state(
                    fleet,
                    driver,
                    recorder,
                    checkpoints_written=progress["checkpoints"],
                    config_hash=config.config_hash(),
                )
            )

    def on_primed(driver: StreamDriver) -> None:
        # The snapshot's event statistics already count the re-pushed churn
        # and pending arrivals; overwriting here (before the look-ahead
        # refills) makes every subsequent count accrue exactly as in the
        # uninterrupted run.
        stats = fleet.simulator.queue.stats
        captured = snapshot["event_stats"]
        stats.scheduled = captured["scheduled"]
        stats.executed = captured["executed"]
        stats.cancelled_skipped = captured["cancelled_skipped"]

    driver = StreamDriver(
        fleet,
        fleet_config,
        plan,
        jobs,
        recovery_rounds=config.recovery_rounds,
        churn=config.churn,
        lookahead=config.lookahead,
        duration=duration,
        on_arrival=recorder.job_arrived,
        on_served=recorder.job_served,
        control=control,
        on_primed=on_primed if resumed else None,
        start_consumed=start_consumed,
        pending=pending,
        churn_applied=churn_applied,
    )
    driver.served = served_before

    interrupted = False
    try:
        if resumed:
            store.log_event(
                "service_resumed",
                clock=fleet.simulator.now,
                jobs_dispatched=driver.dispatched,
            )
        try:
            driver.run()
        except _Interrupted:
            interrupted = True
        rollup = recorder.rollup()
        if metrics_handle is not None and not interrupted:
            emit({"type": "metrics_rollup", **rollup})
        store.log_event(
            "service_interrupted" if interrupted else "service_finished",
            clock=fleet.simulator.now,
            jobs_dispatched=driver.dispatched,
            jobs_served=driver.served,
        )
        if interrupted:
            store.write_state(
                build_state(
                    fleet,
                    driver,
                    recorder,
                    checkpoints_written=progress["checkpoints"],
                    config_hash=config.config_hash(),
                )
            )
    finally:
        if metrics_handle is not None:
            metrics_handle.close()

    return ServiceResult(
        jobs_total=driver.dispatched,
        jobs_served=driver.served,
        feasible=driver.served == driver.dispatched,
        max_vehicle_energy=fleet.max_energy_used(),
        total_travel=fleet.total_travel(),
        total_service=fleet.total_service(),
        omega=omega,
        omega_star=omega_star,
        capacity=provisioned,
        theorem_capacity=theorem_capacity,
        replacements=fleet.stats.replacements,
        searches=fleet.stats.searches_started,
        failed_replacements=fleet.stats.failed_replacements,
        messages=fleet.messages_sent(),
        messages_dropped=fleet.messages_dropped(),
        messages_corrupted=fleet.messages_corrupted(),
        heartbeat_rounds=fleet.stats.heartbeat_rounds,
        escalations=fleet.stats.escalations_started,
        escalated_replacements=fleet.stats.escalated_replacements,
        adoptions=fleet.stats.adoptions,
        hand_backs=fleet.stats.hand_backs,
        events_processed=fleet.simulator.events_processed,
        sim_time=fleet.simulator.now,
        transport=fleet.transport_kind,
        fleet_digest=fleet_digest(fleet),
        windows=recorder.window_index,
        checkpoints_written=progress["checkpoints"],
        resumed=resumed,
        interrupted=interrupted,
        rollup=rollup,
        shards=config.shards,
        cross_shard_messages=(
            shard_monitor.cross_shard if shard_monitor is not None else 0
        ),
        window_barriers=progress["barriers"],
        monitoring_mode=(
            "gossip"
            if fleet.config.monitoring == "gossip"
            else ("ring" if fleet.config.monitoring else "")
        ),
        suspicions=fleet.stats.suspicions,
        attestations=fleet.stats.attestations,
        refused_attestations=fleet.stats.refused_attestations,
        false_suspicions=fleet.stats.false_suspicions,
        detections=int(fleet.detection_digest.count),
        detection_p50=(
            fleet.detection_digest.quantile(0.5) if fleet.detection_digest.count else 0.0
        ),
        detection_p99=(
            fleet.detection_digest.quantile(0.99)
            if fleet.detection_digest.count
            else 0.0
        ),
    )


def resume_service(
    snapshot: Union[str, Path, Dict[str, Any]],
    jobs: Iterable[Any],
    *,
    shards: Optional[int] = None,
    **kwargs: Any,
) -> ServiceResult:
    """Continue a service run from a checkpoint.

    ``jobs`` is the *original* full stream (the harness skips the consumed
    prefix); everything else -- demand, fleet, transport, cadences -- comes
    from the config embedded in the snapshot.  ``shards`` overrides the
    snapshot's shard count for the continued run (sharding is observational
    on a service run, so a checkpoint taken under N shards resumes under M
    shards to the same hashes).  Keyword arguments are forwarded to
    :func:`run_service` (output paths, ``duration``, ...).
    """
    payload = load_checkpoint(snapshot)
    config = ServiceConfig.from_json(payload["config"])
    if shards is not None:
        config = config.replace(shards=shards)
    return run_service(config, jobs, snapshot=payload, **kwargs)
