"""Windowed metrics for long-lived service runs.

A batch run keeps one boolean per job; a million-job service cannot.  The
:class:`MetricsRecorder` folds every served job into (a) per-window
records of bounded size and (b) a whole-run rollup read straight off the
fleet's cumulative counters -- so the rollup is *equal to the batch
driver's totals by construction*, not by re-aggregation.

Service latencies (time from arrival to successful service: ``0`` for an
immediate delivery, the retry delay for a recovered job) are summarized by
a :class:`LatencyDigest`: a deterministic fixed-capacity centroid sketch
(insert sorted; when full, merge the closest adjacent pair).  With the
harness's two-spike latency distribution the digest is exact; in general
it is a bounded-memory approximation whose quantiles are weighted
nearest-rank over the centroids.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["LatencyDigest", "MetricsRecorder"]

#: Fleet counters whose per-window *deltas* each window record carries.
_DELTA_COUNTERS = (
    "jobs_delivered",
    "jobs_unserved",
    "replacements",
    "searches_started",
    "failed_replacements",
    "heartbeat_rounds",
    "escalations_started",
    "escalated_replacements",
    "adoptions",
    "hand_backs",
)


class LatencyDigest:
    """Deterministic fixed-capacity quantile sketch over non-negative values.

    Centroids are ``[value, weight]`` pairs kept sorted by value; inserting
    past ``capacity`` merges the two adjacent centroids with the smallest
    value gap (ties: the lowest index), weight-averaging their values.  The
    merge rule is a pure function of the insertion sequence, so two runs
    that serve the same jobs produce byte-identical digests.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 2:
            raise ValueError("digest capacity must be at least 2")
        self.capacity = capacity
        self._values: List[float] = []
        self._weights: List[float] = []
        # Exact extremes: centroid merging weight-averages values, so the
        # first/last centroid drift inward once the sketch saturates --
        # p0/p100 must come from these, not from the centroid endpoints.
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    @property
    def count(self) -> float:
        """Total weight added so far."""
        return sum(self._weights)

    def add(self, value: float, weight: float = 1.0) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        position = bisect.bisect_left(self._values, value)
        if position < len(self._values) and self._values[position] == value:
            self._weights[position] += weight
            return
        self._values.insert(position, value)
        self._weights.insert(position, weight)
        if len(self._values) > self.capacity:
            self._merge_closest()

    def _merge_closest(self) -> None:
        best = min(
            range(len(self._values) - 1),
            key=lambda i: (self._values[i + 1] - self._values[i], i),
        )
        weight = self._weights[best] + self._weights[best + 1]
        merged = (
            self._values[best] * self._weights[best]
            + self._values[best + 1] * self._weights[best + 1]
        ) / weight
        self._values[best : best + 2] = [merged]
        self._weights[best : best + 2] = [weight]

    def quantile(self, q: float) -> float:
        """Weighted nearest-rank quantile (``0 <= q <= 1``); 0.0 when empty."""
        if not self._values:
            return 0.0
        if q <= 0:
            return self._min  # exact minimum, immune to centroid merging
        if q >= 1:
            return self._max  # exact maximum, immune to centroid merging
        target = q * self.count
        cumulative = 0.0
        for value, weight in zip(self._values, self._weights):
            cumulative += weight
            if cumulative >= target - 1e-12:
                return value
        return self._values[-1]

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "capacity": self.capacity,
            "centroids": [[v, w] for v, w in zip(self._values, self._weights)],
        }
        if self._values:
            payload["min"] = self._min
            payload["max"] = self._max
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "LatencyDigest":
        digest = cls(capacity=payload["capacity"])
        for value, weight in payload["centroids"]:
            digest._values.append(float(value))
            digest._weights.append(float(weight))
        if digest._values:
            # Pre-extremes snapshots carry no min/max; the centroid
            # endpoints are the best (and historical) reconstruction.
            digest._min = float(payload.get("min", digest._values[0]))
            digest._max = float(payload.get("max", digest._values[-1]))
        return digest


class MetricsRecorder:
    """Accumulates per-window records and the whole-run rollup.

    The recorder never schedules events and never touches the fleet beyond
    *reading* its counters at window boundaries, so enabling metrics cannot
    perturb the event stream: a run with metrics on is byte-identical to
    one with metrics off.

    Windows close at the driver's clean control points (between arrivals)
    once ``window_jobs`` arrivals have been dispatched since the last
    close; all outcomes of those arrivals are final by then (recovery
    retries fire well inside the inter-arrival gap).  ``emit`` receives
    each closed window record; the recorder itself retains only the last
    ``keep`` records, keeping memory constant over an unbounded run.
    """

    def __init__(
        self,
        fleet,
        *,
        window_jobs: int = 1000,
        omega_star: float = 0.0,
        digest_capacity: int = 64,
        keep: int = 8,
        emit: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.fleet = fleet
        self.window_jobs = window_jobs
        self.omega_star = omega_star
        self.emit = emit
        self.window_index = 0
        self.jobs_arrived = 0
        self.jobs_served = 0
        self.recent: Deque[Dict[str, Any]] = deque(maxlen=keep)
        self.run_digest = LatencyDigest(digest_capacity)
        self._digest_capacity = digest_capacity
        self._window_arrivals = 0
        self._window_served = 0
        self._window_digest = LatencyDigest(digest_capacity)
        self._window_start_time = fleet.simulator.now
        self._baseline = self._counters()

    # ------------------------------------------------------------------ #
    # per-job hooks (called by the streaming driver)
    # ------------------------------------------------------------------ #

    def job_arrived(self, index: int, job) -> None:
        self.jobs_arrived += 1
        self._window_arrivals += 1

    def job_served(self, index: int, job, latency: float) -> None:
        self.jobs_served += 1
        self._window_served += 1
        self._window_digest.add(latency)
        self.run_digest.add(latency)

    # ------------------------------------------------------------------ #
    # window boundaries (called at clean control points)
    # ------------------------------------------------------------------ #

    def maybe_close_window(self, *, force: bool = False) -> Optional[Dict[str, Any]]:
        """Close the current window if it is full (or ``force`` and non-empty)."""
        if self._window_arrivals < self.window_jobs and not (
            force and self._window_arrivals > 0
        ):
            return None
        return self._close_window()

    def _close_window(self) -> Dict[str, Any]:
        fleet = self.fleet
        now = fleet.simulator.now
        counters = self._counters()
        record: Dict[str, Any] = {
            "type": "metrics_window",
            "window": self.window_index,
            "start_time": self._window_start_time,
            "end_time": now,
            "jobs": self._window_arrivals,
            "served": self._window_served,
            "omega_star": self.omega_star,
            "max_vehicle_energy": fleet.max_energy_used(),
            "active_vehicles": fleet.active_vehicle_count(),
            "latency_p50": self._window_digest.quantile(0.50),
            "latency_p90": self._window_digest.quantile(0.90),
            "latency_p99": self._window_digest.quantile(0.99),
        }
        for name in _DELTA_COUNTERS:
            record[name] = counters[name] - self._baseline[name]
        record["messages"] = counters["messages"] - self._baseline["messages"]
        record["messages_dropped"] = (
            counters["messages_dropped"] - self._baseline["messages_dropped"]
        )
        record["travel"] = counters["travel"] - self._baseline["travel"]
        record["service"] = counters["service"] - self._baseline["service"]
        self.window_index += 1
        self.recent.append(record)
        self._window_arrivals = 0
        self._window_served = 0
        self._window_digest = LatencyDigest(self._digest_capacity)
        self._window_start_time = now
        self._baseline = counters
        if self.emit is not None:
            self.emit(record)
        return record

    def _counters(self) -> Dict[str, float]:
        fleet = self.fleet
        stats = fleet.stats
        counters: Dict[str, float] = {
            name: getattr(stats, name) for name in _DELTA_COUNTERS
        }
        counters["messages"] = fleet.messages_sent()
        counters["messages_dropped"] = fleet.messages_dropped()
        counters["travel"] = fleet.total_travel()
        counters["service"] = fleet.total_service()
        return counters

    # ------------------------------------------------------------------ #
    # whole-run rollup
    # ------------------------------------------------------------------ #

    def rollup(self) -> Dict[str, Any]:
        """Whole-run totals, read off the fleet's *cumulative* counters.

        Because the values come from the same counters the batch driver's
        :class:`~repro.core.online.OnlineResult` reads, the rollup equals
        the batch totals identically -- no per-window re-summation (and
        hence no float re-association) is involved.
        """
        counters = self._counters()
        rollup: Dict[str, Any] = {
            "jobs_arrived": self.jobs_arrived,
            "jobs_served": self.jobs_served,
            "windows": self.window_index,
            "max_vehicle_energy": self.fleet.max_energy_used(),
            "latency_p50": self.run_digest.quantile(0.50),
            "latency_p90": self.run_digest.quantile(0.90),
            "latency_p99": self.run_digest.quantile(0.99),
        }
        rollup.update(counters)
        return rollup

    # ------------------------------------------------------------------ #
    # checkpoint support
    # ------------------------------------------------------------------ #

    def state_to_json(self) -> Dict[str, Any]:
        return {
            "window_index": self.window_index,
            "jobs_arrived": self.jobs_arrived,
            "jobs_served": self.jobs_served,
            "window_arrivals": self._window_arrivals,
            "window_served": self._window_served,
            "window_start_time": self._window_start_time,
            "baseline": self._baseline,
            "window_digest": self._window_digest.to_json(),
            "run_digest": self.run_digest.to_json(),
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        self.window_index = payload["window_index"]
        self.jobs_arrived = payload["jobs_arrived"]
        self.jobs_served = payload["jobs_served"]
        self._window_arrivals = payload["window_arrivals"]
        self._window_served = payload["window_served"]
        self._window_start_time = payload["window_start_time"]
        self._baseline = dict(payload["baseline"])
        self._window_digest = LatencyDigest.from_json(payload["window_digest"])
        self.run_digest = LatencyDigest.from_json(payload["run_digest"])
