"""The pollable live-state store of a service run.

Two artifacts, both cheap enough to refresh every metrics window:

* **State file** -- a single JSON document, atomically rewritten
  (temp-file + rename, :func:`repro.io.atomic.atomic_write_json`) so an
  external poller never observes a torn read: it always sees either the
  previous complete state or the new complete state.  Contents: run
  progress, a fleet summary, the active pair registry (bounded by fleet
  size, never by stream length), and the last ``keep_windows`` metrics
  windows.
* **Event log** -- an append-only JSONL file of harness milestones
  (windows closed, checkpoints written, run finished).  Appends are not
  atomic and need not be: a half-written final line is detectable (no
  trailing newline / JSON parse failure) and every earlier line is intact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.io.atomic import atomic_write_json

__all__ = ["LiveStateStore", "build_state", "STATE_SCHEMA", "STATE_VERSION"]

STATE_SCHEMA = "repro.service/state"
STATE_VERSION = 1


def build_state(
    fleet,
    driver,
    recorder,
    *,
    checkpoints_written: int = 0,
    config_hash: str = "",
) -> Dict[str, Any]:
    """The live-state document for the current instant of a service run."""
    return {
        "schema": STATE_SCHEMA,
        "version": STATE_VERSION,
        "config_hash": config_hash,
        "clock": fleet.simulator.now,
        "finished": driver.finished,
        "jobs": {
            "consumed": driver.consumed,
            "dispatched": driver.dispatched,
            "served": driver.served,
        },
        "fleet": {
            "active_vehicles": fleet.active_vehicle_count(),
            "max_vehicle_energy": fleet.max_energy_used(),
            "total_travel": fleet.total_travel(),
            "total_service": fleet.total_service(),
            "messages": fleet.messages_sent(),
            "messages_dropped": fleet.messages_dropped(),
            "replacements": fleet.stats.replacements,
            "failed_replacements": fleet.stats.failed_replacements,
            "escalations": fleet.stats.escalations_started,
            "adoptions": fleet.stats.adoptions,
            "hand_backs": fleet.stats.hand_backs,
        },
        "active_pairs": [
            [list(pair), list(identity)]
            for pair, identity in sorted(fleet.registry.items())
        ],
        "windows": list(recorder.recent),
        "checkpoints_written": checkpoints_written,
    }


class LiveStateStore:
    """Owns the state file and the event log of one service run.

    Either path may be ``None``, turning the corresponding output off;
    the harness calls unconditionally and the store no-ops.
    """

    def __init__(
        self,
        state_path: Optional[Union[str, Path]] = None,
        log_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.state_path = Path(state_path) if state_path is not None else None
        self.log_path = Path(log_path) if log_path is not None else None
        self.states_written = 0
        self.events_logged = 0

    @property
    def enabled(self) -> bool:
        return self.state_path is not None or self.log_path is not None

    def write_state(self, payload: Dict[str, Any]) -> None:
        """Atomically replace the state file with ``payload``."""
        if self.state_path is None:
            return
        atomic_write_json(payload, self.state_path)
        self.states_written += 1

    def log_event(self, kind: str, **fields: Any) -> None:
        """Append one milestone record to the event log."""
        if self.log_path is None:
            return
        record = {"event": kind, **fields}
        with open(self.log_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.events_logged += 1
