"""The streaming arrival driver: bounded look-ahead over an unbounded job stream.

The batch event driver (:func:`repro.core.online._run_events`) pushes the
*entire* job sequence to the calendar queue up front -- O(jobs) memory
before the first event fires.  :class:`StreamDriver` keeps only a bounded
look-ahead window of scheduled arrivals (default 64) and refills it as
arrivals fire, so memory is independent of stream length; the per-job
service logic itself is *shared* with the batch driver
(:func:`repro.core.online._arrival_logic`), which is what makes the two
byte-identical on finite sequences.

Execution interleaving
----------------------
The driver advances the simulator in hops: for each upcoming arrival at
time ``t`` it first drains every event *strictly before* ``t`` (to the
largest float below ``t``), then invokes the control callback -- the
harness's clean point for window closes, checkpoints, and state-store
rewrites -- and then executes the ``t`` bucket.  Events pop in
``(time, sequence)`` order exactly as in a batch run; the only divergence
is sequence numbering when a *protocol message* lands at exactly a future
arrival's timestamp, which requires a message delay at least as large as
the inter-arrival gap -- outside the thesis's standing assumption (delays
small against the gap), and irrelevant to every shipped configuration.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Deque, Iterable, Iterator, Optional, Sequence, Set, Tuple

from repro.core.online import _arrival_logic, _schedule_churn
from repro.distsim.failures import ChurnSpec, FailurePlan
from repro.vehicles.fleet import Fleet, FleetConfig

__all__ = ["StreamDriver"]

#: Event kinds that may be pending at a clean checkpointable boundary:
#: both are reconstructed from the config + snapshot on resume.  Anything
#: else (an in-flight message, a recovery heartbeat, a retry) is transient
#: protocol state the snapshot format deliberately does not capture.
_CLEAN_KINDS = frozenset({"arrival", "churn"})


class StreamDriver:
    """Runs a fleet against a lazily produced job stream.

    Parameters
    ----------
    jobs:
        Any iterable of :class:`~repro.core.demand.Job` with strictly
        increasing times (validated incrementally).  May be infinite when
        ``duration`` bounds the run.
    lookahead:
        Arrivals scheduled ahead of the clock.  Correctness does not depend
        on the value (1 and 10^6 give byte-identical runs); it only bounds
        harness memory.
    duration:
        Stop dispatching once the next arrival would fire after this
        simulation time; pending look-ahead arrivals are cancelled and the
        network drains to quiescence.
    on_arrival / on_served:
        Metrics hooks: ``on_arrival(index, job)`` at dispatch,
        ``on_served(index, job, latency)`` on successful service.
    control:
        Called with the driver at every inter-arrival boundary (all events
        strictly before the next arrival executed) and once after the final
        drain (``driver.finished`` is then ``True``).
    start_consumed / pending / churn_applied:
        Resume plumbing (see :mod:`repro.service.checkpoint`): the number
        of jobs already pulled from the *original* stream, the not-yet
        dispatched ``(index, job)`` arrivals to re-schedule, and the churn
        specs already applied.  ``jobs`` must already be advanced past the
        consumed prefix.
    """

    def __init__(
        self,
        fleet: Fleet,
        fleet_config: FleetConfig,
        plan: FailurePlan,
        jobs: Iterable[Any],
        *,
        recovery_rounds: int = 0,
        churn: Sequence[ChurnSpec] = (),
        lookahead: int = 64,
        duration: Optional[float] = None,
        on_arrival: Optional[Callable[[int, Any], None]] = None,
        on_served: Optional[Callable[[int, Any, float], None]] = None,
        control: Optional[Callable[["StreamDriver"], None]] = None,
        on_primed: Optional[Callable[["StreamDriver"], None]] = None,
        start_consumed: int = 0,
        pending: Sequence[Tuple[int, Any]] = (),
        churn_applied: Optional[Set[ChurnSpec]] = None,
    ) -> None:
        if lookahead < 1:
            raise ValueError(f"lookahead must be at least 1, got {lookahead}")
        self.fleet = fleet
        self.fleet_config = fleet_config
        self.plan = plan
        self.churn = tuple(churn)
        self.lookahead = lookahead
        self.duration = duration
        self.on_arrival = on_arrival
        self.on_served = on_served
        self.control = control
        self.on_primed = on_primed
        self._ready = False
        self.consumed = start_consumed
        self.dispatched = start_consumed - len(pending)
        self.served = 0
        self.finished = False
        self.churn_applied: Set[ChurnSpec] = (
            churn_applied if churn_applied is not None else set()
        )
        self._iterator: Iterator[Any] = iter(jobs)
        self._exhausted = False
        self._pending_resume = tuple(pending)
        self._last_time = max((job.time for _, job in pending), default=-math.inf)
        self.window: Deque[Tuple[int, Any, Any]] = deque()
        self._make_handler = _arrival_logic(
            fleet, fleet_config, plan, recovery_rounds, self._record
        )

    # ------------------------------------------------------------------ #
    # introspection (used by the harness's control callback)
    # ------------------------------------------------------------------ #

    def at_clean_point(self) -> bool:
        """Whether every pending event is reconstructible from a snapshot.

        True between arrivals once the network has drained; transient
        protocol events (messages still in flight because the delay spans
        an arrival gap, recovery heartbeats, retransmit waits) defer the
        checkpoint to the next boundary.
        """
        return all(event.kind in _CLEAN_KINDS for event in self.fleet.simulator.queue)

    def pending_arrivals(self) -> list:
        """The scheduled-but-not-dispatched ``(index, job)`` look-ahead."""
        return [(index, job) for index, job, _ in self.window]

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def _record(self, index: int, job: Any, latency: float) -> None:
        self.served += 1
        if self.on_served is not None:
            self.on_served(index, job, latency)

    def _schedule_arrival(self, index: int, job: Any, pair_key: Any = None) -> None:
        serve = self._make_handler(index, job, pair_key)

        def _fire(index: int = index, job: Any = job, serve=serve) -> None:
            if self.window and self.window[0][0] == index:
                self.window.popleft()
            # Refill *before* serving: the look-ahead stays full while the
            # service logic runs, and refilled arrivals take their queue
            # sequence numbers ahead of this job's protocol messages --
            # deterministic, and reproduced exactly by a resumed run.
            self._refill()
            self.dispatched += 1
            if self.on_arrival is not None:
                self.on_arrival(index, job)
            serve()

        event = self.fleet.simulator.schedule_at(job.time, _fire, kind="arrival")
        self.window.append((index, job, event))

    def _refill(self) -> None:
        # Pull the whole deficit off the stream first, then resolve the
        # batch's pair keys with one vectorized registry lookup (the
        # priming refill schedules a full look-ahead window; steady state
        # usually refills one job and takes the scalar route).
        fresh = []
        while not self._exhausted and len(self.window) + len(fresh) < self.lookahead:
            try:
                job = next(self._iterator)
            except StopIteration:
                self._exhausted = True
                break
            if job.time <= self._last_time:
                raise ValueError(
                    f"job times must be strictly increasing: job {self.consumed} "
                    f"arrives at {job.time} after {self._last_time}"
                )
            self._last_time = job.time
            fresh.append((self.consumed, job))
            self.consumed += 1
        if not fresh:
            return
        routed = self.fleet.route_positions([job.position for _, job in fresh])
        for (index, job), pair_key in zip(fresh, routed):
            self._schedule_arrival(index, job, pair_key)

    def prepare(self) -> None:
        """Schedule churn and the initial look-ahead (idempotent).

        Called implicitly by :meth:`run`; a resuming harness calls it
        explicitly so it can overwrite the queue statistics with the
        snapshot's values at exactly the right moment -- the ``on_primed``
        hook fires after the snapshot's churn + pending arrivals are
        re-pushed but *before* the look-ahead refills with new jobs, so
        post-hook scheduling counts accrue exactly as in the uninterrupted
        run.
        """
        if self._ready:
            return
        self._ready = True
        # Churn first, then arrivals: same relative sequence order as the
        # batch driver (and as any earlier leg of a resumed run).
        _schedule_churn(self.fleet, self.churn, self.plan, self.churn_applied)
        if self._pending_resume:
            routed = self.fleet.route_positions(
                [job.position for _, job in self._pending_resume]
            )
            for (index, job), pair_key in zip(self._pending_resume, routed):
                self._schedule_arrival(index, job, pair_key)
        self._pending_resume = ()
        if self.on_primed is not None:
            self.on_primed(self)
        self._refill()

    # ------------------------------------------------------------------ #
    # the control loop
    # ------------------------------------------------------------------ #

    def run(self) -> int:
        """Drive the stream to completion; returns jobs served."""
        simulator = self.fleet.simulator
        self.prepare()
        while self.window:
            head_time = self.window[0][1].time
            if self.duration is not None and head_time > self.duration:
                for _, _, event in self.window:
                    event.cancel()
                self.window.clear()
                self._exhausted = True
                break
            # Drain everything strictly before the arrival: the largest
            # float below head_time is an exact, serializable boundary.
            boundary = math.nextafter(head_time, -math.inf)
            if simulator.now < boundary:
                simulator.run(until=boundary)
            if self.control is not None:
                self.control(self)
            simulator.run(until=head_time)
        simulator.run_until_quiescent()
        self.finished = True
        if self.control is not None:
            self.control(self)
        return self.served
