"""The online vehicle protocol of Chapter 3.

Vehicles are processes on the :mod:`repro.distsim` substrate.  Each cube of
the ``ceil(omega_c)``-cube partition is colored like a chessboard and split
into adjacent black/white pairs (:mod:`repro.grid.coloring`); the vehicle at
each pair's black vertex starts *active* and serves every job arriving at
either vertex of its pair, walking at most distance one.  When an active
vehicle runs low on energy it becomes *done* and launches a
Dijkstra--Scholten diffusing computation (Phase I, Algorithm 2) to locate an
idle vehicle in its cube; a move order is then relayed along the discovered
path (Phase II) and the idle vehicle walks over and takes the pair over.

Modules:

* :mod:`repro.vehicles.state` -- the working/message-transfer state machine
  of Figure 3.1.
* :mod:`repro.vehicles.messages` -- query / reply / move / existing /
  activation messages.
* :mod:`repro.vehicles.vehicle` -- the vehicle process (job service,
  Phase I, Phase II, heartbeats).
* :mod:`repro.vehicles.monitoring` -- the monitoring-pointer scheme of
  Section 3.2.5 used to survive initiation failures and dead vehicles
  (scenarios 2 and 3).
* :mod:`repro.vehicles.fleet` -- fleet construction and the per-cube
  bookkeeping the experiments interrogate.
"""

from repro.vehicles.state import WorkingState, TransferState, VehicleStatus
from repro.vehicles.messages import (
    ActivationNotice,
    EscalateQuery,
    EscalateReply,
    ExistingMessage,
    MoveMessage,
    QueryMessage,
    ReplyMessage,
)
from repro.vehicles.vehicle import VehicleProcess
from repro.vehicles.fleet import Fleet, FleetConfig

__all__ = [
    "WorkingState",
    "TransferState",
    "VehicleStatus",
    "QueryMessage",
    "ReplyMessage",
    "MoveMessage",
    "ExistingMessage",
    "ActivationNotice",
    "EscalateQuery",
    "EscalateReply",
    "VehicleProcess",
    "Fleet",
    "FleetConfig",
]
