"""Fleet construction and bookkeeping for the online protocol.

The fleet realizes the setup of Section 3.2: the lattice is partitioned
into ``ceil(omega_c)``-cubes, every cube that can receive jobs gets one
vehicle per vertex, vertices are paired black/white, and the pair's black
vertex starts with the active vehicle.  The fleet also owns the message
network, the failure plan, the pair registry (which vehicle currently
answers for which pair -- the physical ground truth the experiments audit),
and the protocol statistics (replacements, searches, messages, energy).

The fleet is deliberately *not* a centralized controller: it only routes a
job to the vehicle currently responsible for the job's pair (physically,
the job appears at a location and the responsible vehicle senses it) and
ticks heartbeat rounds.  All coordination -- finding and moving
replacements -- happens through messages between the vehicles themselves.
"""

from __future__ import annotations

import bisect
import gc
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.demand import DemandMap
from repro.core.plan import plan_window
from repro.distsim.engine import Simulator
from repro.distsim.failures import FailurePlan
from repro.distsim.network import Network
from repro.distsim.transport import Transport
from repro.grid.coloring import Coloring
from repro.grid.cubes import CubeGrid, CubeHierarchy
from repro.grid.lattice import Box, Point, manhattan
from repro.vehicles.messages import ExistingMessage
from repro.vehicles.monitoring import hierarchical_watch_ring, watch_ring_inverse
from repro.vehicles.registry import (
    FleetRegistry,
    STATE_ACTIVE,
    WATCH_NEVER,
    adjacency_template,
    coloring_for_cube,
    pairing_template,
)
from repro.vehicles.state import WorkingState
from repro.vehicles.vehicle import VehicleProcess

__all__ = ["FleetConfig", "Fleet"]


@dataclass(frozen=True)
class FleetConfig:
    """Tunable parameters of the online protocol."""

    #: Battery capacity ``W`` of every vehicle; ``None`` = unbounded
    #: (measurement mode, used to observe the energy the strategy needs).
    capacity: Optional[float] = None
    #: Communication radius: vehicles whose home vertices are within this
    #: Manhattan distance (and in the same cube) are neighbors.  The thesis
    #: uses an arbitrary constant; 3 guarantees that the watcher of a pair
    #: always hears its heartbeats directly.
    neighbor_radius: int = 3
    #: Mean message delay (simulation time units); actual delays may be
    #: randomized by the network when an RNG is supplied.
    message_delay: float = 0.01
    #: Remaining energy below which an active vehicle declares itself done.
    done_threshold: float = 2.0
    #: Failure-detection mode.  ``False`` disables monitoring; ``True`` or
    #: ``"ring"`` run the Section 3.2.5 single-watcher monitoring loop
    #: (byte-identical -- ``"ring"`` is the readable spelling); ``"gossip"``
    #: runs the epidemic detector with quorum-attested replacement (see
    #: :mod:`repro.vehicles.gossip`).  Truthiness is preserved, so every
    #: ``if config.monitoring`` site keeps its historical meaning.
    monitoring: object = False
    #: Heartbeat rounds a watcher waits before initiating a replacement on
    #: behalf of a silent pair.
    heartbeat_miss_threshold: int = 3
    #: Consecutive heartbeat rounds a vehicle may stay engaged in one
    #: diffusing computation before the monitoring loop abandons it as
    #: starved.  Under a reliable channel computations terminate between
    #: rounds and the timeout never fires; under message loss or corruption
    #: it is what frees stuck searchers (and watchers) to make progress.
    search_timeout_rounds: int = 6
    #: Whether an exhausted Phase I search may escalate through the cube
    #: hierarchy (cross-cube replacement; see
    #: :class:`~repro.grid.cubes.CubeHierarchy` and the vehicle docstring).
    #: Off by default: intra-cube runs stay byte-identical to the thesis
    #: protocol.
    escalation: bool = False
    #: Battery an *active* vehicle must keep (beyond the walk) to volunteer
    #: as a spare-capacity adopter in an escalated search.  The reserve
    #: keeps adopters from immediately going done themselves; it should
    #: exceed ``done_threshold`` by a comfortable service margin.
    escalation_reserve: float = 4.0
    #: Proactive load shedding: when a crashed vehicle rejoins (churn) and
    #: its pair is meanwhile held by an adopter, offer the pair back to the
    #: revived owner through the legal escalated move order.  Long service
    #: horizons accumulate adoption debt (one vehicle answering for many
    #: pairs) that one revival can now retire.  Off by default: every
    #: existing run keeps its golden hashes.
    hand_back: bool = False
    #: Gossip mode: digest recipients per vehicle per round (epidemic
    #: fanout; O(log n) spread at any constant >= 1).
    gossip_fanout: int = 2
    #: Gossip mode: distinct silence reporters required before a watcher
    #: even *suspects* a pair (1 restores single-observer sensitivity).
    suspicion_threshold: int = 2
    #: Gossip mode: granted co-signatures (beyond the watcher's own view)
    #: required before a suspected pair's replacement search starts.  The
    #: attested takeover masks up to ``quorum - 1`` Byzantine watchers.
    quorum: int = 2

    def __post_init__(self) -> None:
        if self.monitoring not in (False, True, "ring", "gossip"):
            raise ValueError(
                "monitoring must be False, True, 'ring' or 'gossip', "
                f"got {self.monitoring!r}"
            )
        for name in ("gossip_fanout", "suspicion_threshold", "quorum"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.quorum > self.suspicion_threshold:
            raise ValueError(
                f"quorum ({self.quorum}) must not exceed suspicion_threshold "
                f"({self.suspicion_threshold}): a suspicion that cannot gather "
                "enough independent reports can never gather more co-signers"
            )
        if self.monitoring == "gossip" and self.escalation:
            raise ValueError(
                "monitoring='gossip' does not compose with escalation mode yet"
            )


@dataclass
class FleetStats:
    """Counters accumulated during a run."""

    jobs_delivered: int = 0
    jobs_unserved: int = 0
    done_events: int = 0
    searches_started: int = 0
    replacements: int = 0
    failed_replacements: int = 0
    suppressed_initiations: int = 0
    watch_initiations: int = 0
    heartbeat_rounds: int = 0
    escalations_started: int = 0
    escalated_replacements: int = 0
    adoptions: int = 0
    hand_backs: int = 0
    #: Gossip mode: quorum collections opened (SuspectMessage broadcasts).
    suspicions: int = 0
    #: Gossip mode: co-signatures granted by attesters.
    attestations: int = 0
    #: Gossip mode: attestation requests an attester declined (silence).
    refused_attestations: int = 0
    #: Gossip mode: suspicions raised against a pair whose registered
    #: vehicle was in fact alive and active (ground-truth audit counter).
    false_suspicions: int = 0


class Fleet:
    """All vehicles, their network, and the pair registry."""

    def __init__(
        self,
        demand: DemandMap,
        omega: float,
        config: Optional[FleetConfig] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        failure_plan: Optional[FailurePlan] = None,
        transport: Optional[Transport] = None,
        window: Optional[Box] = None,
    ) -> None:
        if demand.is_empty():
            raise ValueError("cannot build a fleet for an empty demand map")
        if omega <= 0:
            raise ValueError("omega must be positive")
        if config is None:
            # In-body default: a ``FleetConfig()`` default *argument* would
            # be evaluated once at import time and shared by every fleet --
            # harmless only as long as the config stays frozen, and a trap
            # the moment anyone adds a mutable field.
            config = FleetConfig()
        self.demand = demand
        self.omega = float(omega)
        self.config = config
        self.dim = demand.dim
        self.cube_side = max(1, int(math.ceil(omega)))
        self.failure_plan = failure_plan if failure_plan is not None else FailurePlan()

        self.simulator = Simulator()
        self.network = Network(
            self.simulator,
            delay=config.message_delay,
            rng=rng,
            failure_plan=self.failure_plan,
            transport=transport,
        )

        #: The lattice window the cube partition tiles.  A sharded worker
        #: passes the *global* run's window explicitly so its sub-fleet's
        #: cube geometry (indices, level boxes, parities) matches the
        #: single-process run exactly; ``plan_window`` over a restricted
        #: demand would re-anchor the grid.
        self.window: Box = (
            window if window is not None else plan_window(demand, self.cube_side)
        )
        self.cube_grid = CubeGrid(self.window, self.cube_side)
        #: The dyadic coarsening of the cube partition -- the escalation
        #: geometry of cross-cube replacement searches.
        self.hierarchy = CubeHierarchy(self.cube_grid)
        #: The flat-array core: dense vehicle indices, contiguous state
        #: arrays, and the batch-construction scaffolding (see
        #: :mod:`repro.vehicles.registry`).  Must exist before any
        #: :class:`VehicleProcess` is created -- vehicles allocate their
        #: live-state slots in it.
        self.flat = FleetRegistry(self.window)
        self.colorings: Dict[Tuple[int, ...], Coloring] = {}
        self.vehicles: Dict[Point, VehicleProcess] = {}
        #: pair black vertex -> identity of the vehicle currently responsible.
        self.registry: Dict[Point, Point] = {}
        #: Any vertex of a built cube -> its pair's black vertex.  The job
        #: router's hot path: one dict lookup instead of a cube-index /
        #: coloring walk per delivered job.
        self._pair_of_position: Dict[Point, Point] = {}
        #: Pair black vertex -> multi-index of the cube it belongs to.
        self._pair_cube: Dict[Point, Tuple[int, ...]] = {}
        #: Cube multi-index -> sorted identities of the vehicles currently
        #: resident there.  Static after construction in intra-cube mode;
        #: escalated takeovers and adoptions keep it current as vehicles
        #: cross boundaries.
        self._cube_members: Dict[Tuple[int, ...], List[Point]] = {}

        self.stats = FleetStats()
        self._computation_round = 0
        self._heartbeat_round = 0
        #: Detection-latency observability: pair -> heartbeat round at
        #: which its registered vehicle crashed, pending first (attested)
        #: replacement initiation; resolved deltas accumulate in
        #: ``detection_digest`` (heartbeat-round units, both ring and
        #: gossip modes).
        self._crash_rounds: Dict[Point, int] = {}
        # Local import: ``repro.service`` imports this module at package
        # init, so a top-level import here would be circular.  The metrics
        # module itself has no ``repro`` imports at all.
        from repro.service.metrics import LatencyDigest

        self.detection_digest = LatencyDigest()
        #: Sorted fleet-wide identities: the gossip peer-selection pool
        #: (lazy; rebuilt if vehicles are added after construction).
        self._gossip_candidates: Optional[List[Point]] = None
        #: Dense-index -> vehicle list backing the registry-native round
        #: path (lazy; rebuilt if vehicles are added after construction).
        self._by_index_cache: Optional[List[Optional[VehicleProcess]]] = None
        self._by_index_count = -1
        #: Heartbeat round at which monitoring started (watchers treat pairs
        #: never heard from as having spoken at this round).
        self.monitoring_baseline = 0

        self._build_vehicles()

        #: The fleet-wide monitoring ring of escalation mode (pair ->
        #: watched pair); ``None`` when running the cube-local loop.
        self.watch_ring: Optional[Dict[Point, Point]] = None
        self._ring_inverse: Dict[Point, Point] = {}
        if config.escalation:
            self.watch_ring = hierarchical_watch_ring(
                {
                    index: [pair.black for pair in coloring.pairs]
                    for index, coloring in self.colorings.items()
                }
            )
            self._ring_inverse = watch_ring_inverse(self.watch_ring)
            for vehicle in self.vehicles.values():
                if vehicle.pair_key is not None:
                    vehicle.monitored_pair = self.watched_pair(vehicle.pair_key)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _cubes_with_demand(self) -> List[Tuple[int, ...]]:
        support = self.demand.support_array()
        lo = np.asarray(self.window.lo, dtype=np.int64)
        indices = (support - lo) // self.cube_side
        # np.unique over rows sorts lexicographically -- the same order the
        # historical sorted-set-of-tuples produced.
        return [tuple(row) for row in np.unique(indices, axis=0).tolist()]

    def _build_vehicles(self) -> None:
        """Construct every cube's vehicles from batched array computation.

        All per-cube structure (snake pairing, neighbor graphs, initial
        activity, watch targets) comes from the shape/parity templates of
        :mod:`repro.vehicles.registry`, computed once per distinct cube
        geometry instead of once per cube; absolute vertex tuples are
        materialized with one broadcasted add + ``tolist`` pass per
        template group.  Creation order -- cubes sorted, vertices
        lexicographic -- and every produced structure are identical to the
        historical per-vehicle loops (pinned by the template unit tests
        and the flat-core byte-identity goldens).
        """
        # Construction allocates O(fleet) small objects in one burst; the
        # generational GC otherwise triggers dozens of collections that
        # rescan the growing object graph (measured at ~half of 10^4-vehicle
        # construction time).  Nothing built here is garbage, so defer
        # collection until the burst is over.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._build_vehicles_inner()
        finally:
            if gc_was_enabled:
                gc.enable()

    def _build_vehicles_inner(self) -> None:
        radius = self.config.neighbor_radius
        indices = self._cubes_with_demand()
        registry = self.flat
        los, his = self.cube_grid.cube_bounds(indices)
        shapes = (his - los + 1).tolist()
        parities = (los.sum(axis=1) % 2).tolist()
        keys = [(tuple(s), int(p)) for s, p in zip(shapes, parities)]
        lo_tuples = [tuple(row) for row in los.tolist()]
        hi_tuples = [tuple(row) for row in his.tolist()]

        # Materialize all vertex tuples group-by-group: cubes of one
        # (shape, parity) class are translates of a single template.
        by_key: Dict[Tuple[Tuple[int, ...], int], List[int]] = {}
        for position, key in enumerate(keys):
            by_key.setdefault(key, []).append(position)
        verts_of_cube: List[List[Point]] = [None] * len(indices)  # type: ignore[list-item]
        coords_of_cube: List[np.ndarray] = [None] * len(indices)  # type: ignore[list-item]
        for key, positions in by_key.items():
            template = pairing_template(*key)
            k = template.size
            block = template.rel[None, :, :] + los[positions, None, :]
            flat = list(map(tuple, block.reshape(-1, self.dim).tolist()))
            coords = block.reshape(-1, self.dim)
            for j, position in enumerate(positions):
                verts_of_cube[position] = flat[j * k : (j + 1) * k]
                coords_of_cube[position] = coords[j * k : (j + 1) * k]

        capacity = self.config.capacity
        done_threshold = self.config.done_threshold
        vehicles = self.vehicles
        network = self.network
        pair_registry = self.registry
        cube_bases = registry.add_cubes(
            [
                (
                    index,
                    pairing_template(*keys[position]),
                    verts_of_cube[position],
                    coords_of_cube[position],
                )
                for position, index in enumerate(indices)
            ]
        )
        for position, index in enumerate(indices):
            key = keys[position]
            template = pairing_template(*key)
            neighbor_lists = adjacency_template(key[0], radius)
            verts = verts_of_cube[position]
            coloring = coloring_for_cube(
                lo_tuples[position], hi_tuples[position], verts=verts
            )
            self.colorings[index] = coloring
            self._cube_members[index] = list(verts)
            base, pair_keys = cube_bases[position]
            whites = [
                verts[w] if w >= 0 else None for w in template.pair_white_list
            ]
            self._pair_cube.update(dict.fromkeys(pair_keys, index))
            pair_of_position = self._pair_of_position
            pair_of_position.update(zip(pair_keys, pair_keys))
            pair_of_position.update(
                (white, black)
                for white, black in zip(whites, pair_keys)
                if white is not None
            )
            active_flags = template.active_list
            vertex_pair = template.vertex_pair_list
            monitored_lex = template.monitored_list
            cube_vehicles = []
            for i, vertex in enumerate(verts):
                initially_active = active_flags[i]
                pair_key = pair_keys[vertex_pair[i]] if initially_active else None
                monitored = (
                    verts[monitored_lex[i]]
                    if initially_active and monitored_lex[i] >= 0
                    else None
                )
                vehicle = VehicleProcess(
                    vertex,
                    cube_index=index,
                    coloring=coloring,
                    initially_active=initially_active,
                    capacity=capacity,
                    neighbors=[verts[j] for j in neighbor_lists[i]],
                    fleet=self,
                    done_threshold=done_threshold,
                    cube_peers=verts[:i] + verts[i + 1 :],
                    index=base + i,
                    pair_key=pair_key,
                    monitored_pair=monitored,
                )
                vehicles[vertex] = vehicle
                cube_vehicles.append(vehicle)
                if initially_active:
                    pair_registry[pair_key] = vertex
            network.register_all(cube_vehicles)
        registry.finalize()

    # ------------------------------------------------------------------ #
    # protocol plumbing (called by vehicles)
    # ------------------------------------------------------------------ #

    def next_computation_round(self) -> int:
        """Fresh sequence number for a diffusing computation."""
        self._computation_round += 1
        return self._computation_round

    @property
    def heartbeat_round(self) -> int:
        """The current heartbeat round number."""
        return self._heartbeat_round

    def record_done(self, identity: Point) -> None:
        self.stats.done_events += 1

    def record_search_started(self, tag) -> None:
        self.stats.searches_started += 1

    def record_failed_replacement(self, pair_key: Point) -> None:
        self.stats.failed_replacements += 1

    def record_suppressed_initiation(self, identity: Point) -> None:
        self.stats.suppressed_initiations += 1

    def record_watch_initiation(self, identity: Point, pair_key: Point) -> None:
        self.stats.watch_initiations += 1
        self._record_detection(pair_key)

    def _record_detection(self, pair_key: Point) -> None:
        """Close the detection-latency clock of a crashed pair (first
        replacement initiation on its behalf; later retries don't count)."""
        crashed = self._crash_rounds.pop(pair_key, None)
        if crashed is not None:
            self.detection_digest.add(float(self._heartbeat_round - crashed))

    def record_suspicion(self, identity: Point, pair_key: Point) -> None:
        """A watcher opened a quorum collection for ``pair_key``.

        The ground-truth audit runs here: a suspicion against a pair whose
        registered vehicle is alive and active is *false* -- the count the
        quorum exists to keep out of the takeover path.
        """
        self.stats.suspicions += 1
        registered = self.registry.get(pair_key)
        vehicle = self.vehicles.get(registered) if registered is not None else None
        if (
            vehicle is not None
            and not vehicle.broken
            and vehicle.status.working == WorkingState.ACTIVE
        ):
            self.stats.false_suspicions += 1

    def record_attestation(self, identity: Point, pair_key: Point, granted: bool) -> None:
        if granted:
            self.stats.attestations += 1
        else:
            self.stats.refused_attestations += 1

    def gossip_candidates(self) -> List[Point]:
        """Sorted fleet-wide identities: the deterministic gossip peer pool.

        Broken vehicles stay in the pool (their radios still receive;
        handlers guard), keeping peer selection a pure function of the
        construction-time fleet -- identical at any worker or shard count
        and across checkpoint restores.
        """
        cached = self._gossip_candidates
        if cached is None or len(cached) != len(self.vehicles):
            cached = sorted(self.vehicles)
            self._gossip_candidates = cached
        return cached

    def record_escalation_started(self, tag) -> None:
        self.stats.escalations_started += 1

    def record_escalated_replacement(self, *, spare: bool) -> None:
        """An escalated move order was *accepted* (migration or adoption)."""
        self.stats.escalated_replacements += 1

    def on_activation(self, identity: Point, pair_key: Point) -> None:
        """A replacement vehicle took over ``pair_key``."""
        self.registry[pair_key] = identity
        self.stats.replacements += 1

    def registered_vehicle(self, pair_key: Point) -> Optional[Point]:
        """Identity of the vehicle currently registered for a pair."""
        return self.registry.get(pair_key)

    # ------------------------------------------------------------------ #
    # cross-cube escalation plumbing (escalation mode)
    # ------------------------------------------------------------------ #

    def is_pair_key(self, pair_key: Point) -> bool:
        """Whether ``pair_key`` names a real pair of some built cube."""
        return pair_key in self._pair_cube

    def watched_pair(self, pair_key: Point) -> Optional[Point]:
        """The fleet-wide ring's watch target for ``pair_key`` (escalation
        mode); falls back to the pair itself only in a one-pair fleet."""
        if self.watch_ring is None:
            return None
        return self.watch_ring.get(pair_key)

    def escalation_targets(
        self, cube_index: Tuple[int, ...], level: int, *, exclude: Point
    ) -> List[Point]:
        """Identities queried by escalation level ``level`` of a search
        rooted in ``cube_index``: every vehicle resident in the built cubes
        of the hierarchy's level-``level`` escalation ring, deterministic
        (ring cubes lexicographic, members sorted)."""
        targets: List[Point] = []
        for index in self.hierarchy.siblings(cube_index, level):
            members = self._cube_members.get(index)
            if not members:
                continue
            targets.extend(m for m in members if m != exclude)
        return targets

    def escalation_rings(
        self, origin_index: Tuple[int, ...], pair_key: Point, *, exclude: Point
    ) -> List[List[Point]]:
        """The full escalation ladder for a search serving ``pair_key``.

        The ladder is rooted at the *destination pair's* cube, not the
        initiator's: a watcher may sit arbitrarily far from the pair it
        monitors (the fleet-wide ring wraps around), and rooting the
        widening at the initiator would find "nearby" volunteers that are
        nearby *the watcher* -- maximally far from where the replacement
        must walk to.  Ring 0 is the destination cube itself (the one cube
        the initiator's intra-cube flood never visited when the search
        crossed a boundary); ring ``k`` adds the base cubes newly covered
        by the destination cube's level-``k`` ancestor.  Empty rings are
        skipped; only non-empty ones are returned, nearest first.
        """
        root = self._pair_cube.get(pair_key, origin_index)
        rings: List[List[Point]] = []
        if root != origin_index:
            members = [m for m in self._cube_members.get(root, ()) if m != exclude]
            if members:
                rings.append(members)
        for level in range(1, self.hierarchy.levels + 1):
            targets = self.escalation_targets(root, level, exclude=exclude)
            if targets:
                rings.append(targets)
        return rings

    def heartbeat_audience(self, pair_key: Point, *, exclude: Point) -> List[Point]:
        """Who must hear the heartbeat for ``pair_key``: the pair's own cube
        plus the cube of its ring watcher (monitoring pointers may cross
        cube boundaries in escalation mode)."""
        cubes = {self._pair_cube[pair_key]}
        watcher = self._ring_inverse.get(pair_key)
        if watcher is not None:
            cubes.add(self._pair_cube[watcher])
        audience = {
            member
            for index in cubes
            for member in self._cube_members.get(index, ())
        }
        audience.discard(exclude)
        return sorted(audience)

    def activation_audience(self, pair_key: Point, *, exclude: Point) -> List[Point]:
        """Members of the pair's cube (minus the activating vehicle)."""
        members = self._cube_members.get(self._pair_cube[pair_key], ())
        return [m for m in members if m != exclude]

    def rehome_vehicle(self, vehicle: VehicleProcess, pair_key: Point) -> None:
        """An idle vehicle took over a pair in *another* cube: move its
        residency -- coloring, cube index, member lists, and communication
        graph -- to that cube.  Without the graph rewire the migrant's
        later Phase I floods would query its *old* cube's vehicles (an
        intra-cube query crossing a boundary) and miss idle peers standing
        right next to it."""
        new_index = self._pair_cube[pair_key]
        old_members = self._cube_members.get(vehicle.cube_index)
        if old_members is not None and vehicle.identity in old_members:
            old_members.remove(vehicle.identity)
        self._insert_member(new_index, vehicle.identity)
        vehicle.cube_index = new_index
        coloring = self.colorings[new_index]
        vehicle.coloring = coloring
        vertices = list(coloring.cube.points())
        vehicle.neighbors = [
            vertex
            for vertex in vertices
            if vertex != vehicle.identity
            and manhattan(vertex, vehicle.position) <= self.config.neighbor_radius
        ]
        vehicle.cube_peers = [v for v in vertices if v != vehicle.identity]

    def on_adoption(self, identity: Point, pair_key: Point) -> None:
        """An active vehicle adopted a far pair: it now *also* resides in
        the pair's cube (it hears and is heard by that cube's broadcasts)."""
        self.stats.adoptions += 1
        self._insert_member(self._pair_cube[pair_key], identity)

    def on_hand_back(self, identity: Point, pair_key: Point) -> None:
        """A revived owner reclaimed its pair from an adopter.

        Counted separately from ``replacements`` -- nothing was searched or
        moved, responsibility just returned home -- so every result field a
        golden hash covers is untouched by the hand-back protocol.
        """
        self.registry[pair_key] = identity
        self.stats.hand_backs += 1

    def on_adoption_released(self, identity: Point, pair_key: Point) -> None:
        """An adopter dropped ``pair_key``: retire its residency in the
        pair's cube unless something else still anchors it there (its own
        pair, its home cube, or another adopted pair)."""
        index = self._pair_cube[pair_key]
        vehicle = self.vehicles[identity]
        if vehicle.cube_index == index:
            return
        if self._pair_cube.get(vehicle.pair_key) == index:
            return
        if any(self._pair_cube.get(p) == index for p in vehicle.adopted_pairs):
            return
        members = self._cube_members.get(index)
        if members is not None and identity in members:
            members.remove(identity)

    def _insert_member(self, index: Tuple[int, ...], identity: Point) -> None:
        members = self._cube_members.setdefault(index, [])
        position = bisect.bisect_left(members, identity)
        if position >= len(members) or members[position] != identity:
            members.insert(position, identity)

    # ------------------------------------------------------------------ #
    # job routing
    # ------------------------------------------------------------------ #

    def pair_key_of(self, position: Point) -> Point:
        """The black vertex of the pair containing ``position``."""
        position = tuple(int(c) for c in position)
        pair_key = self._pair_of_position.get(position)
        if pair_key is not None:
            return pair_key
        # Slow path only for error reporting on unroutable positions.
        if position not in self.window:
            raise KeyError(f"position {position} lies outside the fleet's window")
        raise KeyError(f"no vehicles were built for the cube containing {position}")

    def responsible_vehicle(self, position: Point) -> Optional[VehicleProcess]:
        """The vehicle currently answering for ``position``'s pair, if any."""
        identity = self.registry.get(self.pair_key_of(position))
        if identity is None:
            return None
        return self.vehicles[identity]

    def route_positions(self, positions) -> List[Optional[Point]]:
        """Whole-sequence arrival routing: positions -> pair black vertices.

        One vectorized ``pair_ids_of`` lookup resolves the entire batch;
        ``None`` marks positions no built cube covers (delivering those
        falls back to the scalar path, which reports the historical
        ``KeyError``).  The returned keys feed ``deliver_job(pair_key=...)``
        so per-arrival dispatch skips the position->pair dict chain.
        """
        if not len(positions):
            return []
        flat = self.flat
        keys = flat.pair_keys
        if len(positions) <= 8:
            # Steady-state streaming refills one arrival at a time; the
            # scalar read beats a one-row numpy round-trip by ~20x (the
            # property suite pins both paths to the same answers).
            ids = [flat.pair_id_at(position) for position in positions]
        else:
            ids = flat.pair_ids_of(np.asarray(positions, dtype=np.int64)).tolist()
        return [keys[i] if i >= 0 else None for i in ids]

    def deliver_job(
        self,
        position: Point,
        energy: float = 1.0,
        *,
        settle: bool = True,
        pair_key: Optional[Point] = None,
    ) -> bool:
        """Route one job to its pair's active vehicle.

        Returns whether the job was actually served.  The caller decides how
        to handle a refusal (retry after recovery rounds, or count it as
        unserved).  With ``settle=True`` (the round-mode default) the network
        is drained before returning -- the thesis assumes inter-arrival gaps
        long enough for any protocol activity (Phase I/II) to complete.  The
        event-mode harness passes ``settle=False`` and lets the shared
        simulator process protocol messages in timestamp order between
        arrival events instead.  ``pair_key`` short-circuits routing with a
        pre-resolved pair (see :meth:`route_positions`).
        """
        self.stats.jobs_delivered += 1
        if pair_key is None:
            vehicle = self.responsible_vehicle(position)
        else:
            identity = self.registry.get(pair_key)
            vehicle = self.vehicles[identity] if identity is not None else None
        served = False
        if vehicle is not None and not vehicle.broken:
            served = vehicle.serve_job(tuple(int(c) for c in position), energy)
        if not served:
            self.stats.jobs_unserved += 1
        if settle:
            self.settle()
        return served

    def retry_job(self, position: Point, energy: float = 1.0, *, settle: bool = True) -> bool:
        """Retry a previously unserved job (after recovery); adjusts counters."""
        vehicle = self.responsible_vehicle(position)
        if vehicle is None or vehicle.broken:
            return False
        served = vehicle.serve_job(tuple(int(c) for c in position), energy)
        if served:
            self.stats.jobs_unserved -= 1
        if settle:
            self.settle()
        return served

    def settle(self) -> None:
        """Drain all in-flight messages."""
        self.network.run_until_quiescent()

    # ------------------------------------------------------------------ #
    # monitoring
    # ------------------------------------------------------------------ #

    def _vehicles_by_index(self) -> List[Optional[VehicleProcess]]:
        """Dense-index -> vehicle lookup (``None`` for registry slots whose
        vehicle was never registered with the fleet, e.g. stand-alone test
        vehicles -- the historical dict loops never visited those either)."""
        cached = self._by_index_cache
        if (
            cached is not None
            and len(cached) == len(self.flat.positions)
            and self._by_index_count == len(self.vehicles)
        ):
            return cached
        by_index: List[Optional[VehicleProcess]] = [None] * len(self.flat.positions)
        for vehicle in self.vehicles.values():
            by_index[vehicle._index] = vehicle
        self._by_index_cache = by_index
        self._by_index_count = len(self.vehicles)
        return by_index

    def run_heartbeat_round(self, *, settle: bool = True) -> None:
        """One monitoring round: every live active vehicle heartbeats.

        Before the heartbeats, the search-starvation clocks tick: a
        diffusing computation stuck across ``config.search_timeout_rounds``
        rounds (possible only when the transport lost or corrupted its
        replies) is abandoned through the legal Figure 3.1 arrows, so the
        watch loop cannot deadlock.

        The sweep is registry-native: only the engaged set (vehicles with
        non-trivial search state -- for every other vehicle the tick is a
        strict no-op) is ticked, and the round's sender set is one
        vectorized read of the state/broken arrays, so a fully quiescent
        round costs O(active) instead of two O(n) object walks.  Both
        iterations run in ascending dense-index order -- the historical
        dict order -- so message sequence numbers (and with them every
        golden hash) are unchanged.
        """
        self._heartbeat_round += 1
        self.stats.heartbeat_rounds += 1
        round_id = self._heartbeat_round
        timeout = self.config.search_timeout_rounds
        miss = self.config.heartbeat_miss_threshold
        flat = self.flat
        by_index = self._vehicles_by_index()
        for index in sorted(flat.engaged):
            vehicle = by_index[index]
            if vehicle is not None:
                vehicle.tick_search_timeout(timeout)
        senders = np.nonzero(
            (flat.state_view() == STATE_ACTIVE) & (flat.broken_view() == 0)
        )[0]
        if self.config.escalation:
            # Hierarchical heartbeats carry adopted pairs and ring watch
            # duties; their per-vehicle state does not vectorize, so every
            # live active vehicle goes through the full object path.
            for index in senders.tolist():
                vehicle = by_index[index]
                if vehicle is not None:
                    vehicle.heartbeat(round_id, miss)
        elif self.config.monitoring == "gossip":
            # The epidemic detector ticks every live vehicle, idle ones
            # included: silence reporting and digest relaying need no pair
            # of their own, and a cube whose crash left few active members
            # still musters enough independent reporters and co-signers.
            for index in np.nonzero(flat.broken_view() == 0)[0].tolist():
                vehicle = by_index[index]
                if vehicle is not None:
                    vehicle.gossip_tick(round_id, miss)
        else:
            self._plain_heartbeats(senders, round_id, miss, by_index)
        if settle:
            self.settle()

    def _plain_heartbeats(
        self,
        senders: np.ndarray,
        round_id: int,
        miss: int,
        by_index: List[Optional[VehicleProcess]],
    ) -> None:
        """Cube-local heartbeats with the miss check precomputed in bulk.

        The watched-pair expiry test is a vectorized read of the registry's
        watch-heard mirror; only vehicles whose watch *may* fire (or whose
        mirror says so conservatively -- e.g. a vehicle watching its own
        pair) take the full per-object ``heartbeat`` path, which re-checks
        everything against authoritative state.  The rest emit exactly the
        broadcast the full path would have sent -- same message, same
        sequence position -- and nothing else.
        """
        flat = self.flat
        heard = flat.watch_heard_view()[senders]
        last = np.where(heard == WATCH_NEVER, self.monitoring_baseline, heard)
        flagged = (round_id - last) >= miss
        # An unflagged sender with no cube peers does nothing at all in the
        # loop below; dropping those up front makes a fully quiescent round
        # (singleton cubes, nothing watched) two vectorized reads instead
        # of an O(n) object sweep.
        live = flagged | (flat.peers_view()[senders] != 0)
        if not live.all():
            senders = senders[live]
            flagged = flagged[live]
        for position, index in enumerate(senders.tolist()):
            vehicle = by_index[index]
            if vehicle is None:
                continue
            if flagged[position]:
                vehicle.heartbeat(round_id, miss)
            elif vehicle.cube_peers:
                vehicle.send_many(
                    vehicle.cube_peers,
                    ExistingMessage(vehicle.identity, vehicle.pair_key, round_id),
                )

    def crash_vehicle(self, identity: Point) -> None:
        """Scenario 3: the vehicle breaks down and becomes dead.

        A dead vehicle can no longer move, serve jobs or heartbeat, but its
        radio keeps relaying protocol messages (communication is free in the
        thesis's model), so diffusing computations still terminate.
        """
        identity = tuple(int(c) for c in identity)
        if identity not in self.vehicles:
            raise KeyError(f"no vehicle at {identity}")
        vehicle = self.vehicles[identity]
        # Start the detection-latency clock for every pair this vehicle
        # answers for (its own plus any adoptions); initial-dead crashes
        # land here at round 0, before monitoring starts.
        pairs = ([vehicle.pair_key] if vehicle.pair_key is not None else []) + list(
            vehicle.adopted_pairs
        )
        for pair_key in pairs:
            if self.registry.get(pair_key) == identity:
                self._crash_rounds.setdefault(pair_key, self._heartbeat_round)
        vehicle.mark_broken()

    def revive_vehicle(self, identity: Point) -> None:
        """Churn rejoin: the broken vehicle at ``identity`` is repaired.

        The repaired vehicle keeps its working state; if a replacement has
        already taken over its pair it simply rejoins as a healthy idle
        peer available to later searches.
        """
        identity = tuple(int(c) for c in identity)
        if identity not in self.vehicles:
            raise KeyError(f"no vehicle at {identity}")
        vehicle = self.vehicles[identity]
        vehicle.mark_repaired()
        # A revival before detection cancels the latency clock: the pair
        # is answered for again without any replacement having initiated.
        for pair_key in [p for p in self._crash_rounds if self.registry.get(p) == identity]:
            del self._crash_rounds[pair_key]
        if self.config.hand_back:
            self._offer_hand_back(vehicle)

    def _offer_hand_back(self, vehicle: VehicleProcess) -> None:
        """Proactive load shedding on a churn rejoin (``config.hand_back``).

        If the revived vehicle was active for a pair that an adopter is
        meanwhile answering for, ask the adopter to offer the pair back:
        the adopter sends the revived owner the legal escalated move order,
        the owner's reclaim re-registers the pair and broadcasts an
        activation notice, and the notice releases the adoption.  Every hop
        is an ordinary protocol message, so the exchange is drop-safe under
        a lossy transport: a lost order leaves the adopter serving (status
        quo), a lost notice leaves the registry pointing at the owner while
        the adopter redundantly heartbeats -- never an orphaned pair.
        """
        pair_key = vehicle.pair_key
        if pair_key is None or vehicle.status.working != WorkingState.ACTIVE:
            return
        holder_identity = self.registry.get(pair_key)
        if holder_identity is None or holder_identity == vehicle.identity:
            return
        holder = self.vehicles.get(holder_identity)
        if holder is None or holder.broken or pair_key not in holder.adopted_pairs:
            return
        holder.offer_hand_back(pair_key, vehicle.identity)

    # ------------------------------------------------------------------ #
    # measurements
    # ------------------------------------------------------------------ #

    def vehicle_energies(self) -> Dict[Point, float]:
        """Energy used so far, per vehicle home vertex.

        One pass over the registry's contiguous energy ledgers; the
        per-element sums are the exact floating-point operation the
        per-vehicle ``energy_used`` property performs, so the dictionary is
        byte-identical to the historical per-object gather.
        """
        flat = self.flat
        energies = [t + s for t, s in zip(flat.travel, flat.service)]
        return dict(zip(flat.identities, energies))

    def max_energy_used(self) -> float:
        """The largest per-vehicle energy drawn so far."""
        flat = self.flat
        return max((t + s for t, s in zip(flat.travel, flat.service)), default=0.0)

    def total_travel(self) -> float:
        """Total travel energy across the fleet (sequential sum -- the same
        float-addition order the per-object generator produced)."""
        return sum(self.flat.travel)

    def total_service(self) -> float:
        """Total service energy across the fleet."""
        return sum(self.flat.service)

    def active_vehicle_count(self) -> int:
        """Number of vehicles currently in the active working state (one
        vectorized read of the registry's state array)."""
        return int((self.flat.state_view() == STATE_ACTIVE).sum())

    def messages_sent(self) -> int:
        """Total protocol messages sent so far."""
        return self.network.messages_sent

    def messages_dropped(self) -> int:
        """Messages lost to failures or the transport so far."""
        return self.network.messages_dropped

    def messages_corrupted(self) -> int:
        """Messages the transport mutated in flight so far."""
        return self.network.transport.messages_corrupted

    @property
    def transport_kind(self) -> str:
        """Registry name of the delivery model this run uses."""
        return self.network.transport.kind
