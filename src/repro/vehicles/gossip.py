"""Deterministic peer selection and digest helpers for gossip monitoring.

The gossip failure detector (``FleetConfig.monitoring = "gossip"``)
replaces the single-watcher timer of the Section 3.2.5 monitoring ring
with three layers, following the tunable-fanout gossiping family of
De Florio & Blondia and pod-style quorum attestation:

1. **Epidemic freshness.** Every round each vehicle piggybacks a digest
   of its most recently heard ``(pair_key, round)`` entries to ``fanout``
   peers, so liveness information spreads in O(log n) rounds and survives
   the lossy/corrupting transports (which only mutate protocol messages,
   never digests).
2. **Multi-reporter suspicion.** A pair is suspected only once
   ``suspicion_threshold`` *distinct* vehicles have reported it silent --
   reports travel inside the digests, deduplicated by reporter identity.
3. **Quorum attestation.** The ring watcher collects ``quorum``
   co-signatures (``SuspectMessage``/``AttestMessage``) before starting
   the replacement search, masking up to ``quorum - 1`` Byzantine
   watchers.

Peer selection must be byte-identical at any worker, process, or shard
count, so it never consults a shared RNG: each draw is keyed blake2b
over ``(identity, per-vehicle counter, slot)``, a pure function of state
that checkpoints and restores exactly.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.grid.lattice import Point

__all__ = ["GOSSIP_KEY", "GOSSIP_ENTRY_CAP", "select_peers", "freshest_entries"]

#: Domain-separation key for the peer-selection hash.  Fixed forever:
#: changing it would silently re-route every gossip run.
GOSSIP_KEY = b"repro-gossip"

#: Maximum number of ``(pair_key, round)`` freshness entries per digest.
#: Caps digest size at O(1) per message regardless of fleet size; the
#: freshest entries are the ones worth spreading.
GOSSIP_ENTRY_CAP = 8


def _draw(identity: Hashable, counter: int, slot: int, modulus: int) -> int:
    """One deterministic draw in ``[0, modulus)`` keyed by vehicle state."""
    payload = repr((identity, counter, slot)).encode("utf-8")
    digest = hashlib.blake2b(payload, key=GOSSIP_KEY, digest_size=8).digest()
    return int.from_bytes(digest, "big") % modulus


def select_peers(
    identity: Hashable,
    counter: int,
    candidates: Sequence[Hashable],
    fanout: int,
) -> List[Hashable]:
    """Pick ``fanout`` gossip peers without replacement, deterministically.

    ``candidates`` must be in a canonical (sorted) order shared by every
    worker; the sender itself is excluded.  Sampling pops from a shrinking
    pool so the same vehicle is never drawn twice in one round, and the
    per-vehicle ``counter`` advances the stream between rounds -- two
    vehicles (or two rounds) never share a draw sequence.
    """
    pool = [peer for peer in candidates if peer != identity]
    chosen: List[Hashable] = []
    for slot in range(min(fanout, len(pool))):
        index = _draw(identity, counter, slot, len(pool))
        chosen.append(pool.pop(index))
    return chosen


def freshest_entries(
    last_heard: Dict[Point, int], cap: int = GOSSIP_ENTRY_CAP
) -> Tuple[Tuple[Point, int], ...]:
    """The ``cap`` freshest ``(pair_key, round)`` entries, canonically ordered.

    Most recent round first, ties broken by pair key so the digest is a
    pure function of the ``last_heard`` mapping (byte-identical across
    dict insertion orders).
    """
    ranked = sorted(last_heard.items(), key=lambda item: (-item[1], item[0]))
    return tuple(ranked[:cap])
