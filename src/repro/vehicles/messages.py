"""Messages exchanged by the online vehicle protocol.

Phase I (Algorithm 2) uses ``query`` and ``reply`` messages; Phase II uses a
single ``move`` message relayed along the child-pointer path.  The
monitoring extension of Section 3.2.5 adds periodic ``existing`` heartbeats
and an activation notice broadcast by a replacement vehicle so watchers can
reset their timers and the pair registry stays consistent.

Every protocol message is tagged with the identity of the computation it
belongs to: ``(initiator identity, round number)``.  The thesis notes that
tagging computations with a sequence number lets vehicles distinguish
computations started at different times by the same initiator -- the round
number plays that role.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

from repro.grid.lattice import Point

__all__ = [
    "ComputationTag",
    "QueryMessage",
    "ReplyMessage",
    "MoveMessage",
    "ExistingMessage",
    "ActivationNotice",
]

#: ``(initiator identity, round number)`` -- uniquely names one diffusing
#: computation.
ComputationTag = Tuple[Hashable, int]


@dataclass(frozen=True)
class QueryMessage:
    """Phase I query ``(init, p)``: *are you, or do you know, an idle vehicle?*"""

    tag: ComputationTag
    sender: Hashable
    #: The position the eventual replacement must move to.
    destination: Point
    #: The black vertex identifying the pair to take over.
    pair_key: Point


@dataclass(frozen=True)
class ReplyMessage:
    """Phase I reply ``(flag, p)``: ``flag`` is true when an idle vehicle was found."""

    tag: ComputationTag
    sender: Hashable
    flag: bool


@dataclass(frozen=True)
class MoveMessage:
    """Phase II order relayed along the child path to the located idle vehicle."""

    tag: ComputationTag
    sender: Hashable
    destination: Point
    pair_key: Point


@dataclass(frozen=True)
class ExistingMessage:
    """Periodic heartbeat from an active vehicle (Section 3.2.5)."""

    sender: Hashable
    #: The pair the sender is currently responsible for.
    pair_key: Point
    #: Monotone heartbeat round counter supplied by the fleet.
    round_id: int


@dataclass(frozen=True)
class ActivationNotice:
    """Broadcast by a replacement vehicle when it takes over a pair."""

    sender: Hashable
    pair_key: Point
    position: Point
