"""Messages exchanged by the online vehicle protocol.

Phase I (Algorithm 2) uses ``query`` and ``reply`` messages; Phase II uses a
single ``move`` message relayed along the child-pointer path.  The
monitoring extension of Section 3.2.5 adds periodic ``existing`` heartbeats
and an activation notice broadcast by a replacement vehicle so watchers can
reset their timers and the pair registry stays consistent.

Every protocol message is tagged with the identity of the computation it
belongs to: ``(initiator identity, round number)``.  The thesis notes that
tagging computations with a sequence number lets vehicles distinguish
computations started at different times by the same initiator -- the round
number plays that role.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

from repro.grid.lattice import Point

__all__ = [
    "ComputationTag",
    "QueryMessage",
    "ReplyMessage",
    "MoveMessage",
    "ExistingMessage",
    "ActivationNotice",
    "EscalateQuery",
    "EscalateReply",
    "GossipDigest",
    "SuspectMessage",
    "AttestMessage",
]

#: ``(initiator identity, round number)`` -- uniquely names one diffusing
#: computation.
ComputationTag = Tuple[Hashable, int]


@dataclass(frozen=True)
class QueryMessage:
    """Phase I query ``(init, p)``: *are you, or do you know, an idle vehicle?*"""

    tag: ComputationTag
    sender: Hashable
    #: The position the eventual replacement must move to.
    destination: Point
    #: The black vertex identifying the pair to take over.
    pair_key: Point


@dataclass(frozen=True)
class ReplyMessage:
    """Phase I reply ``(flag, p)``: ``flag`` is true when an idle vehicle was found."""

    tag: ComputationTag
    sender: Hashable
    flag: bool


@dataclass(frozen=True)
class MoveMessage:
    """Phase II order relayed along the child path to the located idle vehicle.

    ``escalated`` marks an order dispatched by a cross-cube escalated round
    (so the endpoint can attribute the success to the escalation counters;
    intra-cube orders leave it ``False``).
    """

    tag: ComputationTag
    sender: Hashable
    destination: Point
    pair_key: Point
    escalated: bool = False


@dataclass(frozen=True)
class ExistingMessage:
    """Periodic heartbeat from an active vehicle (Section 3.2.5)."""

    sender: Hashable
    #: The pair the sender is currently responsible for.
    pair_key: Point
    #: Monotone heartbeat round counter supplied by the fleet.
    round_id: int


@dataclass(frozen=True)
class ActivationNotice:
    """Broadcast by a replacement vehicle when it takes over a pair."""

    sender: Hashable
    pair_key: Point
    position: Point


@dataclass(frozen=True)
class EscalateQuery:
    """Cross-cube boundary query of an escalated replacement search.

    When a Phase I flood exhausts its own cube without locating a free
    vehicle, the initiator widens the diffusing computation through the
    cube hierarchy: at escalation level ``k`` it queries every vehicle of
    the base cubes newly covered by its level-``k`` ancestor cube (the
    hierarchy's deterministic escalation ring).  The query crosses cube
    boundaries -- the one thing an intra-cube ``query`` may never do --
    and is answered directly to the initiator, so the escalated round is a
    star-shaped diffusing computation whose deficit counter lives at the
    initiator: the termination-detection tree stays a tree across levels.
    """

    tag: ComputationTag
    #: The initiator; recipients reply straight back to it.
    sender: Hashable
    #: The position the eventual replacement must move to.
    destination: Point
    #: The black vertex identifying the pair to take over.
    pair_key: Point
    #: Escalation level the query belongs to (1 = parent cube).
    level: int


@dataclass(frozen=True)
class EscalateReply:
    """Answer to an :class:`EscalateQuery`.

    ``flag`` says whether the sender can take the pair over; ``spare``
    distinguishes an idle volunteer (``False`` -- it migrates, the
    classical Phase II takeover) from an *active* vehicle volunteering
    surplus battery (``True`` -- it adopts the far pair in addition to its
    own, the cross-cube move that makes ``omega_c < 1`` fleets, where no
    vehicle is ever idle, recoverable at all).  ``level`` echoes the
    query's escalation level so a reply delayed past the level's
    starvation timeout cannot drain a *later* ring's deficit counter, and
    ``position`` reports where the volunteer currently stands (the walk is
    paid from there, not from its home vertex) so the initiator ranks
    candidates by the energy they would actually spend.
    """

    tag: ComputationTag
    sender: Hashable
    flag: bool
    spare: bool = False
    level: int = 0
    position: Point = ()


@dataclass(frozen=True)
class GossipDigest:
    """Epidemic digest piggybacked to ``fanout`` deterministic peers per round.

    ``heard`` carries the sender's freshest ``(pair_key, round)`` entries
    (capped, most recent first) so liveness information spreads in
    O(log n) rounds even when direct heartbeats are lost.  ``silent``
    carries silence reports ``(pair_key, reporter, report_round)``:
    independent observations that a pair has been quiet past the miss
    threshold.  Receivers max-merge ``heard`` and union ``silent``, so a
    single report replicates without ever being double-counted -- the
    reporter identity, not the carrying digest, is what suspicion tallies.
    """

    sender: Hashable
    round_id: int
    heard: Tuple[Tuple[Point, int], ...]
    silent: Tuple[Tuple[Point, Point, int], ...]


@dataclass(frozen=True)
class SuspectMessage:
    """A watcher's request for co-signatures before taking over a pair.

    Sent cube-wide once ``suspicion_threshold`` independent silence
    reports have accumulated.  The takeover itself waits for ``quorum``
    granted :class:`AttestMessage` answers, so one lying or partitioned
    watcher can no longer trigger a replacement on its own.
    """

    sender: Hashable
    pair_key: Point
    round_id: int


@dataclass(frozen=True)
class AttestMessage:
    """A co-signature answering a :class:`SuspectMessage`.

    Honest vehicles grant only when their *own* view of the pair is stale
    past the miss threshold; a refusal is silence (no message), so a
    Byzantine attester can withhold but never forge another's signature.
    """

    sender: Hashable
    pair_key: Point
    round_id: int
    granted: bool = True
