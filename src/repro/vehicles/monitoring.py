"""The monitoring-pointer scheme of Section 3.2.5.

To survive scenario 2 (a done vehicle that fails to start its diffusing
computation) and scenario 3 (a constant number of active vehicles dying),
the thesis adds a "monitoring" pointer to every active vehicle: the
pointers form a loop over the cube's active vehicles, every vehicle
periodically announces that it still exists, and a watcher that stops
hearing from the vehicle it monitors starts a diffusing computation on its
behalf.

Because exactly one active vehicle is responsible for each black/white
*pair* at any time, the loop is most naturally expressed over pairs: the
vehicle responsible for pair ``i`` watches pair ``i + 1`` (cyclically, in
the cube's deterministic pair order).  This keeps the pointer loop intact
across replacements without any hand-off message: whoever takes over a pair
also takes over that pair's watch duty, and can recompute the watched pair
locally from the cube's coloring.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.grid.coloring import Coloring
from repro.grid.lattice import Point

__all__ = ["watched_pair_key", "build_watch_assignment"]


def watched_pair_key(coloring: Coloring, pair_key: Point) -> Optional[Point]:
    """The pair watched by whoever is responsible for ``pair_key``.

    Returns ``None`` when the cube has a single pair (nothing to watch --
    a lone pair's vehicle has no peer to monitor it, which matches the
    thesis's constant-size caveat).
    """
    keys = [pair.black for pair in coloring.pairs]
    if len(keys) <= 1:
        return None
    index = keys.index(pair_key)
    return keys[(index + 1) % len(keys)]


def build_watch_assignment(coloring: Coloring) -> Dict[Point, Optional[Point]]:
    """The full pair -> watched-pair map for one cube."""
    return {pair.black: watched_pair_key(coloring, pair.black) for pair in coloring.pairs}
