"""The monitoring-pointer scheme of Section 3.2.5.

To survive scenario 2 (a done vehicle that fails to start its diffusing
computation) and scenario 3 (a constant number of active vehicles dying),
the thesis adds a "monitoring" pointer to every active vehicle: the
pointers form a loop over the cube's active vehicles, every vehicle
periodically announces that it still exists, and a watcher that stops
hearing from the vehicle it monitors starts a diffusing computation on its
behalf.

Because exactly one active vehicle is responsible for each black/white
*pair* at any time, the loop is most naturally expressed over pairs: the
vehicle responsible for pair ``i`` watches pair ``i + 1`` (cyclically, in
the cube's deterministic pair order).  This keeps the pointer loop intact
across replacements without any hand-off message: whoever takes over a pair
also takes over that pair's watch duty, and can recompute the watched pair
locally from the cube's coloring.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.grid.coloring import Coloring
from repro.grid.lattice import Point

__all__ = [
    "watched_pair_key",
    "build_watch_assignment",
    "hierarchical_watch_ring",
    "watch_ring_inverse",
]


def watched_pair_key(coloring: Coloring, pair_key: Point) -> Optional[Point]:
    """The pair watched by whoever is responsible for ``pair_key``.

    Returns ``None`` when the cube has a single pair (nothing to watch --
    a lone pair's vehicle has no peer to monitor it, which matches the
    thesis's constant-size caveat).
    """
    keys = [pair.black for pair in coloring.pairs]
    if len(keys) <= 1:
        return None
    index = keys.index(pair_key)
    return keys[(index + 1) % len(keys)]


def build_watch_assignment(coloring: Coloring) -> Dict[Point, Optional[Point]]:
    """The full pair -> watched-pair map for one cube."""
    return {pair.black: watched_pair_key(coloring, pair.black) for pair in coloring.pairs}


def hierarchical_watch_ring(
    pairs_by_cube: Mapping[Tuple[int, ...], Sequence[Point]]
) -> Dict[Point, Point]:
    """One watch ring over *all* pairs of *all* cubes (escalation mode).

    The cube-local loop above has a blind spot the cross-cube escalation
    must close: a cube with a single pair has no peer to monitor it, so a
    dead vehicle there goes unnoticed forever -- precisely the
    ``omega_c < 1`` regime where every cube is a singleton.  In escalation
    mode the monitoring pointers therefore form a single fleet-wide loop:
    pairs are ordered by (cube multi-index, pair key), both lexicographic,
    and the vehicle responsible for each pair watches the next one.  The
    order is derivable from static fleet structure alone, so -- exactly as
    with the cube-local loop -- a replacement that takes a pair over also
    inherits its watch duty with no hand-off message, and the ring stays
    intact across any sequence of replacements.

    A fleet with a single pair maps it to itself (nothing to watch).
    """
    keys = [
        pair_key
        for index in sorted(pairs_by_cube)
        for pair_key in sorted(pairs_by_cube[index])
    ]
    return {
        pair_key: keys[(rank + 1) % len(keys)] for rank, pair_key in enumerate(keys)
    }


def watch_ring_inverse(ring: Mapping[Point, Point]) -> Dict[Point, Point]:
    """Watched pair -> watcher pair (the ring walked backwards).

    Heartbeats must *reach* the watcher: an active vehicle uses this map to
    learn which pair's cube its existence announcements additionally go to
    when its watcher lives across a cube boundary.
    """
    return {watched: watcher for watcher, watched in ring.items()}
