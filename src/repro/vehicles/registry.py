"""The flat-array fleet core: cube templates and the indexed registry.

Fleet construction used to walk every cube in Python -- one snake walk,
one pairing pass, and an ``O(k^2)`` Manhattan scan per cube, plus a dict
write per vertex -- which dominated wall-clock once fleets approached
``10^4`` vehicles.  Two observations make the whole thing batchable:

* **Cubes are translates of a handful of templates.**  Every cube of the
  partition shares its geometry with every other cube of the same *shape*
  (interior cubes all have shape ``side^dim``; clipped boundary cubes add
  a few more shapes) up to translation, and its coloring with every cube
  of the same shape and *corner parity* (the chessboard color of a vertex
  depends on the absolute coordinate sum, so translating a cube by an odd
  offset swaps black and white).  :func:`pairing_template` and
  :func:`adjacency_template` therefore compute the snake pairing and the
  radius-``r`` neighbor graph **once per (shape, parity)** in vectorized
  numpy (broadcasted pairwise Manhattan distances, index arrays into the
  lexicographic vertex order) and every cube reuses them.

* **Vehicles can be dense integers.**  :class:`FleetRegistry` assigns every
  vehicle a dense index in creation order (cube-sorted, vertices
  lexicographic -- exactly the historical order) and backs the hot
  per-vehicle quantities with contiguous arrays: home coordinates, pair
  and cube ids, the live travel/service energy ledgers, the working
  state, the current position, and the watch target.  The existing
  id/object API (``fleet.vehicles[home]``, ``vehicle.travel_energy``)
  stays intact as a thin view over these arrays, so the protocol code in
  :mod:`repro.vehicles.vehicle` and :mod:`repro.vehicles.monitoring` runs
  unmodified while fleet-level measurements (``max_energy_used``,
  ``active_vehicle_count``, ...) become single vectorized reads.

The live scalars are ``array('d')`` / ``array('b')`` typed arrays rather
than numpy arrays on purpose: element reads return plain Python floats and
ints, so protocol arithmetic stays byte-identical to the attribute-based
implementation, while ``np.frombuffer`` still gives the measurement paths
zero-copy vectorized views.
"""

from __future__ import annotations

import functools
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.coloring import Coloring, Pair, pair_index_arrays, snake_order_array
from repro.grid.lattice import Box, Point

__all__ = [
    "PairingTemplate",
    "pairing_template",
    "adjacency_template",
    "coloring_for_cube",
    "coloring_for_box",
    "FleetRegistry",
    "WATCH_NONE",
    "WATCH_NEVER",
]

#: ``array('b')`` codes of the working states (see ``WorkingState``).
STATE_IDLE = 0
STATE_ACTIVE = 1
STATE_DONE = 2

_STATE_CODES = {"idle": STATE_IDLE, "active": STATE_ACTIVE, "done": STATE_DONE}

#: Largest window (lattice-point count) the dense position->pair array is
#: built for; 8 MB of int64.  Sparse demands over larger bounding windows
#: use the dict fallback.
_DENSE_WINDOW_CAP = 1_000_000

#: ``watch_heard`` sentinel: the vehicle watches nothing, so the miss
#: threshold can never fire.  Any real round id is far below ``2**62``.
WATCH_NONE = 2**62
#: ``watch_heard`` sentinel: the vehicle watches a pair but has never heard
#: from it -- the expiry check substitutes the fleet's monitoring baseline.
#: Stored ``last_heard`` round ids are always ``>= -1`` (every write site
#: clamps against a prior value or a round id), so a large negative
#: sentinel cannot collide with real data.
WATCH_NEVER = -(2**62)

_WATCH_NONE_BYTES = array("q", [WATCH_NONE]).tobytes()


class PairingTemplate:
    """The translation-invariant structure of one cube shape (and parity).

    All index arrays refer to the cube's vertices in *lexicographic* order
    of their relative coordinates -- the order ``Box.points()`` produces
    and the order vehicles are created in.

    Attributes
    ----------
    rel:
        ``(k, dim)`` relative vertex coordinates, lexicographic.
    pair_black / pair_white:
        Per pair, the lex index of its black / white vertex (``-1`` white
        marks the leftover singleton of an odd-sized cube).  Pair order is
        the snake-walk pair order -- the order ``Coloring.pairs`` exposes.
    pair_of_vertex:
        ``(k,)`` pair id of every vertex.
    initially_active:
        ``(k,)`` bool: whether the vehicle starting at the vertex is the
        pair's initially active one (the black vertex).
    watch_next:
        ``(P,)`` pair id watched by each pair under the cube-local
        monitoring loop (``(p + 1) % P``; ``-1`` when the cube has a
        single pair -- nothing to watch).
    monitored_vertex:
        ``(k,)`` lex index of the initial watch target's black vertex for
        initially-active vertices (``-1`` elsewhere and for single-pair
        cubes), so fleet construction never walks a pair list per vehicle.
    """

    __slots__ = (
        "shape",
        "parity",
        "size",
        "rel",
        "pair_black",
        "pair_white",
        "pair_of_vertex",
        "initially_active",
        "watch_next",
        "monitored_vertex",
        "active_list",
        "vertex_pair_list",
        "monitored_list",
        "pair_black_list",
        "pair_white_list",
        "state_bytes",
    )

    def __init__(self, shape: Tuple[int, ...], parity: int) -> None:
        self.shape = shape
        self.parity = int(parity) % 2
        dim = len(shape)
        k = int(np.prod(shape))
        self.size = k
        #: lexicographic relative coordinates (C-order of ``np.indices``)
        self.rel = np.indices(shape).reshape(dim, -1).T.astype(np.int64)
        rel_box = Box((0,) * dim, tuple(s - 1 for s in shape))
        walk = snake_order_array(rel_box)
        walk_lex = np.ravel_multi_index(tuple(walk.T), shape)
        black_walk, white_walk = pair_index_arrays(walk, self.parity)
        self.pair_black = walk_lex[black_walk]
        has_white = white_walk >= 0
        pair_white = np.full(len(black_walk), -1, dtype=np.int64)
        pair_white[has_white] = walk_lex[white_walk[has_white]]
        self.pair_white = pair_white

        num_pairs = len(self.pair_black)
        pair_of_vertex = np.empty(k, dtype=np.int64)
        pair_of_vertex[self.pair_black] = np.arange(num_pairs)
        pair_of_vertex[pair_white[has_white]] = np.arange(num_pairs)[has_white]
        self.pair_of_vertex = pair_of_vertex

        initially_active = np.zeros(k, dtype=bool)
        initially_active[self.pair_black] = True
        self.initially_active = initially_active

        if num_pairs > 1:
            watch_next = (np.arange(num_pairs) + 1) % num_pairs
        else:
            watch_next = np.full(num_pairs, -1, dtype=np.int64)
        self.watch_next = watch_next

        monitored = np.full(k, -1, dtype=np.int64)
        watched_pair = watch_next[pair_of_vertex[self.pair_black]]
        watchable = watched_pair >= 0
        monitored[self.pair_black[watchable]] = self.pair_black[watched_pair[watchable]]
        self.monitored_vertex = monitored

        # Plain-list (and bytes) views, converted once per template so the
        # per-cube construction loop never calls ``tolist`` again.
        self.active_list = initially_active.tolist()
        self.vertex_pair_list = pair_of_vertex.tolist()
        self.monitored_list = monitored.tolist()
        self.pair_black_list = self.pair_black.tolist()
        self.pair_white_list = pair_white.tolist()
        self.state_bytes = initially_active.astype(np.int8).tobytes()

    def pairs_for(self, verts: Sequence[Point]) -> List[Pair]:
        """The cube's :class:`Pair` list over its absolute vertex tuples."""
        return [
            Pair(black=verts[b], white=verts[w] if w >= 0 else None)
            for b, w in zip(self.pair_black_list, self.pair_white_list)
        ]


@functools.lru_cache(maxsize=1024)
def pairing_template(shape: Tuple[int, ...], parity: int) -> PairingTemplate:
    """The (cached) pairing structure of a cube shape and corner parity."""
    return PairingTemplate(shape, parity)


@functools.lru_cache(maxsize=1024)
def adjacency_template(
    shape: Tuple[int, ...], radius: int
) -> Tuple[Tuple[int, ...], ...]:
    """Per-vertex neighbor lists of one cube shape, as lex-index tuples.

    Entry ``i`` lists (ascending) the lex indices of the vertices within
    Manhattan distance ``radius`` of vertex ``i``, excluding ``i`` itself
    -- the communication graph of Algorithm 2, identical to the historical
    per-vertex scan.  One broadcasted ``(k, k)`` distance computation
    replaces ``k^2`` Python ``manhattan`` calls per cube.
    """
    dim = len(shape)
    rel = np.indices(shape).reshape(dim, -1).T.astype(np.int64)
    dist = np.abs(rel[:, None, :] - rel[None, :, :]).sum(axis=2)
    adjacent = (dist <= radius) & (dist > 0)
    return tuple(tuple(np.nonzero(row)[0].tolist()) for row in adjacent)


#: Shared colorings keyed by cube box.  Colorings are immutable after
#: construction and the same cube geometry recurs across runs (sweeps,
#: benchmarks), so they are cached exactly as the old per-box ``lru_cache``
#: did -- but construction now reuses the cached pairing template instead
#: of re-walking the cube, and the fleet's batch constructor passes the
#: vertex tuples it already materialized.
_COLORING_CACHE: Dict[Tuple[Point, Point], Coloring] = {}
_COLORING_CACHE_MAX = 8192


def coloring_for_cube(
    lo: Point, hi: Point, *, verts: Optional[Sequence[Point]] = None
) -> Coloring:
    """One shared :class:`Coloring` per cube ``[lo, hi]``.

    Keyed by the corner tuples so the (hot) cache-hit path never has to
    construct and validate a :class:`Box`.
    """
    key = (lo, hi)
    coloring = _COLORING_CACHE.get(key)
    if coloring is None:
        box = Box(lo, hi)
        template = pairing_template(box.side_lengths, sum(lo) % 2)
        if verts is None:
            verts = [
                tuple(row)
                for row in (template.rel + np.asarray(lo, dtype=np.int64)).tolist()
            ]
        coloring = Coloring.from_pairs(box, template.pairs_for(verts))
        if len(_COLORING_CACHE) >= _COLORING_CACHE_MAX:
            # FIFO eviction (dicts iterate in insertion order): keeps the
            # cache bounded without pinning the first 8192 geometries
            # forever, matching the spirit of the lru_cache it replaced.
            _COLORING_CACHE.pop(next(iter(_COLORING_CACHE)))
        _COLORING_CACHE[key] = coloring
    return coloring


def coloring_for_box(box: Box, *, verts: Optional[Sequence[Point]] = None) -> Coloring:
    """One shared :class:`Coloring` per cube box, built from the template."""
    return coloring_for_cube(box.lo, box.hi, verts=verts)


class FleetRegistry:
    """Dense vehicle indices backing the fleet's contiguous state arrays.

    Construction happens in two phases: the fleet appends one cube at a
    time (:meth:`add_cube`, in cube-sorted order) and then
    :meth:`finalize` freezes the static topology into numpy arrays.  The
    live per-vehicle scalars (energy ledgers, working state, position,
    watch target) are typed arrays written through by the
    :class:`~repro.vehicles.vehicle.VehicleProcess` property layer.
    """

    def __init__(self, window: Box) -> None:
        self.window = window
        self.dim = window.dim
        #: identity tuple -> dense index, in creation order.
        self.index_of: Dict[Point, int] = {}
        #: dense index -> identity tuple (the inverse view).
        self.identities: List[Point] = []
        #: cube multi-index -> cube id, in creation (= sorted) order.
        self.cube_id_of: Dict[Tuple[int, ...], int] = {}
        #: per cube id, the ``[start, stop)`` dense-index range of its
        #: vehicles -- cube membership at construction time is a slice.
        self.cube_slices: List[Tuple[int, int]] = []
        #: pair key tuple -> dense pair id, in creation order.
        self.pair_id_of: Dict[Point, int] = {}
        self.pair_keys: List[Point] = []
        self._pair_cube_ids: List[int] = []
        self._vehicle_pair_chunks: List[np.ndarray] = []
        self._home_chunks: List[np.ndarray] = []
        self._active_chunks: List[np.ndarray] = []

        # -- live state (typed arrays: plain-Python element reads) --
        self.travel = array("d")
        self.service = array("d")
        self.state = array("b")
        self.broken = array("b")
        #: watch target as a pair id (``-1`` = watching nothing).
        self.watch = array("q")
        #: last round the watched pair was heard from -- a mirror of each
        #: vehicle's ``last_heard[monitored_pair]`` entry (``WATCH_NONE`` /
        #: ``WATCH_NEVER`` sentinels), so the heartbeat round can compute
        #: miss-threshold expiries as one vectorized read.
        self.watch_heard = array("q")
        #: 1 where the vehicle has cube peers to broadcast to, 0 where it
        #: is alone in its cube.  Mirrors ``vehicle.cube_peers`` (written
        #: by its setter on every reassignment); lets the plain heartbeat
        #: round drop unflagged peerless senders -- strict no-ops -- before
        #: the per-object loop.
        self.peers = array("b")
        #: dense indices of vehicles with non-trivial search state (an
        #: engaged tag, live escalations, or a running search-timeout
        #: clock).  Maintained incrementally by the vehicle state machine;
        #: ``tick_search_timeout`` sweeps only these indices, so a fully
        #: quiescent round costs O(engaged) instead of O(n).
        self.engaged: set = set()
        #: current position per vehicle (tuples; reads must stay exact).
        self.positions: List[Point] = []

        # -- frozen by finalize() --
        self.count = 0
        self.homes: Optional[np.ndarray] = None
        self.vehicle_pair: Optional[np.ndarray] = None
        self.initially_active: Optional[np.ndarray] = None
        self.pair_black: Optional[np.ndarray] = None
        self.pair_cube: Optional[np.ndarray] = None
        self._pos_pair: Optional[np.ndarray] = None
        self._pair_window: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_cube(
        self,
        index: Tuple[int, ...],
        template: PairingTemplate,
        verts: List[Point],
        coords: np.ndarray,
    ) -> Tuple[int, List[Point]]:
        """Register one cube's vertices and pairs; returns (base index, pair keys).

        ``verts`` must be the cube's absolute vertex tuples in
        lexicographic order (the template's ``rel`` order translated), and
        ``coords`` the same vertices as a ``(k, dim)`` array view.
        """
        return self.add_cubes([(index, template, verts, coords)])[0]

    def add_cubes(
        self,
        entries: List[Tuple[Tuple[int, ...], PairingTemplate, List[Point], np.ndarray]],
    ) -> List[Tuple[int, List[Point]]]:
        """Register many cubes at once; returns one (base, pair keys) per entry.

        Equivalent to calling :meth:`add_cube` per entry in order, but the
        vertex/pair dict inserts, identity extends, and live-state array
        fills happen as one bulk operation each instead of one per cube --
        the per-cube overhead dominates construction when cubes are small
        (a singleton-cube fleet is nothing *but* overhead).  Insertion
        order within every dict and array is exactly the per-cube order,
        so the registry contents are byte-identical.
        """
        results: List[Tuple[int, List[Point]]] = []
        base = len(self.identities)
        pair_base = len(self.pair_keys)
        cube_id = len(self.cube_slices)
        all_verts: List[Point] = []
        all_pairs: List[Point] = []
        state_chunks: List[bytes] = []
        for index, template, verts, coords in entries:
            k = len(verts)
            self.cube_id_of[index] = cube_id
            self.cube_slices.append((base, base + k))
            pair_keys = [verts[b] for b in template.pair_black_list]
            self._pair_cube_ids.extend([cube_id] * len(pair_keys))
            self._vehicle_pair_chunks.append(template.pair_of_vertex + pair_base)
            self._active_chunks.append(template.initially_active)
            self._home_chunks.append(coords)
            state_chunks.append(template.state_bytes)
            all_verts.extend(verts)
            all_pairs.extend(pair_keys)
            results.append((base, pair_keys))
            base += k
            pair_base += len(pair_keys)
            cube_id += 1

        start = len(self.identities)
        total = len(all_verts)
        self.index_of.update(zip(all_verts, range(start, start + total)))
        self.identities.extend(all_verts)
        pair_start = len(self.pair_keys)
        self.pair_id_of.update(
            zip(all_pairs, range(pair_start, pair_start + len(all_pairs)))
        )
        self.pair_keys.extend(all_pairs)

        # Bulk live-state allocation for the cubes' vehicles: zeroed energy
        # ledgers, the templates' initial working states, empty watch slots.
        # VehicleProcess then finds its slot pre-filled and skips the
        # per-vehicle append path entirely.
        zeros = bytes(8 * total)
        self.travel.frombytes(zeros)
        self.service.frombytes(zeros)
        self.state.frombytes(b"".join(state_chunks))
        self.broken.frombytes(bytes(total))
        # -1 in two's-complement int64 is all-ones bytes.
        self.watch.frombytes(b"\xff" * (8 * total))
        self.watch_heard.frombytes(_WATCH_NONE_BYTES * total)
        self.peers.frombytes(bytes(total))
        self.positions.extend(all_verts)
        return results

    def finalize(self) -> None:
        """Freeze the static topology into flat arrays."""
        self.count = len(self.identities)
        self.homes = (
            np.concatenate(self._home_chunks)
            if self._home_chunks
            else np.empty((0, self.dim), dtype=np.int64)
        )
        self.vehicle_pair = (
            np.concatenate(self._vehicle_pair_chunks)
            if self._vehicle_pair_chunks
            else np.empty(0, dtype=np.int64)
        )
        self.initially_active = (
            np.concatenate(self._active_chunks)
            if self._active_chunks
            else np.empty(0, dtype=bool)
        )
        self.pair_black = (
            np.asarray(self.pair_keys, dtype=np.int64)
            if self.pair_keys
            else np.empty((0, self.dim), dtype=np.int64)
        )
        self.pair_cube = np.asarray(self._pair_cube_ids, dtype=np.int64)
        del self._home_chunks, self._vehicle_pair_chunks, self._active_chunks

        # Flat window lookup: position -> pair id (-1 where no pair was
        # built).  Powers the vectorized batch router; the per-job hot path
        # keeps its dict (a tuple-keyed dict hit beats re-deriving a flat
        # offset in Python for single lookups).  A sparse demand over a
        # huge bounding window (two far corners) would make the dense
        # array enormous, so past the cap the lookups fall back to the
        # dict path -- same answers, no O(window) memory.
        window = self.window
        shape = window.side_lengths
        if int(np.prod(shape)) <= _DENSE_WINDOW_CAP:
            lo = np.asarray(window.lo, dtype=np.int64)
            pos_pair = np.full(int(np.prod(shape)), -1, dtype=np.int64)
            if self.count:
                flat = np.ravel_multi_index(tuple((self.homes - lo).T), shape)
                pos_pair[flat] = self.vehicle_pair
            self._pos_pair = pos_pair
            # Cached (lo, hi, side_lengths) tuples: the scalar read is on
            # the per-arrival streaming path, where re-deriving the
            # side_lengths property per call is measurable.
            self._pair_window = (window.lo, window.hi, shape)
        else:
            self._pos_pair = None

    def allocate_live_state(self, home: Point, active: bool) -> int:
        """Install the live-state slots for one stand-alone vehicle.

        The batch constructor pre-fills whole cubes in :meth:`add_cube`;
        this append path serves vehicles created outside it.
        """
        index = len(self.positions)
        self.travel.append(0.0)
        self.service.append(0.0)
        self.state.append(STATE_ACTIVE if active else STATE_IDLE)
        self.broken.append(0)
        self.watch.append(-1)
        self.watch_heard.append(WATCH_NONE)
        self.peers.append(0)
        self.positions.append(home)
        return index

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def pair_id_at(self, position: Point) -> int:
        """Pair id covering ``position`` (``-1`` when none; O(1) read)."""
        if self._pos_pair is None:
            index = self.index_of.get(tuple(position))
            return -1 if index is None else int(self.vehicle_pair[index])
        lo, hi, sides = self._pair_window
        flat = 0
        for c, l, h, s in zip(position, lo, hi, sides):
            if c < l or c > h:
                return -1
            flat = flat * s + (c - l)
        return int(self._pos_pair[flat])

    def pair_ids_of(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized position -> pair id lookup for an ``(n, dim)`` array."""
        positions = np.asarray(positions, dtype=np.int64)
        if self._pos_pair is None:
            return np.fromiter(
                (self.pair_id_at(tuple(row)) for row in positions.tolist()),
                dtype=np.int64,
                count=len(positions),
            )
        lo = np.asarray(self.window.lo, dtype=np.int64)
        shape = self.window.side_lengths
        offsets = positions - lo
        inside = np.all((offsets >= 0) & (offsets < np.asarray(shape)), axis=1)
        result = np.full(len(offsets), -1, dtype=np.int64)
        if inside.any():
            flat = np.ravel_multi_index(tuple(offsets[inside].T), shape)
            result[inside] = self._pos_pair[flat]
        return result

    # -- vectorized measurement reads over the live arrays --

    def travel_view(self) -> np.ndarray:
        """Zero-copy numpy view of the per-vehicle travel energies."""
        return np.frombuffer(self.travel, dtype=np.float64)

    def service_view(self) -> np.ndarray:
        """Zero-copy numpy view of the per-vehicle service energies."""
        return np.frombuffer(self.service, dtype=np.float64)

    def state_view(self) -> np.ndarray:
        """Zero-copy numpy view of the per-vehicle working-state codes."""
        return np.frombuffer(self.state, dtype=np.int8)

    def broken_view(self) -> np.ndarray:
        """Zero-copy numpy view of the per-vehicle broken flags."""
        return np.frombuffer(self.broken, dtype=np.int8)

    def watch_heard_view(self) -> np.ndarray:
        """Zero-copy numpy view of the watched-pair last-heard rounds."""
        return np.frombuffer(self.watch_heard, dtype=np.int64)

    def peers_view(self) -> np.ndarray:
        """Zero-copy numpy view of the has-cube-peers flags."""
        return np.frombuffer(self.peers, dtype=np.int8)

    def state_code(self, working) -> int:
        """The array code of a :class:`~repro.vehicles.state.WorkingState`."""
        return _STATE_CODES[working.value]
