"""The vehicle state machine of Figure 3.1.

A vehicle's state is a pair ``(S1, S2)``: ``S1`` is the *working* state
(idle / active / done) and ``S2`` the *message-transfer* state (waiting /
searching / initiator).  The combinations ``(active, initiator)`` and
``(idle, initiator)`` are invalid: only a done vehicle initiates a diffusing
computation.  (The monitoring extension of Section 3.2.5 lets a *watcher*
start a computation *on behalf of* a silent neighbor; that computation's
initiator role is tracked separately from the state machine so the
Figure 3.1 invariant still holds for the vehicle's own state.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, FrozenSet, Optional, Tuple

__all__ = ["WorkingState", "TransferState", "VehicleStatus", "VALID_STATES"]


class WorkingState(str, Enum):
    """The working state ``S1``."""

    IDLE = "idle"
    ACTIVE = "active"
    DONE = "done"


class TransferState(str, Enum):
    """The message-transfer state ``S2``."""

    WAITING = "waiting"
    SEARCHING = "searching"
    INITIATOR = "initiator"


#: The seven valid combined states of Figure 3.1.
VALID_STATES: FrozenSet[Tuple[WorkingState, TransferState]] = frozenset(
    {
        (WorkingState.IDLE, TransferState.WAITING),
        (WorkingState.IDLE, TransferState.SEARCHING),
        (WorkingState.ACTIVE, TransferState.WAITING),
        (WorkingState.ACTIVE, TransferState.SEARCHING),
        (WorkingState.DONE, TransferState.WAITING),
        (WorkingState.DONE, TransferState.SEARCHING),
        (WorkingState.DONE, TransferState.INITIATOR),
    }
)

#: Allowed transitions of the combined state machine.  Working-state changes
#: are: idle -> active (replacement move) and active -> done (energy
#: exhausted).  Transfer-state changes are waiting <-> searching for every
#: working state and waiting <-> initiator for done vehicles only.
VALID_TRANSITIONS: FrozenSet[
    Tuple[Tuple[WorkingState, TransferState], Tuple[WorkingState, TransferState]]
] = frozenset(
    {
        # transfer-state toggles within a fixed working state
        ((WorkingState.IDLE, TransferState.WAITING), (WorkingState.IDLE, TransferState.SEARCHING)),
        ((WorkingState.IDLE, TransferState.SEARCHING), (WorkingState.IDLE, TransferState.WAITING)),
        ((WorkingState.ACTIVE, TransferState.WAITING), (WorkingState.ACTIVE, TransferState.SEARCHING)),
        ((WorkingState.ACTIVE, TransferState.SEARCHING), (WorkingState.ACTIVE, TransferState.WAITING)),
        ((WorkingState.DONE, TransferState.WAITING), (WorkingState.DONE, TransferState.SEARCHING)),
        ((WorkingState.DONE, TransferState.SEARCHING), (WorkingState.DONE, TransferState.WAITING)),
        # a done vehicle initiates and, on termination, returns to waiting
        ((WorkingState.DONE, TransferState.INITIATOR), (WorkingState.DONE, TransferState.WAITING)),
        # becoming done while waiting immediately initiates (Algorithm 2)
        ((WorkingState.ACTIVE, TransferState.WAITING), (WorkingState.DONE, TransferState.INITIATOR)),
        # scenario 2: a done vehicle that fails to initiate just becomes (done, waiting)
        ((WorkingState.ACTIVE, TransferState.WAITING), (WorkingState.DONE, TransferState.WAITING)),
        # an idle vehicle receiving a move order becomes active
        ((WorkingState.IDLE, TransferState.WAITING), (WorkingState.ACTIVE, TransferState.WAITING)),
    }
)


@dataclass
class VehicleStatus:
    """A validated ``(S1, S2)`` pair with transition checking."""

    working: WorkingState = WorkingState.IDLE
    transfer: TransferState = TransferState.WAITING
    #: Optional hook invoked with the new working state whenever it changes;
    #: the fleet's flat-array registry uses it to keep its contiguous
    #: working-state array in sync without touching the transition logic.
    observer: Optional[Callable[[WorkingState], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if (self.working, self.transfer) not in VALID_STATES:
            raise ValueError(f"invalid vehicle state ({self.working}, {self.transfer})")

    def as_tuple(self) -> Tuple[WorkingState, TransferState]:
        """The combined state as a tuple."""
        return (self.working, self.transfer)

    def transition(self, working: WorkingState, transfer: TransferState) -> None:
        """Move to a new combined state, enforcing Figure 3.1's arrows."""
        target = (working, transfer)
        if target not in VALID_STATES:
            raise ValueError(f"invalid vehicle state {target}")
        if target == self.as_tuple():
            return
        if (self.as_tuple(), target) not in VALID_TRANSITIONS:
            raise ValueError(
                f"illegal transition {self.as_tuple()} -> {target} "
                "(not an arrow of Figure 3.1)"
            )
        changed = working != self.working
        self.working = working
        self.transfer = transfer
        if changed and self.observer is not None:
            self.observer(working)

    def set_transfer(self, transfer: TransferState) -> None:
        """Change only the message-transfer component."""
        self.transition(self.working, transfer)

    def set_working(self, working: WorkingState) -> None:
        """Change only the working component."""
        self.transition(working, self.transfer)

    def __str__(self) -> str:
        return f"({self.working.value}, {self.transfer.value})"
