"""The vehicle process: job service, Phase I/II, heartbeats.

One :class:`VehicleProcess` lives at every vertex of every cube that can
receive jobs.  The process implements, faithfully to Algorithm 2:

* **Job service.**  The active vehicle of a pair serves every job arriving
  at either vertex of its pair, walking at most distance one and spending
  walk-plus-service energy.  When its remaining energy drops below the
  ``done_threshold`` it declares itself done.
* **Phase I.**  A done vehicle initiates a Dijkstra--Scholten diffusing
  computation over the cube's communication graph to locate an idle
  vehicle; intermediate vehicles flood queries, aggregate replies with
  deficit counters and remember the first positive responder as their
  ``child``.
* **Phase II.**  The initiator relays a move order along the child path;
  the located idle vehicle walks to the done vehicle's position, becomes
  active for the pair, and broadcasts an activation notice.
* **Monitoring (Section 3.2.5).**  Active vehicles heartbeat every round;
  the watcher of a silent pair starts a replacement computation on its
  behalf.  This covers scenario 2 (initiation failure) and scenario 3
  (dead vehicles).

Energy accounting is the whole point of the thesis, so it is explicit:
travel and service energies are tracked separately, a finite capacity is
enforced (a vehicle physically cannot overspend), and the fleet aggregates
the per-vehicle maxima the experiments report.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, TYPE_CHECKING

from repro.distsim.process import Process
from repro.grid.coloring import Coloring
from repro.grid.lattice import Point, manhattan
from repro.vehicles.messages import (
    ActivationNotice,
    ComputationTag,
    ExistingMessage,
    MoveMessage,
    QueryMessage,
    ReplyMessage,
)
from repro.vehicles.monitoring import watched_pair_key
from repro.vehicles.state import TransferState, VehicleStatus, WorkingState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vehicles.fleet import Fleet

__all__ = ["VehicleProcess"]

ENERGY_EPS = 1e-9


class VehicleProcess(Process):
    """A single vehicle of the online protocol.

    Parameters
    ----------
    home:
        The vehicle's home vertex; doubles as its identity.
    cube_index:
        Multi-index of the cube the vehicle belongs to.
    coloring:
        The cube's black/white pairing (shared by all vehicles of the cube).
    initially_active:
        Whether the vehicle starts active (black vertex of its pair).
    capacity:
        Battery capacity ``W``; ``None`` means unbounded (measurement mode).
    neighbors:
        Identities of the vehicles it can message directly (same cube,
        within the constant communication radius).
    fleet:
        Back-reference used for registry callbacks and statistics.
    done_threshold:
        Remaining energy below which an active vehicle declares itself done.
    """

    def __init__(
        self,
        home: Point,
        *,
        cube_index: tuple,
        coloring: Coloring,
        initially_active: bool,
        capacity: Optional[float],
        neighbors: List[Point],
        fleet: "Fleet",
        done_threshold: float = 2.0,
        cube_peers: Optional[List[Point]] = None,
    ) -> None:
        super().__init__(home)
        self.home: Point = tuple(int(c) for c in home)
        self.position: Point = self.home
        self.cube_index = cube_index
        self.coloring = coloring
        self.capacity = capacity
        self.neighbors = list(neighbors)
        #: All other vehicles of the same cube.  Heartbeats and activation
        #: notices are broadcast cube-wide (communication is free in the
        #: thesis's model and a cube has constant diameter in omega), while
        #: the Phase I diffusing computation only uses the constant-radius
        #: ``neighbors`` graph, as in Algorithm 2.
        self.cube_peers = list(cube_peers) if cube_peers is not None else list(neighbors)
        self.fleet = fleet
        self.done_threshold = done_threshold
        #: Scenario 3: a broken ("dead") vehicle can no longer move, serve or
        #: heartbeat, but its radio still works (it answers queries), so the
        #: diffusing computations of its neighbors still terminate.
        self.broken = False

        self.status = VehicleStatus(
            working=WorkingState.ACTIVE if initially_active else WorkingState.IDLE,
            transfer=TransferState.WAITING,
        )
        pair = coloring.pair_of(self.home)
        #: The black vertex of the pair this vehicle is responsible for
        #: (``None`` while idle).
        self.pair_key: Optional[Point] = pair.black if initially_active else None
        #: The pair this vehicle watches for heartbeats (monitoring scheme).
        self.monitored_pair: Optional[Point] = (
            watched_pair_key(coloring, pair.black) if initially_active else None
        )

        # Energy ledger.
        self.travel_energy = 0.0
        self.service_energy = 0.0
        self.jobs_served = 0

        # Phase I bookkeeping (Algorithm 2 local data: num / par / child / init).
        self.engaged_tag: Optional[ComputationTag] = None
        self.last_tag: Optional[ComputationTag] = None
        self.parent: Optional[Hashable] = None
        self.child: Optional[Hashable] = None
        self.deficit = 0
        #: Computations this vehicle initiated, keyed by tag; values carry the
        #: destination and pair being replaced.
        self.initiated: Dict[ComputationTag, Dict[str, Point]] = {}

        # Monitoring bookkeeping: last heartbeat round heard per pair.
        self.last_heard: Dict[Point, int] = {}
        # Search-starvation clock: how many consecutive heartbeat rounds the
        # vehicle has been engaged in the same diffusing computation.
        self._engaged_tag_seen: Optional[ComputationTag] = None
        self._engaged_rounds = 0

    # ------------------------------------------------------------------ #
    # energy accounting
    # ------------------------------------------------------------------ #

    @property
    def energy_used(self) -> float:
        """Total energy consumed so far (travel plus service)."""
        return self.travel_energy + self.service_energy

    @property
    def energy_remaining(self) -> float:
        """Remaining battery (infinite in measurement mode)."""
        if self.capacity is None:
            return math.inf
        return self.capacity - self.energy_used

    def _can_spend(self, amount: float) -> bool:
        return self.capacity is None or self.energy_used + amount <= self.capacity + ENERGY_EPS

    # ------------------------------------------------------------------ #
    # job service
    # ------------------------------------------------------------------ #

    def serve_job(self, position: Point, energy: float = 1.0) -> bool:
        """Serve a job at ``position``; returns ``False`` if it cannot.

        The fleet only routes a job here when this vehicle is the pair's
        registered active vehicle; the vehicle still re-checks its state and
        energy so that infeasibility (capacity too small) surfaces as an
        unserved job rather than a negative battery.
        """
        if self.broken or self.status.working != WorkingState.ACTIVE:
            return False
        position = tuple(int(c) for c in position)
        walk = manhattan(self.position, position)
        needed = walk + energy
        if not self._can_spend(needed):
            # Cannot serve: declare done immediately so a replacement comes.
            self._become_done()
            return False
        self.travel_energy += walk
        self.service_energy += energy
        self.position = position
        self.jobs_served += 1
        if self.energy_remaining < self.done_threshold:
            self._become_done()
        return True

    def _become_done(self) -> None:
        if self.status.working != WorkingState.ACTIVE:
            return
        if self.status.transfer == TransferState.SEARCHING:
            # A relayed search the vehicle joined never terminated -- possible
            # only when failures (partitions, drops) ate its replies.  The
            # thesis assumes searches complete; under message loss the stale
            # engagement is abandoned through the legal Figure 3.1 arrow
            # (active, searching) -> (active, waiting) before going done, so
            # the state machine's invariant survives the adversary.
            self.engaged_tag = None
            self.status.set_transfer(TransferState.WAITING)
        pair_key = self.pair_key
        if self.fleet.failure_plan.is_initiation_suppressed(self.identity):
            # Scenario 2: the done vehicle silently fails to start Phase I;
            # the monitoring loop must recover.
            self.status.transition(WorkingState.DONE, TransferState.WAITING)
            self.fleet.record_suppressed_initiation(self.identity)
            return
        self.status.transition(WorkingState.DONE, TransferState.INITIATOR)
        self.fleet.record_done(self.identity)
        assert pair_key is not None
        self.start_replacement_search(destination=self.position, pair_key=pair_key)

    # ------------------------------------------------------------------ #
    # Phase I: initiating a diffusing computation
    # ------------------------------------------------------------------ #

    def start_replacement_search(self, *, destination: Point, pair_key: Point) -> None:
        """Initiate a diffusing computation to find an idle replacement.

        Called by a done vehicle for itself (Algorithm 2's first block) or
        by a watcher on behalf of a silent pair (Section 3.2.5).
        """
        tag: ComputationTag = (self.identity, self.fleet.next_computation_round())
        self.initiated[tag] = {"destination": destination, "pair_key": pair_key}
        self.engaged_tag = tag
        self.last_tag = tag
        self.parent = None
        self.child = None
        self.deficit = len(self.neighbors)
        self.fleet.record_search_started(tag)
        if self.deficit == 0:
            self._finish_own_computation(tag)
            return
        for neighbor in self.neighbors:
            self.send(neighbor, QueryMessage(tag, self.identity, destination, pair_key))

    # ------------------------------------------------------------------ #
    # message dispatch
    # ------------------------------------------------------------------ #

    def on_message(self, sender: Hashable, message: Any) -> None:
        if isinstance(message, QueryMessage):
            self._on_query(sender, message)
        elif isinstance(message, ReplyMessage):
            self._on_reply(sender, message)
        elif isinstance(message, MoveMessage):
            self._on_move(sender, message)
        elif isinstance(message, ExistingMessage):
            self._on_existing(message)
        elif isinstance(message, ActivationNotice):
            self._on_activation_notice(message)
        else:
            raise TypeError(f"unexpected message {message!r}")

    # ------------------------------------------------------------------ #
    # Phase I handlers (Algorithm 2)
    # ------------------------------------------------------------------ #

    def _on_query(self, sender: Hashable, message: QueryMessage) -> None:
        engaged_elsewhere = self.engaged_tag is not None
        already_seen = message.tag == self.last_tag
        if engaged_elsewhere or already_seen:
            self.send(sender, ReplyMessage(message.tag, self.identity, False))
            return
        # Join the computation.
        self.last_tag = message.tag
        self.parent = sender
        self.child = None
        if self.status.working == WorkingState.IDLE and not self.broken:
            # An idle vehicle answers positively and does not forward.
            self.send(sender, ReplyMessage(message.tag, self.identity, True))
            return
        self.engaged_tag = message.tag
        self.status.set_transfer(TransferState.SEARCHING)
        self.deficit = len(self.neighbors)
        if self.deficit == 0:
            self.engaged_tag = None
            self.status.set_transfer(TransferState.WAITING)
            self.send(sender, ReplyMessage(message.tag, self.identity, False))
            return
        for neighbor in self.neighbors:
            self.send(
                neighbor,
                QueryMessage(message.tag, self.identity, message.destination, message.pair_key),
            )

    def _on_reply(self, sender: Hashable, message: ReplyMessage) -> None:
        if message.tag != self.engaged_tag:
            return  # stale reply from an earlier computation
        self.deficit -= 1
        if message.flag and self.child is None:
            self.child = message.sender
            if self.parent is not None:
                self.send(self.parent, ReplyMessage(message.tag, self.identity, True))
        if self.deficit == 0:
            tag = self.engaged_tag
            self.engaged_tag = None
            self.status.set_transfer(TransferState.WAITING)
            if self.parent is None:
                self._finish_own_computation(tag)
            elif self.child is None:
                self.send(self.parent, ReplyMessage(tag, self.identity, False))

    def _finish_own_computation(self, tag: ComputationTag) -> None:
        """Initiator termination: launch Phase II or record failure."""
        info = self.initiated.get(tag)
        if info is None:
            return
        if self.child is None:
            self.fleet.record_failed_replacement(info["pair_key"])
            return
        self.send(
            self.child,
            MoveMessage(tag, self.identity, info["destination"], info["pair_key"]),
        )

    # ------------------------------------------------------------------ #
    # Phase II handler
    # ------------------------------------------------------------------ #

    def _on_move(self, sender: Hashable, message: MoveMessage) -> None:
        if message.tag == self.last_tag and self.child is not None:
            # Not the endpoint: copy the order to the next vehicle on the path.
            self.send(self.child, MoveMessage(message.tag, self.identity, message.destination, message.pair_key))
            return
        # Endpoint: this should be the idle candidate located in Phase I.
        if self.broken or self.status.working != WorkingState.IDLE:
            self.fleet.record_failed_replacement(message.pair_key)
            return
        if not self._is_local_pair_key(message.pair_key):
            # A Byzantine transport may scramble the pair key into a vertex
            # that names no pair of this cube; taking such an order over
            # would corrupt the registry and the watch loop.  Refusing it is
            # the legal outcome (the search failed), not an error.
            self.fleet.record_failed_replacement(message.pair_key)
            return
        walk = manhattan(self.position, message.destination)
        if not self._can_spend(walk):
            self.fleet.record_failed_replacement(message.pair_key)
            return
        self.travel_energy += walk
        self.position = tuple(int(c) for c in message.destination)
        self.status.transition(WorkingState.ACTIVE, TransferState.WAITING)
        self.pair_key = message.pair_key
        self.monitored_pair = watched_pair_key(self.coloring, message.pair_key)
        self.fleet.on_activation(self.identity, message.pair_key)
        for peer in self.cube_peers:
            self.send(peer, ActivationNotice(self.identity, message.pair_key, self.position))

    def _is_local_pair_key(self, pair_key: Point) -> bool:
        """Whether ``pair_key`` is the black vertex of a pair of this cube."""
        try:
            pair = self.coloring.pair_of(pair_key)
        except ValueError:
            return False
        return pair.black == tuple(int(c) for c in pair_key)

    # ------------------------------------------------------------------ #
    # Monitoring handlers (Section 3.2.5)
    # ------------------------------------------------------------------ #

    def _on_existing(self, message: ExistingMessage) -> None:
        previous = self.last_heard.get(message.pair_key, -1)
        self.last_heard[message.pair_key] = max(previous, message.round_id)

    def _on_activation_notice(self, message: ActivationNotice) -> None:
        # A fresh activation counts as having just heard from that pair.
        self.last_heard[message.pair_key] = self.fleet.heartbeat_round

    def tick_search_timeout(self, timeout: int) -> None:
        """Abandon a diffusing computation stuck for ``timeout`` heartbeat rounds.

        Under a reliable channel every Phase I computation terminates
        between rounds, so this never fires.  Under message loss or
        corruption the replies funding the deficit counters can vanish,
        leaving the vehicle engaged forever -- and an engaged vehicle
        refuses new computations and stops watching its monitored pair.
        After ``timeout`` consecutive rounds on one tag the engagement is
        released through the legal ``(*, searching) -> (*, waiting)``
        arrow.  A starved *initiator* treats the timeout as best-effort
        termination detection: a positive reply travels up the child chain
        immediately (not waiting for deficits), so if a child is already
        known the move order is launched along the located path -- only the
        chain's own messages needed to survive the lossy channel, not the
        whole flood.  With no child the search is recorded as failed and
        the monitoring loop can start a fresh computation for the
        still-silent pair.
        """
        if self.broken or self.engaged_tag is None:
            self._engaged_tag_seen = None
            self._engaged_rounds = 0
            return
        if self.engaged_tag == self._engaged_tag_seen:
            self._engaged_rounds += 1
        else:
            self._engaged_tag_seen = self.engaged_tag
            self._engaged_rounds = 1
        if self._engaged_rounds < timeout:
            return
        tag = self.engaged_tag
        self.engaged_tag = None
        self._engaged_tag_seen = None
        self._engaged_rounds = 0
        self.status.set_transfer(TransferState.WAITING)
        if tag in self.initiated:
            self._finish_own_computation(tag)

    def heartbeat(self, round_id: int, miss_threshold: int) -> None:
        """One heartbeat round: announce existence and check the watched pair."""
        if self.broken or self.status.working != WorkingState.ACTIVE:
            return
        assert self.pair_key is not None
        for peer in self.cube_peers:
            self.send(peer, ExistingMessage(self.identity, self.pair_key, round_id))
        if self.monitored_pair is None or self.monitored_pair == self.pair_key:
            return
        if self.engaged_tag is not None:
            # Busy with another computation; re-check on the next round.
            return
        last = self.last_heard.get(self.monitored_pair, self.fleet.monitoring_baseline)
        if round_id - last < miss_threshold:
            return
        # The watched pair has been silent too long: its vehicle is done (and
        # failed to initiate) or dead.  Start a replacement on its behalf.
        self.fleet.record_watch_initiation(self.identity, self.monitored_pair)
        self.last_heard[self.monitored_pair] = round_id  # debounce
        self.start_replacement_search(
            destination=self.monitored_pair, pair_key=self.monitored_pair
        )

    # ------------------------------------------------------------------ #
    # failures (scenario 3)
    # ------------------------------------------------------------------ #

    def mark_broken(self) -> None:
        """The vehicle breaks down: it can no longer move, serve or heartbeat.

        Its radio keeps working (the thesis's communication model never
        charges energy for messages), so Phase I computations that query it
        still receive a (negative) reply and terminate.
        """
        self.broken = True

    def mark_repaired(self) -> None:
        """Churn rejoin: the broken vehicle is repaired in place.

        Its working state and registry entry are untouched -- if a
        replacement already answers for its pair, the repaired vehicle
        simply becomes a healthy idle peer again.
        """
        self.broken = False

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """A small dictionary of the vehicle's externally relevant state."""
        return {
            "home": self.home,
            "position": self.position,
            "state": str(self.status),
            "pair": self.pair_key,
            "energy_used": self.energy_used,
            "travel": self.travel_energy,
            "service": self.service_energy,
            "jobs_served": self.jobs_served,
        }
